//! LOOPDEP — the OMPBench loop-dependence benchmark (Table 5.1,
//! Fig. 5.2(g)).
//!
//! A rotation of buffers with a *fixed-lag* cross-invocation dependence:
//! every epoch writes the current buffer and reads an offset cell of the
//! buffer written `lag` epochs earlier. The profiled minimum dependence
//! distance is therefore a precise constant — `lag × tasks − offset` — and
//! Table 5.3's train/ref split (500 vs. 800) is reproduced by two lag
//! configurations.

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The LOOPDEP workload model.
#[derive(Debug, Clone)]
pub struct Loopdep {
    epochs: usize,
    tasks: usize,
    /// How many epochs back the read dependence reaches.
    lag: usize,
    /// Task-index offset of the read within the lagged epoch.
    offset: usize,
    seed: u64,
}

impl Loopdep {
    /// The train configuration (Table 5.3: distance 500 at full scale).
    pub fn train(scale: Scale, seed: u64) -> Self {
        let tasks = scale.pick(25, 245);
        Self {
            epochs: scale.pick(24, 1000),
            tasks,
            lag: 3,
            offset: scale.pick(15, 235),
            seed,
        }
    }

    /// The ref configuration (Table 5.3: distance 800 at full scale).
    pub fn reference(scale: Scale, seed: u64) -> Self {
        let tasks = scale.pick(25, 245);
        Self {
            epochs: scale.pick(24, 1000),
            tasks,
            lag: 4,
            offset: scale.pick(20, 180),
            seed,
        }
    }

    /// The exact dependence distance this configuration induces.
    pub fn exact_distance(&self) -> u64 {
        (self.lag * self.tasks - self.offset) as u64
    }

    fn buffers(&self) -> usize {
        // Twice the lag keeps buffer-reuse (anti-dependence) distances
        // strictly larger than the flow distance, so the profiled minimum
        // is exactly `lag*tasks - offset`.
        2 * self.lag
    }
}

impl SimWorkload for Loopdep {
    fn num_invocations(&self) -> usize {
        self.epochs
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.tasks
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        2_500 + splitmix64(self.seed ^ ((inv * 53 + iter) as u64)) % 500
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let cur = (inv % self.buffers()) * self.tasks;
        out.push((cur + iter, AccessKind::Write));
        if inv >= self.lag {
            let lagged = ((inv - self.lag) % self.buffers()) * self.tasks;
            // Reads the cell that task (iter + offset) % tasks of the
            // lagged epoch wrote.
            out.push((lagged + (iter + self.offset) % self.tasks, AccessKind::Read));
        }
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.buffers() * self.tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_runtime::RangeSignature;
    use crossinvoc_speccross::prelude::*;
    use crossinvoc_speccross::SpecCrossEngine;

    #[test]
    fn profiled_distance_matches_the_construction() {
        let train = Loopdep::train(Scale::Test, 1);
        let p = profile_distance(&train, 6);
        assert_eq!(p.min_distance, Some(train.exact_distance()));
        let reference = Loopdep::reference(Scale::Test, 1);
        let p = profile_distance(&reference, 6);
        assert_eq!(p.min_distance, Some(reference.exact_distance()));
    }

    #[test]
    fn ref_distance_exceeds_train_distance() {
        // Table 5.3: 500 (train) vs 800 (ref) at figure scale.
        let train = Loopdep::train(Scale::Figure, 1);
        let reference = Loopdep::reference(Scale::Figure, 1);
        assert_eq!(train.exact_distance(), 500);
        assert_eq!(reference.exact_distance(), 800);
    }

    #[test]
    fn speccross_execution_matches_sequential() {
        let model = Loopdep::train(Scale::Test, 2);
        let d = Some(model.exact_distance());
        let kernel = AccessKernel::from_model(model);
        let expected = kernel.sequential_checksum();
        let report =
            SpecCrossEngine::<RangeSignature>::new(SpecConfig::with_workers(2).spec_distance(d))
                .execute(&kernel)
                .unwrap();
        assert_eq!(kernel.checksum(), expected);
        assert_eq!(report.stats.misspeculations, 0);
    }
}
