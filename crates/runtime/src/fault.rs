//! Deterministic fault injection for the runtime engines.
//!
//! Task-based speculative runtimes live or die by disciplined rollback under
//! adverse conditions, and the only way to *test* the recovery paths of the
//! SPECCROSS and DOMORE engines is to schedule failures at exact execution
//! coordinates and replay them identically. A [`FaultPlan`] is such a
//! schedule: a list of [`FaultSpec`]s, each an `(epoch, task, thread)`
//! coordinate pattern (wildcards allowed) plus a [`FaultKind`] and a hit
//! budget. Engines probe the plan at well-defined injection points
//! ([`FaultPlan::task_start`], [`FaultPlan::check`],
//! [`FaultPlan::snapshot_fails`], [`FaultPlan::restore_fails`],
//! [`FaultPlan::barrier_delay`]); the plan consumes one hit per firing, so a
//! single-shot fault never re-fires during recovery re-execution.
//!
//! Plans are clonable — a clone carries the same schedule with a fresh hit
//! budget, so the same plan replays identically in the threaded engines and
//! the simulator — and [`FaultPlan::random`] derives a schedule from a seed
//! for property-based robustness testing.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::hash::SplitMix64;

/// What goes wrong when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker executing the matched task panics mid-task.
    WorkerPanic,
    /// The checker stalls for this many milliseconds before serving the
    /// matched request.
    CheckerStall(u64),
    /// The checker thread dies (panics) at the matched request.
    CheckerDeath,
    /// The checker reports a conflict for the matched request even though
    /// the signatures do not conflict (a forced false positive).
    FalsePositive,
    /// Taking a checkpoint snapshot at the matched epoch fails.
    SnapshotFail,
    /// Restoring the checkpoint for recovery at the matched epoch fails.
    RestoreFail,
    /// The matched task (or barrier arrival) is delayed by this many
    /// microseconds — exercises queue/barrier timing robustness.
    Delay(u64),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::WorkerPanic => write!(f, "worker panic"),
            FaultKind::CheckerStall(ms) => write!(f, "checker stall ({ms} ms)"),
            FaultKind::CheckerDeath => write!(f, "checker death"),
            FaultKind::FalsePositive => write!(f, "forced false positive"),
            FaultKind::SnapshotFail => write!(f, "snapshot failure"),
            FaultKind::RestoreFail => write!(f, "restore failure"),
            FaultKind::Delay(us) => write!(f, "delay ({us} us)"),
        }
    }
}

/// An execution coordinate pattern. `None` components are wildcards.
///
/// Coordinates are interpreted uniformly across engines: `epoch` is the
/// SPECCROSS epoch / DOMORE invocation, `task` the per-epoch task index /
/// per-invocation iteration, `thread` the dense worker id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSite {
    /// Epoch (invocation) filter.
    pub epoch: Option<u32>,
    /// Per-epoch task (iteration) filter.
    pub task: Option<u64>,
    /// Worker thread filter.
    pub thread: Option<usize>,
}

impl FaultSite {
    /// Matches any coordinate (the first probe fires).
    pub const ANY: FaultSite = FaultSite {
        epoch: None,
        task: None,
        thread: None,
    };

    /// Matches any task of `epoch`.
    pub fn epoch(epoch: u32) -> Self {
        FaultSite {
            epoch: Some(epoch),
            ..Self::ANY
        }
    }

    /// Matches task `task` of `epoch` on any worker.
    pub fn task(epoch: u32, task: u64) -> Self {
        FaultSite {
            epoch: Some(epoch),
            task: Some(task),
            thread: None,
        }
    }

    fn matches(&self, epoch: u32, task: u64, thread: usize) -> bool {
        self.epoch.is_none_or(|e| e == epoch)
            && self.task.is_none_or(|t| t == task)
            && self.thread.is_none_or(|t| t == thread)
    }
}

/// One scheduled fault: where, what, and how often.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Coordinate pattern at which the fault fires.
    pub site: FaultSite,
    /// Failure mode.
    pub kind: FaultKind,
    /// Number of times the fault fires before exhausting (0 = never).
    pub max_hits: u32,
}

/// A fault that fired, as recorded by the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Failure mode that fired.
    pub kind: FaultKind,
    /// Epoch at which it fired.
    pub epoch: u32,
    /// Task at which it fired.
    pub task: u64,
    /// Worker at which it fired (checker-side faults report the requesting
    /// worker).
    pub thread: usize,
}

/// Action an engine takes at a task-start injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// Panic inside the task body (must be contained by the engine).
    Panic,
    /// Sleep this long before executing.
    Delay(Duration),
}

/// Action the checker takes at a check injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckFault {
    /// Report a conflict regardless of the signatures.
    ForceConflict,
    /// Sleep this long before serving the request.
    Stall(Duration),
    /// Panic (checker loss).
    Die,
}

#[derive(Debug, Default)]
struct Inner {
    specs: Vec<FaultSpec>,
    /// Remaining hits per spec, consumed atomically so concurrent probes of
    /// a shared plan never double-fire a single-shot fault.
    remaining: Vec<AtomicU32>,
}

/// A deterministic, replayable schedule of injected faults.
///
/// Cheap to share (`Arc` inside); [`Clone`] produces an *independent replay*
/// — same schedule, fresh hit budget. Engines clone the plan once per
/// execution so one run's consumed faults never leak into the next.
#[derive(Debug, Default)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        FaultPlan::from_specs(self.inner.specs.clone())
    }
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle to the *same* plan instance — hit budget shared with `self`,
    /// unlike [`Clone`], which starts a fresh replay. Engines use this to
    /// hand one budget to every pass of an execution, so a single-shot fault
    /// consumed during speculation does not re-fire during recovery.
    pub fn share(&self) -> Self {
        FaultPlan {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Builds a plan from explicit specs.
    pub fn from_specs(specs: Vec<FaultSpec>) -> Self {
        let remaining = specs.iter().map(|s| AtomicU32::new(s.max_hits)).collect();
        FaultPlan {
            inner: Arc::new(Inner { specs, remaining }),
        }
    }

    /// Derives a random single-shot fault schedule from `seed`, with
    /// coordinates bounded by the region shape. Identical seeds and bounds
    /// give identical plans.
    pub fn random(seed: u64, epochs: u32, tasks_per_epoch: u64, threads: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xFA17_1A17_FA17_1A17);
        let n = rng.next_below(4) as usize; // 0..=3 faults
        let mut specs = Vec::with_capacity(n);
        for _ in 0..n {
            let site = FaultSite {
                epoch: Some(rng.next_below(epochs.max(1) as u64) as u32),
                task: if rng.next_below(2) == 0 {
                    None
                } else {
                    Some(rng.next_below(tasks_per_epoch.max(1)))
                },
                thread: if rng.next_below(2) == 0 {
                    None
                } else {
                    Some(rng.next_below(threads.max(1) as u64) as usize)
                },
            };
            let kind = match rng.next_below(7) {
                0 => FaultKind::WorkerPanic,
                1 => FaultKind::CheckerStall(1 + rng.next_below(5)),
                2 => FaultKind::CheckerDeath,
                3 => FaultKind::FalsePositive,
                4 => FaultKind::SnapshotFail,
                5 => FaultKind::RestoreFail,
                _ => FaultKind::Delay(1 + rng.next_below(500)),
            };
            specs.push(FaultSpec {
                site,
                kind,
                max_hits: 1,
            });
        }
        Self::from_specs(specs)
    }

    /// The scheduled specs (diagnostics / test assertions).
    pub fn specs(&self) -> &[FaultSpec] {
        &self.inner.specs
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.inner.specs.is_empty()
    }

    /// Whether any scheduled fault has the given kind (regardless of hits).
    pub fn schedules(&self, kind: FaultKind) -> bool {
        self.inner.specs.iter().any(|s| s.kind == kind)
    }

    // ---- builder conveniences -------------------------------------------

    fn with(self, site: FaultSite, kind: FaultKind) -> Self {
        self.with_hits(site, kind, 1)
    }

    fn with_hits(self, site: FaultSite, kind: FaultKind, max_hits: u32) -> Self {
        let mut specs = self.inner.specs.clone();
        specs.push(FaultSpec {
            site,
            kind,
            max_hits,
        });
        Self::from_specs(specs)
    }

    /// Schedules a single worker panic at task `task` of `epoch`.
    pub fn worker_panic_at(self, epoch: u32, task: u64) -> Self {
        self.with(FaultSite::task(epoch, task), FaultKind::WorkerPanic)
    }

    /// Schedules the checker's death at the first request from `epoch`.
    pub fn checker_death_at(self, epoch: u32) -> Self {
        self.with(FaultSite::epoch(epoch), FaultKind::CheckerDeath)
    }

    /// Schedules a checker stall of `millis` at the first request from
    /// `epoch`.
    pub fn checker_stall_at(self, epoch: u32, millis: u64) -> Self {
        self.with(FaultSite::epoch(epoch), FaultKind::CheckerStall(millis))
    }

    /// Schedules a forced false-positive conflict at the first request from
    /// `epoch`.
    pub fn false_positive_at(self, epoch: u32) -> Self {
        self.with(FaultSite::epoch(epoch), FaultKind::FalsePositive)
    }

    /// Schedules `count` forced false positives, one per matching request,
    /// anywhere in the region (a misspeculation storm).
    pub fn false_positive_storm(self, count: u32) -> Self {
        self.with_hits(FaultSite::ANY, FaultKind::FalsePositive, count)
    }

    /// Schedules a snapshot failure at checkpoint epoch `epoch`.
    pub fn snapshot_failure_at(self, epoch: u32) -> Self {
        self.with(FaultSite::epoch(epoch), FaultKind::SnapshotFail)
    }

    /// Schedules one restore failure (first recovery attempt).
    pub fn restore_failure(self) -> Self {
        self.with(FaultSite::ANY, FaultKind::RestoreFail)
    }

    /// Schedules a task delay of `micros` at task `task` of `epoch`.
    pub fn delay_at(self, epoch: u32, task: u64, micros: u64) -> Self {
        self.with(FaultSite::task(epoch, task), FaultKind::Delay(micros))
    }

    // ---- injection points -----------------------------------------------

    /// Consumes one hit of the first armed spec matching the coordinate and
    /// kind filter.
    fn fire(
        &self,
        epoch: u32,
        task: u64,
        thread: usize,
        accept: impl Fn(FaultKind) -> bool,
    ) -> Option<FaultKind> {
        for (spec, remaining) in self.inner.specs.iter().zip(&self.inner.remaining) {
            if !accept(spec.kind) || !spec.site.matches(epoch, task, thread) {
                continue;
            }
            let armed = remaining
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| r.checked_sub(1))
                .is_ok();
            if armed {
                return Some(spec.kind);
            }
        }
        None
    }

    /// Probed by workers immediately before executing a task.
    pub fn task_start(&self, epoch: u32, task: u64, thread: usize) -> Option<TaskFault> {
        match self.fire(epoch, task, thread, |k| {
            matches!(k, FaultKind::WorkerPanic | FaultKind::Delay(_))
        })? {
            FaultKind::WorkerPanic => Some(TaskFault::Panic),
            FaultKind::Delay(us) => Some(TaskFault::Delay(Duration::from_micros(us))),
            _ => unreachable!("filtered by accept"),
        }
    }

    /// Probed by the checker for each admitted request.
    pub fn check(&self, epoch: u32, task: u64, thread: usize) -> Option<CheckFault> {
        match self.fire(epoch, task, thread, |k| {
            matches!(
                k,
                FaultKind::FalsePositive | FaultKind::CheckerStall(_) | FaultKind::CheckerDeath
            )
        })? {
            FaultKind::FalsePositive => Some(CheckFault::ForceConflict),
            FaultKind::CheckerStall(ms) => Some(CheckFault::Stall(Duration::from_millis(ms))),
            FaultKind::CheckerDeath => Some(CheckFault::Die),
            _ => unreachable!("filtered by accept"),
        }
    }

    /// Probed when a checkpoint snapshot is about to be taken at `epoch`.
    pub fn snapshot_fails(&self, epoch: u32) -> bool {
        self.fire(epoch, 0, 0, |k| matches!(k, FaultKind::SnapshotFail))
            .is_some()
    }

    /// Probed when recovery is about to restore the checkpoint of `epoch`.
    pub fn restore_fails(&self, epoch: u32) -> bool {
        self.fire(epoch, 0, 0, |k| matches!(k, FaultKind::RestoreFail))
            .is_some()
    }

    /// Probed at barrier arrival; returns an injected delay, if any.
    pub fn barrier_delay(&self, epoch: u32, thread: usize) -> Option<Duration> {
        match self.fire(epoch, 0, thread, |k| matches!(k, FaultKind::Delay(_)))? {
            FaultKind::Delay(us) => Some(Duration::from_micros(us)),
            _ => unreachable!("filtered by accept"),
        }
    }

    // ---- textual round-trip ---------------------------------------------

    /// Renders the schedule in the diffable, hand-editable corpus format:
    /// one spec per line, `<kind> @ epoch=<n|*> task=<n|*> thread=<n|*>
    /// hits=<n>`. `#`-prefixed lines and blank lines are comments. The hit
    /// *budget* is serialized, not the consumed state — parsing the text
    /// always yields a fresh replay.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for spec in &self.inner.specs {
            let kind = match spec.kind {
                FaultKind::WorkerPanic => "panic".to_string(),
                FaultKind::CheckerStall(ms) => format!("stall:{ms}"),
                FaultKind::CheckerDeath => "death".to_string(),
                FaultKind::FalsePositive => "false-positive".to_string(),
                FaultKind::SnapshotFail => "snapshot-fail".to_string(),
                FaultKind::RestoreFail => "restore-fail".to_string(),
                FaultKind::Delay(us) => format!("delay:{us}"),
            };
            let coord = |name: &str, v: Option<String>| match v {
                Some(v) => format!("{name}={v}"),
                None => format!("{name}=*"),
            };
            out.push_str(&format!(
                "{kind} @ {} {} {} hits={}\n",
                coord("epoch", spec.site.epoch.map(|e| e.to_string())),
                coord("task", spec.site.task.map(|t| t.to_string())),
                coord("thread", spec.site.thread.map(|t| t.to_string())),
                spec.max_hits,
            ));
        }
        out
    }

    /// Parses the [`FaultPlan::to_text`] format. Returns a plan with a
    /// fresh hit budget.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        fn wild<T: std::str::FromStr>(v: &str, line: &str) -> Result<Option<T>, String> {
            if v == "*" {
                return Ok(None);
            }
            v.parse::<T>()
                .map(Some)
                .map_err(|_| format!("bad coordinate {v:?} in fault line {line:?}"))
        }
        let mut specs = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind_tok = parts.next().expect("non-empty line has a token");
            let kind = if let Some(ms) = kind_tok.strip_prefix("stall:") {
                FaultKind::CheckerStall(ms.parse().map_err(|_| format!("bad stall in {line:?}"))?)
            } else if let Some(us) = kind_tok.strip_prefix("delay:") {
                FaultKind::Delay(us.parse().map_err(|_| format!("bad delay in {line:?}"))?)
            } else {
                match kind_tok {
                    "panic" => FaultKind::WorkerPanic,
                    "death" => FaultKind::CheckerDeath,
                    "false-positive" => FaultKind::FalsePositive,
                    "snapshot-fail" => FaultKind::SnapshotFail,
                    "restore-fail" => FaultKind::RestoreFail,
                    other => return Err(format!("unknown fault kind {other:?} in {line:?}")),
                }
            };
            if parts.next() != Some("@") {
                return Err(format!("expected `@` after the kind in {line:?}"));
            }
            let mut site = FaultSite::ANY;
            let mut max_hits = 1u32;
            for field in parts {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got {field:?} in {line:?}"))?;
                match key {
                    "epoch" => site.epoch = wild(value, line)?,
                    "task" => site.task = wild(value, line)?,
                    "thread" => site.thread = wild(value, line)?,
                    "hits" => {
                        max_hits = value.parse().map_err(|_| format!("bad hits in {line:?}"))?
                    }
                    other => return Err(format!("unknown field {other:?} in {line:?}")),
                }
            }
            specs.push(FaultSpec {
                site,
                kind,
                max_hits,
            });
        }
        Ok(Self::from_specs(specs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(p.task_start(0, 0, 0).is_none());
        assert!(p.check(0, 0, 0).is_none());
        assert!(!p.snapshot_fails(0));
        assert!(!p.restore_fails(0));
    }

    #[test]
    fn single_shot_fires_once_at_matching_site() {
        let p = FaultPlan::new().worker_panic_at(3, 5);
        assert!(p.task_start(3, 4, 0).is_none(), "wrong task");
        assert!(p.task_start(2, 5, 0).is_none(), "wrong epoch");
        assert_eq!(p.task_start(3, 5, 1), Some(TaskFault::Panic));
        assert!(p.task_start(3, 5, 1).is_none(), "hit budget consumed");
    }

    #[test]
    fn clone_replays_with_fresh_budget() {
        let p = FaultPlan::new().checker_death_at(2);
        assert_eq!(p.check(2, 0, 0), Some(CheckFault::Die));
        assert!(p.check(2, 1, 0).is_none());
        let replay = p.clone();
        assert_eq!(replay.check(2, 0, 0), Some(CheckFault::Die));
    }

    #[test]
    fn share_keeps_one_budget() {
        let p = FaultPlan::new().worker_panic_at(0, 0);
        let handle = p.share();
        assert_eq!(handle.task_start(0, 0, 0), Some(TaskFault::Panic));
        assert!(p.task_start(0, 0, 0).is_none(), "budget shared, not reset");
    }

    #[test]
    fn storm_fires_up_to_budget() {
        let p = FaultPlan::new().false_positive_storm(3);
        let mut fired = 0;
        for task in 0..10 {
            if p.check(0, task, 0).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3);
    }

    #[test]
    fn kinds_route_to_their_injection_points() {
        let p = FaultPlan::new()
            .false_positive_at(1)
            .worker_panic_at(1, 0)
            .snapshot_failure_at(4)
            .restore_failure();
        // The check probe must not consume the worker panic and vice versa.
        assert_eq!(p.check(1, 0, 0), Some(CheckFault::ForceConflict));
        assert_eq!(p.task_start(1, 0, 0), Some(TaskFault::Panic));
        assert!(p.snapshot_fails(4));
        assert!(!p.snapshot_fails(4), "consumed");
        assert!(p.restore_fails(9), "wildcard restore failure");
    }

    #[test]
    fn delays_surface_as_durations() {
        let p = FaultPlan::new().delay_at(0, 1, 250);
        assert_eq!(
            p.task_start(0, 1, 0),
            Some(TaskFault::Delay(Duration::from_micros(250)))
        );
        let p = FaultPlan::from_specs(vec![FaultSpec {
            site: FaultSite::epoch(2),
            kind: FaultKind::Delay(10),
            max_hits: 1,
        }]);
        assert_eq!(p.barrier_delay(2, 0), Some(Duration::from_micros(10)));
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        for seed in 0..50u64 {
            let a = FaultPlan::random(seed, 10, 8, 4);
            let b = FaultPlan::random(seed, 10, 8, 4);
            assert_eq!(a.specs().len(), b.specs().len());
            for (x, y) in a.specs().iter().zip(b.specs()) {
                assert_eq!(x.site, y.site);
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.max_hits, y.max_hits);
            }
        }
    }

    #[test]
    fn random_plans_cover_multiple_kinds() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..200u64 {
            for s in FaultPlan::random(seed, 10, 8, 4).specs() {
                kinds.insert(std::mem::discriminant(&s.kind));
            }
        }
        assert!(kinds.len() >= 5, "seed sweep explores the fault palette");
    }

    #[test]
    fn concurrent_probes_fire_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let p = std::sync::Arc::new(FaultPlan::new().worker_panic_at(0, 0));
        let fired = std::sync::Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = std::sync::Arc::clone(&p);
            let fired = std::sync::Arc::clone(&fired);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    if p.task_start(0, 0, 0).is_some() {
                        fired.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn text_round_trip_preserves_every_spec() {
        for seed in 0..100u64 {
            let plan = FaultPlan::random(seed, 12, 9, 4);
            let text = plan.to_text();
            let back = FaultPlan::from_text(&text).expect("own output parses");
            assert_eq!(plan.specs(), back.specs(), "seed {seed}:\n{text}");
        }
        let builders = FaultPlan::new()
            .worker_panic_at(3, 5)
            .checker_stall_at(2, 4)
            .false_positive_storm(7)
            .restore_failure()
            .delay_at(0, 1, 250);
        let back = FaultPlan::from_text(&builders.to_text()).unwrap();
        assert_eq!(builders.specs(), back.specs());
    }

    #[test]
    fn from_text_accepts_comments_and_rejects_junk() {
        let plan =
            FaultPlan::from_text("# a comment\n\n  panic @ epoch=1 task=* thread=2 hits=3\n")
                .unwrap();
        assert_eq!(
            plan.specs(),
            &[FaultSpec {
                site: FaultSite {
                    epoch: Some(1),
                    task: None,
                    thread: Some(2),
                },
                kind: FaultKind::WorkerPanic,
                max_hits: 3,
            }]
        );
        assert!(FaultPlan::from_text("explode @ epoch=1").is_err());
        assert!(FaultPlan::from_text("panic epoch=1").is_err());
        assert!(FaultPlan::from_text("panic @ epoch=x").is_err());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(FaultKind::WorkerPanic.to_string(), "worker panic");
        assert!(FaultKind::CheckerStall(5).to_string().contains("5 ms"));
    }
}
