//! The machine cost model.
//!
//! Simulated-time constants for the synchronization and runtime operations
//! whose real costs the thesis measures on its Xeon testbed. The defaults
//! are order-of-magnitude matches for that machine (e.g. ~1 ms recovery,
//! §4.2.2; microsecond-scale centralized barriers that degrade with thread
//! count). The figure harness uses one model everywhere so series are
//! comparable.

/// Simulated costs of runtime operations, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of releasing a barrier.
    pub barrier_base_ns: u64,
    /// Additional barrier cost per participating thread (centralized
    /// barriers serialize arrivals on one cache line).
    pub barrier_per_thread_ns: u64,
    /// One produce+consume over an SPSC queue (scheduler → worker dispatch).
    pub queue_ns: u64,
    /// Fixed per-task bookkeeping (enter/exit task, position updates).
    pub task_overhead_ns: u64,
    /// One signature comparison at the checker.
    pub check_compare_ns: u64,
    /// Fixed cost of the checker receiving and logging one request.
    pub check_request_ns: u64,
    /// Snapshotting program state at a checkpoint.
    pub checkpoint_ns: u64,
    /// Squashing workers and restoring a checkpoint after misspeculation
    /// (the thesis measures ≈1 ms, §4.2.2).
    pub recovery_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            barrier_base_ns: 4_000,
            barrier_per_thread_ns: 900,
            queue_ns: 120,
            task_overhead_ns: 60,
            check_compare_ns: 40,
            check_request_ns: 90,
            checkpoint_ns: 200_000,
            recovery_ns: 1_000_000,
        }
    }
}

impl CostModel {
    /// Total cost of one barrier episode for `threads` participants.
    pub fn barrier_ns(&self, threads: usize) -> u64 {
        self.barrier_base_ns + self.barrier_per_thread_ns * threads as u64
    }

    /// A frictionless model (all overheads zero) for analytic tests.
    pub fn free() -> Self {
        Self {
            barrier_base_ns: 0,
            barrier_per_thread_ns: 0,
            queue_ns: 0,
            task_overhead_ns: 0,
            check_compare_ns: 0,
            check_request_ns: 0,
            checkpoint_ns: 0,
            recovery_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_cost_grows_with_threads() {
        let m = CostModel::default();
        assert!(m.barrier_ns(24) > m.barrier_ns(8));
    }

    #[test]
    fn free_model_is_all_zero() {
        let m = CostModel::free();
        assert_eq!(m.barrier_ns(64), 0);
        assert_eq!(m.queue_ns, 0);
    }
}
