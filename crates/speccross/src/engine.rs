//! The threaded SPECCROSS engine (§4.2, Fig. 4.5).
//!
//! One manager (the calling thread), `num_workers` worker threads and one
//! checker thread. Workers execute epochs back-to-back, crossing barrier
//! boundaries speculatively; each task's signature and start-time position
//! snapshot go to the checker, which runs the pure conflict test of
//! [`crate::check`]. Every `checkpoint_every` epochs the workers rendezvous,
//! the checker is drained, and the workload state is snapshotted. On
//! misspeculation all workers unwind cooperatively, the last checkpoint is
//! restored, the misspeculated epochs re-execute under non-speculative
//! barriers, and speculation resumes (substitution S3 of DESIGN.md replaces
//! the thesis' `fork`/`kill` mechanics with snapshot/restore + cooperative
//! cancellation; the recovery *sequence* is identical).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use crossbeam::utils::Backoff;
use parking_lot::Mutex;

use crossinvoc_runtime::signature::{AccessSignature, RangeSignature};
use crossinvoc_runtime::stats::{RegionStats, StatsSummary};
use crossinvoc_runtime::SpinBarrier;

use crate::check::{CheckRequest, CheckerState, Conflict};
use crate::position::{Position, PositionBoard};
use crate::profile::{DistanceProfiler, ProfileReport};
use crate::workload::{NullRecorder, SigRecorder, SpecWorkload};

/// Configuration for [`SpecCrossEngine`].
#[derive(Debug, Clone)]
pub struct SpecConfig {
    /// Worker thread count (the checker thread is additional, matching the
    /// thesis' accounting in §5.2).
    pub num_workers: usize,
    /// Take a checkpoint every this many epochs (thesis default: 1000).
    pub checkpoint_every: usize,
    /// Speculative range in tasks, normally the profiled minimum dependence
    /// distance ([`ProfileReport::min_distance`]). `None` disables gating.
    pub spec_distance: Option<u64>,
    /// Test/experiment hook: force a misspeculation the first time any task
    /// of this epoch is admitted by the checker (used by the Fig. 5.3
    /// recovery-cost experiment; the thesis triggers it "randomly").
    pub inject_conflict_at_epoch: Option<u32>,
}

impl SpecConfig {
    /// Configuration with `num_workers` workers and thesis defaults.
    pub fn with_workers(num_workers: usize) -> Self {
        Self {
            num_workers,
            checkpoint_every: 1000,
            spec_distance: None,
            inject_conflict_at_epoch: None,
        }
    }

    /// Sets the checkpoint interval in epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn checkpoint_every(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "checkpoint interval must be positive");
        self.checkpoint_every = epochs;
        self
    }

    /// Sets the speculative range (minimum dependence distance) in tasks.
    pub fn spec_distance(mut self, distance: Option<u64>) -> Self {
        self.spec_distance = distance;
        self
    }

    /// Forces a conflict at the given epoch (testing / recovery studies).
    pub fn inject_conflict_at_epoch(mut self, epoch: Option<u32>) -> Self {
        self.inject_conflict_at_epoch = epoch;
        self
    }
}

/// Errors reported by the SPECCROSS engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The configuration requested zero workers.
    NoWorkers,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoWorkers => write!(f, "at least one worker thread is required"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Outcome of a SPECCROSS execution.
#[derive(Debug, Clone)]
pub struct SpecReport {
    /// Counter snapshot (tasks, epochs, checking requests, …).
    pub stats: StatsSummary,
    /// Wall-clock time of the region.
    pub elapsed: Duration,
    /// Worker threads used (excluding the checker).
    pub num_workers: usize,
    /// Signature comparisons the checker performed.
    pub comparisons: u64,
    /// Conflicts that triggered recovery, in detection order.
    pub conflicts: Vec<Conflict>,
}

/// Message from a worker (or the checkpoint serial thread) to the checker.
enum CheckerMsg<S> {
    Check(CheckRequest<S>),
    /// Discard log entries below this epoch (sent after a checkpoint).
    Prune(u32),
}

/// Outcome of one speculative pass.
enum PassOutcome {
    Completed,
    Misspeculated {
        /// Epoch of the restored checkpoint.
        checkpoint_epoch: usize,
        /// First epoch to run speculatively again; `[checkpoint_epoch,
        /// resume_epoch)` re-executes under non-speculative barriers.
        resume_epoch: usize,
    },
}

/// Interruptible rendezvous used at checkpoints.
///
/// Like a barrier, but every wait polls the misspeculation flag: when it
/// rises, all participants abandon the pass (the structure is discarded with
/// the pass, so the dirty counter is harmless).
struct SyncPoint {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
}

enum WaitOutcome {
    /// Released; `true` on the serial (last-arriving) participant.
    Released(bool),
    Aborted,
}

impl SyncPoint {
    fn new(n: usize) -> Self {
        Self {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    fn wait(&self, abort: &AtomicBool) -> WaitOutcome {
        if abort.load(Ordering::Acquire) {
            return WaitOutcome::Aborted;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
            WaitOutcome::Released(true)
        } else {
            let backoff = Backoff::new();
            loop {
                if self.generation.load(Ordering::Acquire) != gen {
                    return WaitOutcome::Released(false);
                }
                if abort.load(Ordering::Acquire) {
                    return WaitOutcome::Aborted;
                }
                backoff.snooze();
            }
        }
    }
}

/// Shared state of one speculative pass.
struct PassShared<S, St> {
    board: PositionBoard,
    misspec: AtomicBool,
    conflict: Mutex<Option<Conflict>>,
    /// Latest durable checkpoint: (epoch, state).
    checkpoint: Mutex<(usize, St)>,
    sent: AtomicU64,
    processed: AtomicU64,
    done_workers: AtomicUsize,
    tx: Sender<CheckerMsg<S>>,
    sync: SyncPoint,
    /// Global task index of the first task of each epoch (prefix sums).
    prefix: Vec<u64>,
}

/// The software-only speculative-barrier engine.
///
/// Generic over the signature scheme `S` (default: the thesis'
/// [`RangeSignature`]).
///
/// # Example
///
/// ```
/// use crossinvoc_speccross::prelude::*;
/// use crossinvoc_runtime::SharedSlice;
///
/// // 6 epochs of 8 independent tasks; task t of each epoch bumps cell t.
/// // No cross-epoch task ever touches a *different* cell, so the only
/// // cross-invocation dependences are per-cell chains — and distributing
/// // tasks round-robin keeps each chain on one worker: speculation never
/// // misses.
/// struct Steps {
///     data: SharedSlice<u64>,
/// }
/// impl SpecWorkload for Steps {
///     type State = Vec<u64>;
///     fn num_epochs(&self) -> usize { 6 }
///     fn num_tasks(&self, _epoch: usize) -> usize { 8 }
///     fn execute_task(&self, _e: usize, t: usize, _tid: usize,
///                     rec: &mut dyn AccessRecorder) {
///         rec.write(t);
///         unsafe { self.data.update(t, |v| *v += 1) };
///     }
///     fn snapshot(&self) -> Vec<u64> {
///         (0..self.data.len()).map(|i| unsafe { self.data.read(i) }).collect()
///     }
///     fn restore(&self, s: &Vec<u64>) {
///         for (i, v) in s.iter().enumerate() {
///             unsafe { self.data.write(i, *v) };
///         }
///     }
/// }
///
/// let mut w = Steps { data: SharedSlice::from_vec(vec![0; 8]) };
/// let engine: SpecCrossEngine = SpecCrossEngine::new(SpecConfig::with_workers(2));
/// let report = engine.execute(&w).unwrap();
/// assert_eq!(report.stats.misspeculations, 0);
/// assert!(w.data.snapshot().iter().all(|&v| v == 6));
/// ```
#[derive(Debug)]
pub struct SpecCrossEngine<S = RangeSignature> {
    config: SpecConfig,
    _sig: std::marker::PhantomData<fn() -> S>,
}

impl<S: AccessSignature> SpecCrossEngine<S> {
    /// Creates an engine from `config`.
    pub fn new(config: SpecConfig) -> Self {
        Self {
            config,
            _sig: std::marker::PhantomData,
        }
    }

    /// Runs `workload` with speculative barriers, recovering from
    /// misspeculation until the region completes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NoWorkers`] if configured with zero workers.
    pub fn execute<W: SpecWorkload>(&self, workload: &W) -> Result<SpecReport, SpecError> {
        if self.config.num_workers == 0 {
            return Err(SpecError::NoWorkers);
        }
        let stats = RegionStats::new();
        let mut conflicts = Vec::new();
        let mut comparisons = 0;
        let start = Instant::now();
        let mut start_epoch = 0usize;
        let num_epochs = workload.num_epochs();

        while start_epoch < num_epochs {
            let (outcome, pass_comparisons, pass_conflict, ckpt_state) =
                self.speculative_pass(workload, start_epoch, &stats);
            comparisons += pass_comparisons;
            match outcome {
                PassOutcome::Completed => {
                    start_epoch = num_epochs;
                }
                PassOutcome::Misspeculated {
                    checkpoint_epoch,
                    resume_epoch,
                } => {
                    stats.add_misspeculation();
                    if let Some(c) = pass_conflict {
                        conflicts.push(c);
                    }
                    // Roll back, then re-execute the misspeculated epochs
                    // with non-speculative barriers (§4.2.2).
                    workload.restore(&ckpt_state);
                    self.run_barrier_range(workload, checkpoint_epoch, resume_epoch, &stats);
                    start_epoch = resume_epoch;
                }
            }
        }

        Ok(SpecReport {
            stats: stats.summary(),
            elapsed: start.elapsed(),
            num_workers: self.config.num_workers,
            comparisons,
            conflicts,
        })
    }

    /// Executes `workload` entirely under non-speculative barriers — the
    /// `pthread_barrier` baseline of Figs. 5.1/5.2 and the NON-SPECULATIVE
    /// mode of Table 4.1.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NoWorkers`] if configured with zero workers.
    pub fn execute_with_barriers<W: SpecWorkload>(
        &self,
        workload: &W,
    ) -> Result<SpecReport, SpecError> {
        if self.config.num_workers == 0 {
            return Err(SpecError::NoWorkers);
        }
        let stats = RegionStats::new();
        let start = Instant::now();
        self.run_barrier_range(workload, 0, workload.num_epochs(), &stats);
        Ok(SpecReport {
            stats: stats.summary(),
            elapsed: start.elapsed(),
            num_workers: self.config.num_workers,
            comparisons: 0,
            conflicts: Vec::new(),
        })
    }

    /// Profiles `workload` sequentially, returning the minimum cross-epoch
    /// dependence distance (§4.4). `window_epochs` bounds how far apart
    /// conflicting epochs may be to be observed (Table 5.3 used the whole
    /// program; a window of a few epochs is sufficient for every workload in
    /// the suite and keeps profiling linear).
    pub fn profile<W: SpecWorkload>(workload: &W, window_epochs: u32) -> ProfileReport {
        let mut profiler = DistanceProfiler::<S>::new(window_epochs);
        let mut recorder = SigRecorder::<S>::new();
        for epoch in 0..workload.num_epochs() {
            for task in 0..workload.num_tasks(epoch) {
                workload.execute_task(epoch, task, 0, &mut recorder);
                profiler.record_task(recorder.take());
            }
            profiler.epoch_boundary();
        }
        profiler.report()
    }

    /// One speculative attempt from `start_epoch`. Returns the outcome, the
    /// checker's comparison count, the conflict (if any) and the state of
    /// the checkpoint to restore on misspeculation.
    fn speculative_pass<W: SpecWorkload>(
        &self,
        workload: &W,
        start_epoch: usize,
        stats: &RegionStats,
    ) -> (PassOutcome, u64, Option<Conflict>, W::State) {
        let num_workers = self.config.num_workers;
        let num_epochs = workload.num_epochs();
        let mut prefix = Vec::with_capacity(num_epochs + 1);
        let mut acc = 0u64;
        for e in 0..num_epochs {
            prefix.push(acc);
            acc += workload.num_tasks(e) as u64;
        }
        prefix.push(acc);

        let (tx, rx) = unbounded::<CheckerMsg<S>>();
        let shared = PassShared {
            board: PositionBoard::new(num_workers),
            misspec: AtomicBool::new(false),
            conflict: Mutex::new(None),
            checkpoint: Mutex::new((start_epoch, workload.snapshot())),
            sent: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            done_workers: AtomicUsize::new(0),
            tx,
            sync: SyncPoint::new(num_workers),
            prefix,
        };
        stats.add_checkpoint();

        let mut comparisons = 0;
        std::thread::scope(|scope| {
            // Checker thread.
            let checker = scope.spawn(|| self.checker_loop(&shared, rx, stats));
            // Worker threads.
            for tid in 0..num_workers {
                let shared = &shared;
                scope.spawn(move || {
                    self.worker_pass(workload, shared, tid, start_epoch, stats);
                    shared.done_workers.fetch_add(1, Ordering::Release);
                    // A finished worker never gates anyone again.
                    shared.board.set_frontier(tid, u64::MAX);
                });
            }
            comparisons = checker.join().expect("checker thread panicked");
        });

        let (checkpoint_epoch, ckpt_state) = {
            let mut guard = shared.checkpoint.lock();
            let epoch = guard.0;
            // Replace with a throwaway snapshot to move the state out.
            let state = std::mem::replace(&mut guard.1, workload.snapshot());
            (epoch, state)
        };

        if shared.misspec.load(Ordering::Acquire) {
            let resume_epoch = (shared.board.max_epoch() as usize + 1)
                .max(start_epoch + 1)
                .min(num_epochs);
            let conflict = *shared.conflict.lock();
            (
                PassOutcome::Misspeculated {
                    checkpoint_epoch,
                    resume_epoch,
                },
                comparisons,
                conflict,
                ckpt_state,
            )
        } else {
            (PassOutcome::Completed, comparisons, None, ckpt_state)
        }
    }

    /// The per-worker driver (Fig. 4.7's worker pseudo-code, plus the
    /// checkpoint rendezvous and misspeculation polling).
    fn worker_pass<W: SpecWorkload>(
        &self,
        workload: &W,
        shared: &PassShared<S, W::State>,
        tid: usize,
        start_epoch: usize,
        stats: &RegionStats,
    ) {
        let num_workers = self.config.num_workers;
        let num_epochs = workload.num_epochs();
        let mut recorder = SigRecorder::<S>::new();

        for epoch in start_epoch..num_epochs {
            let irreversible = workload.epoch_is_irreversible(epoch);
            let periodic = epoch > start_epoch
                && (epoch - start_epoch).is_multiple_of(self.config.checkpoint_every);
            if irreversible || periodic {
                // Synchronize, drain the checker, snapshot (§4.2.2).
                if !self.checkpoint_rendezvous(workload, shared, tid, epoch, stats) {
                    return; // aborted by misspeculation
                }
            }

            // enter_barrier: cross the invocation boundary speculatively.
            shared.board.set_position(tid, Position {
                epoch: epoch as u32,
                task: 0,
            });
            if tid == 0 {
                stats.add_epoch();
            }

            let ntasks = workload.num_tasks(epoch);
            if irreversible {
                // Runs between two full synchronizations: plain parallel
                // execution, no signatures, then checkpoint.
                let mut task = tid;
                while task < ntasks {
                    workload.execute_task(epoch, task, tid, &mut NullRecorder);
                    stats.add_task();
                    task += num_workers;
                }
                if !self.checkpoint_rendezvous(workload, shared, tid, epoch + 1, stats) {
                    return;
                }
                continue;
            }

            let mut task = tid;
            let mut local_counter = 0u32;
            while task < ntasks {
                let global = shared.prefix[epoch] + task as u64;
                // enter_task: publish the frontier, then gate on the
                // speculative range.
                shared.board.set_frontier(tid, global);
                if let Some(distance) = self.config.spec_distance {
                    let mut stalled = false;
                    let backoff = Backoff::new();
                    while let Some(min) = shared.board.min_other_frontier(tid) {
                        // Strict: any still-unfinished task g1 satisfies
                        // g1 >= min, so global - g1 < distance — closer than
                        // the closest profiled dependence, hence safe.
                        if global < min.saturating_add(distance) {
                            break;
                        }
                        if shared.misspec.load(Ordering::Acquire) {
                            return;
                        }
                        if !stalled {
                            stalled = true;
                            stats.add_stall();
                        }
                        backoff.snooze();
                    }
                }
                if shared.misspec.load(Ordering::Acquire) {
                    return;
                }
                let pos = Position {
                    epoch: epoch as u32,
                    task: local_counter,
                };
                shared.board.set_position(tid, pos);
                let snapshot = shared.board.snapshot();

                workload.execute_task(epoch, task, tid, &mut recorder);
                stats.add_task();

                // exit_task: ship the signature to the checker.
                let sig = recorder.take();
                if !sig.is_empty() {
                    shared.sent.fetch_add(1, Ordering::Release);
                    stats.add_check_request();
                    let _ = shared.tx.send(CheckerMsg::Check(CheckRequest {
                        tid,
                        pos,
                        snapshot,
                        sig,
                    }));
                }
                local_counter += 1;
                // Advance the position past the completed task so that
                // later-starting tasks' snapshots observe it as retired;
                // leaving it at the started coordinate would make every
                // finished-but-idle worker look like a racing overlap.
                shared.board.set_position(tid, Position {
                    epoch: epoch as u32,
                    task: local_counter,
                });
                task += num_workers;
            }
        }
        // send_end_token: completion is signalled via `done_workers` by the
        // caller; nothing further to do here.
    }

    /// All-worker rendezvous: drain the checker, then have the serial worker
    /// snapshot the workload as the new checkpoint. Returns `false` if the
    /// pass was aborted by misspeculation.
    fn checkpoint_rendezvous<W: SpecWorkload>(
        &self,
        workload: &W,
        shared: &PassShared<S, W::State>,
        tid: usize,
        epoch: usize,
        stats: &RegionStats,
    ) -> bool {
        // While parked here this worker's frontier must not gate leaders
        // forever: everything below `epoch` is finished, so advertise the
        // epoch's first global task index (every not-yet-arrived worker's
        // next task is below it, so none of them can be gated by us).
        shared.board.set_frontier(tid, shared.prefix[epoch]);
        let serial = match shared.sync.wait(&shared.misspec) {
            WaitOutcome::Released(serial) => serial,
            WaitOutcome::Aborted => return false,
        };
        if serial {
            // Wait for the checker to finish all requests before the
            // checkpoint, so the snapshot is known-good (§4.2.2).
            let backoff = Backoff::new();
            while shared.processed.load(Ordering::Acquire)
                < shared.sent.load(Ordering::Acquire)
            {
                if shared.misspec.load(Ordering::Acquire) {
                    break;
                }
                backoff.snooze();
            }
            if !shared.misspec.load(Ordering::Acquire) {
                *shared.checkpoint.lock() = (epoch, workload.snapshot());
                stats.add_checkpoint();
                let _ = shared.tx.send(CheckerMsg::Prune(epoch as u32));
            }
        }
        matches!(
            shared.sync.wait(&shared.misspec),
            WaitOutcome::Released(_)
        )
    }

    /// The checker thread (Fig. 4.7's checker pseudo-code). Returns the
    /// number of signature comparisons performed.
    fn checker_loop<St>(
        &self,
        shared: &PassShared<S, St>,
        rx: Receiver<CheckerMsg<S>>,
        _stats: &RegionStats,
    ) -> u64 {
        let num_workers = self.config.num_workers;
        let mut state = CheckerState::<S>::new(num_workers);
        let backoff = Backoff::new();
        loop {
            match rx.try_recv() {
                Ok(CheckerMsg::Check(req)) => {
                    backoff.reset();
                    let injected = self
                        .config
                        .inject_conflict_at_epoch
                        .is_some_and(|e| req.pos.epoch == e);
                    let conflict = if injected {
                        Some(Conflict {
                            earlier: (req.tid, req.pos),
                            later: (req.tid, req.pos),
                        })
                    } else {
                        state.admit(req)
                    };
                    shared.processed.fetch_add(1, Ordering::Release);
                    if let Some(c) = conflict {
                        *shared.conflict.lock() = Some(c);
                        shared.misspec.store(true, Ordering::Release);
                        break;
                    }
                }
                Ok(CheckerMsg::Prune(epoch)) => state.prune_before_epoch(epoch),
                Err(TryRecvError::Empty) => {
                    if shared.misspec.load(Ordering::Acquire) {
                        break;
                    }
                    if shared.done_workers.load(Ordering::Acquire) == num_workers
                        && shared.processed.load(Ordering::Acquire)
                            == shared.sent.load(Ordering::Acquire)
                    {
                        break;
                    }
                    backoff.snooze();
                }
                Err(TryRecvError::Disconnected) => break,
            }
        }
        state.comparisons()
    }

    /// Executes epochs `[from, to)` under non-speculative barriers.
    fn run_barrier_range<W: SpecWorkload>(
        &self,
        workload: &W,
        from: usize,
        to: usize,
        stats: &RegionStats,
    ) {
        if from >= to {
            return;
        }
        let num_workers = self.config.num_workers;
        let barrier = SpinBarrier::new(num_workers);
        std::thread::scope(|scope| {
            for tid in 0..num_workers {
                let barrier = &barrier;
                scope.spawn(move || {
                    for epoch in from..to {
                        if tid == 0 {
                            stats.add_epoch();
                        }
                        let ntasks = workload.num_tasks(epoch);
                        let mut task = tid;
                        while task < ntasks {
                            workload.execute_task(epoch, task, tid, &mut NullRecorder);
                            stats.add_task();
                            task += num_workers;
                        }
                        barrier.wait(tid);
                    }
                });
            }
        });
    }
}
