//! CG — the NAS conjugate-gradient kernel of Figs. 3.1–3.3.
//!
//! The performance-dominating nest: an outer loop over matrix rows computes
//! each row's extent (`start = A[i]; end = B[i]`), and the inner loop
//! updates `C[j]` for `j ∈ start..end`. Row extents overlap irregularly, so
//! the `update` dependence between outer iterations manifests often — the
//! thesis profiles 72.4% — which is why CG is DOMORE's flagship (frequent
//! conflicts defeat speculation). Epochs are tiny (9 tasks in the thesis'
//! input, Table 5.3), making barrier overhead catastrophic (Fig. 3.3).

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The CG row-update workload model.
#[derive(Debug, Clone)]
pub struct Cg {
    /// One invocation per matrix row.
    rows: usize,
    /// Length of the shared vector `C`.
    cells: usize,
    /// Row extent (tasks per invocation; 9 in the thesis' input).
    extent: usize,
    /// Start-offset stride between consecutive rows; `stride < extent`
    /// makes consecutive rows overlap, manifesting the update dependence.
    stride: usize,
    seed: u64,
}

impl Cg {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            rows: scale.pick(80, 7000),
            cells: scale.pick(64, 4096),
            extent: 9,
            stride: 4,
            seed,
        }
    }

    /// First cell of row `row`'s extent.
    fn row_start(&self, row: usize) -> usize {
        // Mostly-strided with an irregular jitter, as sparse row layouts
        // are: the jitter is what static analysis cannot see.
        let jitter = (splitmix64(self.seed ^ row as u64) % 3) as usize;
        (row * self.stride + jitter) % self.cells
    }

    /// The fraction of invocations whose extent overlaps the previous
    /// invocation's — the manifest rate of Fig. 3.1(c).
    pub fn manifest_rate(&self) -> f64 {
        let mut hits = 0usize;
        for row in 1..self.rows {
            let a = self.row_start(row - 1);
            let b = self.row_start(row);
            let overlap = (b.wrapping_sub(a)) % self.cells < self.extent
                || (a.wrapping_sub(b)) % self.cells < self.extent;
            hits += usize::from(overlap);
        }
        hits as f64 / (self.rows - 1).max(1) as f64
    }
}

impl SimWorkload for Cg {
    fn num_invocations(&self) -> usize {
        self.rows
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.extent
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        // The update kernel plus sparse-access jitter.
        2_000 + splitmix64(self.seed ^ ((inv * 31 + iter) as u64)) % 600
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let cell = (self.row_start(inv) + iter) % self.cells;
        out.push((cell, AccessKind::Write));
    }

    fn prologue_cost(&self, _inv: usize) -> u64 {
        // start/end loads: the sequential region of Fig. 3.1(a).
        160
    }

    fn sched_cost(&self, _inv: usize, _iter: usize) -> u64 {
        // Table 5.2 reports a 4.1% scheduler/worker ratio for CG.
        90
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_domore::prelude::*;

    #[test]
    fn update_dependence_manifests_frequently() {
        let cg = Cg::new(Scale::Test, 42);
        let rate = cg.manifest_rate();
        assert!(
            rate > 0.5,
            "CG's update dependence must manifest often (got {rate:.3}), like the 72.4% of Fig. 3.1"
        );
    }

    #[test]
    fn epochs_are_small() {
        let cg = Cg::new(Scale::Test, 42);
        assert_eq!(cg.num_iterations(0), 9, "Table 5.3: ~9 tasks per epoch");
    }

    #[test]
    fn profiled_distance_is_short() {
        let cg = Cg::new(Scale::Test, 42);
        let p = profile_distance(&cg, 4);
        let d = p.min_distance.expect("overlapping rows must conflict");
        assert!(
            d < 3 * cg.extent as u64,
            "conflicts within a few rows, got {d}"
        );
    }

    #[test]
    fn domore_execution_matches_sequential() {
        let kernel = AccessKernel::from_model(Cg::new(Scale::Test, 7));
        let expected = kernel.sequential_checksum();
        let report = DomoreRuntime::new(DomoreConfig::with_workers(3))
            .execute(&kernel)
            .unwrap();
        assert_eq!(kernel.checksum(), expected);
        assert!(
            report.stats.sync_conditions > 0,
            "overlapping extents must synchronize"
        );
    }

    #[test]
    fn model_is_deterministic_per_seed() {
        let a = Cg::new(Scale::Test, 5);
        let b = Cg::new(Scale::Test, 5);
        let c = Cg::new(Scale::Test, 6);
        let collect = |w: &Cg| {
            let mut v = Vec::new();
            for inv in 0..4 {
                w.accesses(inv, 0, &mut v);
            }
            v
        };
        assert_eq!(collect(&a), collect(&b));
        assert_ne!(collect(&a), collect(&c));
    }
}
