//! `fuzz-diff`: the differential-fuzzing driver.
//!
//! Generates seeded random PIR regions plus fault schedules
//! ([`crossinvoc_fuzz::gen`]) and runs each through every applicable
//! engine path — sequential oracle, production interpreter, barriers,
//! SPECCROSS with and without epoch summaries, DOMORE with and without
//! schedule memoization, and the deterministic simulators over a recorded
//! trace — asserting byte-identical memory against the oracle and clean
//! typed-error degradation under injected faults.
//!
//! On a divergence the case is delta-debugged to a minimal counterexample
//! and written to the corpus directory; the run continues and exits
//! nonzero at the end. Checked-in corpus entries are replayed before
//! fresh generation, so the corpus doubles as a regression suite.
//!
//! ```text
//! fuzz-diff [--cases N] [--start SEED] [--seed SEED] [--emit] [--smoke]
//!           [--corpus DIR] [--out DIR] [--fault-percent P] [--no-minimize]
//! ```
//!
//! * `--seed N` replays exactly one seed (the reproduction command every
//!   failure message prints); with `--emit` it instead prints the case in
//!   the corpus format (for pinning cases into `corpus/`).
//! * `--smoke` is the CI mode: a fixed seed window sized to finish well
//!   inside a minute, plus the corpus replay.
//! * every failure line contains the master seed, so any report is
//!   reproducible with `fuzz-diff --seed N`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use crossinvoc_fuzz::gen::{generate, FuzzCase, GenParams};
use crossinvoc_fuzz::{
    case_to_text, load_corpus, minimize, run_case, run_concurrent_pair,
    run_concurrent_pair_telemetry, write_counterexample,
};

struct Args {
    cases: u64,
    start: u64,
    seed: Option<u64>,
    emit: bool,
    smoke: bool,
    corpus: PathBuf,
    /// Where new counterexamples are written (defaults to the corpus
    /// directory; CI points it at an artifact-upload path instead).
    out: Option<PathBuf>,
    fault_percent: u64,
    minimize: bool,
}

impl Args {
    fn out_dir(&self) -> &PathBuf {
        self.out.as_ref().unwrap_or(&self.corpus)
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 500,
        start: 0,
        seed: None,
        emit: false,
        smoke: false,
        corpus: PathBuf::from("corpus"),
        out: None,
        fault_percent: 50,
        minimize: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--start" => {
                args.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--emit" => args.emit = true,
            "--smoke" => args.smoke = true,
            "--corpus" => args.corpus = PathBuf::from(value("--corpus")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--fault-percent" => {
                args.fault_percent = value("--fault-percent")?
                    .parse()
                    .map_err(|e| format!("--fault-percent: {e}"))?
            }
            "--no-minimize" => args.minimize = false,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.fault_percent > 100 {
        return Err("--fault-percent must be 0..=100".into());
    }
    if args.smoke {
        args.cases = args.cases.min(120);
    }
    Ok(args)
}

/// Runs one case; on divergence, minimizes (if enabled) and records the
/// counterexample. Returns whether the case was clean.
fn run_one(case: &FuzzCase, args: &Args, origin: &str) -> bool {
    let report = run_case(case);
    let Some(div) = report.divergence else {
        return true;
    };
    eprintln!(
        "FAIL seed {} ({origin}): path {} diverged: {}",
        case.seed, div.path, div.detail
    );
    eprintln!("     reproduce with: fuzz-diff --seed {}", case.seed);
    let written = if args.minimize {
        eprintln!("     minimizing (seed {})...", case.seed);
        minimize(case)
    } else {
        case.clone()
    };
    let detail = format!(
        "divergence on path {}: {}\nfound by fuzz-diff ({origin}); reproduce: fuzz-diff --seed {}",
        div.path, div.detail, case.seed
    );
    match write_counterexample(args.out_dir(), &written, &detail) {
        Ok(path) => eprintln!("     counterexample written to {}", path.display()),
        Err(e) => {
            eprintln!(
                "     could not write counterexample (seed {}): {e}",
                case.seed
            );
            // Last resort: dump the case to stderr so nothing is lost.
            if let Ok(text) = case_to_text(&written) {
                eprintln!("{text}");
            }
        }
    }
    false
}

/// Keeps injected-fault worker panics (caught by the engines by design)
/// from spamming stderr through the default panic hook; everything else
/// still prints.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str);
        let msg = msg.or_else(|| info.payload().downcast_ref::<&str>().copied());
        if msg.is_some_and(|m| m.contains("injected fault")) {
            return;
        }
        default(info);
    }));
}

fn main() -> ExitCode {
    quiet_injected_panics();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz-diff: {e}");
            eprintln!(
                "usage: fuzz-diff [--cases N] [--start SEED] [--seed SEED] [--smoke] \
                 [--corpus DIR] [--fault-percent P] [--no-minimize]"
            );
            return ExitCode::from(2);
        }
    };
    let params = GenParams {
        fault_percent: args.fault_percent,
        ..GenParams::default()
    };
    let t0 = Instant::now();
    let mut failures = 0u64;

    // Single-seed replay mode.
    if let Some(seed) = args.seed {
        let case = generate(seed, &params);
        if args.emit {
            match case_to_text(&case) {
                Ok(text) => {
                    print!("# pinned from fuzz-diff --seed {seed}\n{text}");
                    return ExitCode::SUCCESS;
                }
                Err(e) => {
                    eprintln!("fuzz-diff: seed {seed}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("seed {seed}: {}", case.note);
        if run_one(&case, &args, "replay") {
            println!("seed {seed}: all paths agree with the oracle");
            return ExitCode::SUCCESS;
        }
        return ExitCode::FAILURE;
    }

    // Corpus replay: every checked-in counterexample must stay fixed.
    match load_corpus(&args.corpus) {
        Ok(entries) => {
            let n = entries.len();
            for (path, case) in entries {
                if !run_one(&case, &args, &format!("corpus {}", path.display())) {
                    failures += 1;
                }
            }
            println!("corpus: {n} entries replayed, {failures} regressed");
        }
        Err(e) => {
            eprintln!("fuzz-diff: corpus load failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Fresh generation over the seed window. Consecutive cases are also
    // paired through one shared worker pool (the region-server deployment
    // shape): the pool must be observationally invisible for fault-free
    // pairs and degrade to typed errors at worst under faults.
    let (mut spec, mut domore, mut faulty, mut pairs) = (0u64, 0u64, 0u64, 0u64);
    let mut pending: Option<FuzzCase> = None;
    for seed in args.start..args.start + args.cases {
        let case = generate(seed, &params);
        let (s, d) = run_case_applicability(&case);
        spec += u64::from(s);
        domore += u64::from(d);
        faulty += u64::from(!case.faults.is_empty());
        if !run_one(&case, &args, "generated") {
            failures += 1;
        }
        match pending.take() {
            None => pending = Some(case),
            Some(prev) => {
                pairs += 1;
                if !run_pair(&prev, &case, &args) {
                    failures += 1;
                }
            }
        }
    }
    println!(
        "fuzz-diff: {} cases (seeds {}..{}), {} spec-applicable, {} domore-applicable, \
         {} fault-injected, {} concurrent pairs, {} divergences, {:.1}s",
        args.cases,
        args.start,
        args.start + args.cases,
        spec,
        domore,
        faulty,
        pairs,
        failures,
        t0.elapsed().as_secs_f64()
    );
    if failures > 0 {
        eprintln!(
            "fuzz-diff: {failures} diverging case(s); see {}",
            args.out_dir().display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs two consecutive generated cases concurrently through one shared
/// worker pool — first plain, then again with the live telemetry plane
/// attached (registry + flight recorder), which must be observationally
/// invisible: same region digests and verdict streams. Records the
/// diverging case (unminimized: a concurrency-sensitive divergence need
/// not reproduce under the shrinker's solo replays). Returns whether the
/// pair was clean.
fn run_pair(a: &FuzzCase, b: &FuzzCase, args: &Args) -> bool {
    let div = run_concurrent_pair(a, b)
        .divergence
        .or_else(|| run_concurrent_pair_telemetry(a, b).divergence);
    let Some(div) = div else {
        return true;
    };
    let offender = if div.path.starts_with("regions-a") {
        a
    } else {
        b
    };
    eprintln!(
        "FAIL pair (seeds {}, {}): path {} diverged: {}",
        a.seed, b.seed, div.path, div.detail
    );
    eprintln!(
        "     reproduce solo with: fuzz-diff --seed {} (shared-pool pairing: seeds {} + {})",
        offender.seed, a.seed, b.seed
    );
    let detail = format!(
        "divergence on path {}: {}\nfound by fuzz-diff (concurrent pair, seeds {} + {})",
        div.path, div.detail, a.seed, b.seed
    );
    match write_counterexample(args.out_dir(), offender, &detail) {
        Ok(path) => eprintln!("     counterexample written to {}", path.display()),
        Err(e) => {
            eprintln!("     could not write counterexample: {e}");
            if let Ok(text) = case_to_text(offender) {
                eprintln!("{text}");
            }
        }
    }
    false
}

/// Cheap applicability probe for the coverage counters (does not execute).
fn run_case_applicability(case: &FuzzCase) -> (bool, bool) {
    let Some(outer) = case.outer() else {
        return (false, false);
    };
    let s = crossinvoc_pir::SpecCrossPlan::build(&case.program, outer).is_ok();
    let d = case.inner().is_some_and(|inner| {
        crossinvoc_pir::DomorePlan::build(&case.program, outer, inner).is_ok()
    });
    (s, d)
}
