//! A hand-written iterative heat solver on the SPECCROSS runtime.
//!
//! This is the "library user" path: instead of going through the compiler
//! IR, the application implements `SpecWorkload` directly — each timestep
//! is an epoch, each row update a task, and the `spec_access` calls of the
//! thesis' Table 4.1 interface become `AccessRecorder` reports. The example
//! profiles the stencil, runs it under speculative barriers, and compares
//! against both the sequential answer and the barrier plan.
//!
//! Run with: `cargo run --example heat_solver`

use crossinvoc::runtime::{RangeSignature, SharedSlice};
use crossinvoc::speccross::prelude::*;
use crossinvoc::speccross::SpecCrossEngine;

const N: usize = 128;
const STEPS: usize = 40;

/// Ping-pong heat grid: epoch `e` reads parity `e % 2`, writes the other.
struct Heat {
    grids: [SharedSlice<i64>; 2],
}

impl Heat {
    fn new() -> Self {
        let init: Vec<i64> = (0..N as i64).map(|i| i * 17 % 101).collect();
        Self {
            grids: [
                SharedSlice::from_vec(init.clone()),
                SharedSlice::from_vec(init),
            ],
        }
    }

    fn result(&mut self) -> Vec<i64> {
        self.grids[STEPS % 2].snapshot()
    }

    fn sequential() -> Vec<i64> {
        let mut cur: Vec<i64> = (0..N as i64).map(|i| i * 17 % 101).collect();
        let mut next = cur.clone();
        for _ in 0..STEPS {
            for r in 0..N {
                let left = cur[r.saturating_sub(1)];
                let right = cur[(r + 1).min(N - 1)];
                next[r] = (left + 2 * cur[r] + right) / 4;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }
}

impl SpecWorkload for Heat {
    type State = (Vec<i64>, Vec<i64>);

    fn num_epochs(&self) -> usize {
        STEPS
    }

    fn num_tasks(&self, _epoch: usize) -> usize {
        N
    }

    fn execute_task(&self, epoch: usize, row: usize, _tid: usize, rec: &mut dyn AccessRecorder) {
        let (src, dst) = (&self.grids[epoch % 2], &self.grids[(epoch + 1) % 2]);
        let src_base = (epoch % 2) * N;
        let dst_base = ((epoch + 1) % 2) * N;
        let lo = row.saturating_sub(1);
        let hi = (row + 1).min(N - 1);
        // spec_access instrumentation: report the cross-epoch accesses.
        rec.read(src_base + lo);
        rec.read(src_base + hi);
        rec.write(dst_base + row);
        // SAFETY: same-epoch tasks write disjoint rows of `dst`; cross-epoch
        // conflicts are the engine's job (detected + rolled back).
        unsafe {
            let v = (src.read(lo) + 2 * src.read(row) + src.read(hi)) / 4;
            dst.write(row, v);
        }
    }

    fn snapshot(&self) -> Self::State {
        let dump = |g: &SharedSlice<i64>| (0..N).map(|i| unsafe { g.read(i) }).collect();
        (dump(&self.grids[0]), dump(&self.grids[1]))
    }

    fn restore(&self, state: &Self::State) {
        for (i, v) in state.0.iter().enumerate() {
            unsafe { self.grids[0].write(i, *v) };
        }
        for (i, v) in state.1.iter().enumerate() {
            unsafe { self.grids[1].write(i, *v) };
        }
    }
}

fn main() {
    // Profile the stencil's minimum dependence distance (§4.4), then run
    // with the speculative range gated accordingly.
    let profile = SpecCrossEngine::<RangeSignature>::profile(&Heat::new(), 4);
    println!(
        "profiled: min dependence distance {:?} over {} tasks",
        profile.min_distance, profile.tasks
    );

    let mut heat = Heat::new();
    let engine = SpecCrossEngine::<RangeSignature>::new(
        SpecConfig::with_workers(4).spec_distance(profile.min_distance),
    );
    let report = engine.execute(&heat).expect("speculative execution");
    assert_eq!(heat.result(), Heat::sequential(), "results verified");
    println!(
        "speculative run: {} tasks, {} epochs, {} checking requests, {} misspeculations",
        report.stats.tasks,
        report.stats.epochs,
        report.stats.check_requests,
        report.stats.misspeculations,
    );

    // The same workload under non-speculative barriers (the baseline).
    let mut heat = Heat::new();
    let report = engine
        .execute_with_barriers(&heat)
        .expect("barrier execution");
    assert_eq!(heat.result(), Heat::sequential());
    println!(
        "barrier run: {} tasks across {} barriers — same answer, more waiting",
        report.stats.tasks, report.stats.epochs,
    );
}
