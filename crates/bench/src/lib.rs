//! Harness support for regenerating every table and figure of the thesis'
//! evaluation (see DESIGN.md §3 for the experiment index).
//!
//! Each figure is a `harness = false` bench target under `benches/` that
//! prints the paper's rows to stdout and writes a CSV to
//! `target/figures/<name>.csv`. This library holds the shared machinery:
//! the thread sweep, the per-benchmark executor dispatch, the composite
//! plans of the Fig. 5.6 case study, and small output helpers.
#![deny(rustdoc::broken_intra_doc_links)]

pub mod json;

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use crossinvoc_domore::policy::{LocalWrite, ModuloWrite, Policy, RoundRobin};
use crossinvoc_sim::prelude::*;
use crossinvoc_workloads::kernel::profile_distance;
use crossinvoc_workloads::{BenchmarkInfo, InnerPlan, Scale};

/// Thread counts swept by the scaling figures (the thesis sweeps 2–24 on
/// its 24-core machine).
pub const THREADS: [usize; 8] = [2, 4, 6, 8, 12, 16, 20, 24];

/// The two thread counts of the barrier-overhead figure (Fig. 4.3).
pub const FIG4_3_THREADS: [usize; 2] = [8, 24];

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Output directory for figure CSVs (`target/figures`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Writes one CSV and announces it on stdout.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = out_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create figure csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    println!("[wrote {}]", path.display());
}

/// Per-thread trace-ring capacity requested via the `CROSSINVOC_TRACE`
/// environment variable: unset, empty, or `0` disables tracing; `1` (or any
/// non-numeric value such as `on`) enables it at the default capacity of
/// 65536 records; a number ≥ 2 is used as the capacity itself. The
/// `CROSSINVOC_TRACE_CAP` variable, when set to a number ≥ 1, overrides the
/// capacity — and enables tracing on its own, so a dropped-record repro
/// needs only one variable (an explicit `CROSSINVOC_TRACE=0` still wins and
/// disables tracing). Figure benches consult this to emit
/// `<name>.trace.jsonl` files next to their CSVs, which `trace-report`
/// renders (see `docs/OBSERVABILITY.md`).
pub fn trace_capacity() -> Option<usize> {
    let cap_override = std::env::var("CROSSINVOC_TRACE_CAP")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let raw = match std::env::var("CROSSINVOC_TRACE") {
        Ok(raw) => raw,
        // CROSSINVOC_TRACE_CAP alone still enables tracing.
        Err(_) => return cap_override,
    };
    let raw = raw.trim();
    if raw == "0" {
        return None;
    }
    if raw.is_empty() {
        return cap_override;
    }
    if let Some(cap) = cap_override {
        return Some(cap);
    }
    match raw.parse::<usize>() {
        Ok(1) | Err(_) => Some(1 << 16),
        Ok(n) => Some(n),
    }
}

/// Writes a JSONL execution trace next to the figure CSVs
/// (`target/figures/<name>.trace.jsonl`) and announces it on stdout.
pub fn write_trace(name: &str, trace: &crossinvoc_runtime::trace::Trace) {
    let path = out_dir().join(format!("{name}.trace.jsonl"));
    fs::write(&path, trace.to_jsonl()).expect("write figure trace");
    println!("[wrote {}]", path.display());
}

/// Profiled minimum dependence distance per benchmark (§4.4), memoized —
/// profiling the larger models costs tens of seconds and the sweeps would
/// otherwise repeat it per thread count.
pub fn profiled_distance(info: &BenchmarkInfo, scale: Scale) -> Option<u64> {
    type DistanceCache = Mutex<HashMap<(&'static str, Scale), Option<u64>>>;
    static CACHE: OnceLock<DistanceCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&d) = cache.lock().expect("cache lock").get(&(info.name, scale)) {
        return d;
    }
    let model = info.model(scale);
    let d = profile_distance(model.as_ref(), 6).min_distance;
    cache
        .lock()
        .expect("cache lock")
        .insert((info.name, scale), d);
    d
}

/// Builds the simulation parameters a benchmark runs under: its profiled
/// speculative range (§4.4) with the thesis' default checkpoint interval.
pub fn spec_params(info: &BenchmarkInfo, scale: Scale, threads: usize) -> SpecSimParams {
    SpecSimParams::with_threads(threads)
        .spec_distance(profiled_distance(info, scale))
        .checkpoint_every(1000)
}

/// One benchmark's speedups at a thread count: (barrier, technique).
#[derive(Debug, Clone, Copy)]
pub struct SpeedupPair {
    /// Inner-loop parallel + non-speculative barriers.
    pub barrier: f64,
    /// DOMORE or SPECCROSS, per the figure.
    pub technique: f64,
}

/// Runs one benchmark under barriers and under DOMORE at `threads`
/// (Fig. 5.1's two series). DOMORE worker count excludes the scheduler, as
/// the thesis' thread accounting does.
pub fn domore_pair(info: &BenchmarkInfo, scale: Scale, threads: usize) -> SpeedupPair {
    let model = info.model(scale);
    let cost = CostModel::default();
    let seq = sequential(model.as_ref(), &cost).total_ns;
    let barrier_result = baseline_barrier(info, scale, threads, &cost);
    let workers = threads.saturating_sub(1).max(1);
    let mut policy = domore_policy(info, scale);
    let domore_result = domore(model.as_ref(), workers, policy.as_mut(), &cost);
    SpeedupPair {
        barrier: barrier_result.speedup_over(seq),
        technique: domore_result.speedup_over(seq),
    }
}

/// The iteration-assignment policy the thesis' plan implies for one
/// benchmark: owner-computes over the grid for LOCALWRITE programs
/// (congruence-class ownership when field arrays share a grid),
/// round-robin otherwise.
pub fn domore_policy(info: &BenchmarkInfo, scale: Scale) -> Box<dyn Policy> {
    match info.inner_plan {
        InnerPlan::LocalWrite => match info.owner_modulus(scale) {
            Some(m) => Box::new(ModuloWrite::new(m)),
            None => {
                let space = info
                    .model(scale)
                    .address_space()
                    .expect("models declare space");
                Box::new(LocalWrite::new(space))
            }
        },
        _ => Box::new(RoundRobin),
    }
}

/// Fraction of each iteration that is loop traversal (statements every
/// LOCALWRITE thread executes redundantly, Fig. 2.3(c)), in percent.
pub const LOCALWRITE_TRAVERSAL_PCT: u64 = 20;

/// LOCALWRITE's per-executed-iteration cost factor at a thread count: the
/// update body plus the traversal of the `threads - 1` iterations the
/// thread skips, amortized onto its own. This is why LOCALWRITE's scaling
/// flattens — redundancy grows with the thread count (§5.1, §5.4).
pub fn localwrite_factor_pct(threads: usize) -> u64 {
    (100 - LOCALWRITE_TRAVERSAL_PCT) + LOCALWRITE_TRAVERSAL_PCT * threads as u64
}

/// The conventional barrier plan for one benchmark, honouring its inner
/// plan: LOCALWRITE inner loops pay the redundant traversal (the paper's
/// LOCALWRITE + barrier configuration); DOALL/Spec-DOALL loops do not.
pub fn baseline_barrier(
    info: &BenchmarkInfo,
    scale: Scale,
    threads: usize,
    cost: &CostModel,
) -> SimResult {
    let model = info.model(scale);
    match info.inner_plan {
        InnerPlan::LocalWrite => barrier(
            &RedundantTraversal::new(model, localwrite_factor_pct(threads)),
            threads,
            cost,
        ),
        _ => barrier(model.as_ref(), threads, cost),
    }
}

/// Runs one benchmark under barriers and under SPECCROSS at `threads`
/// (Fig. 5.2's two series). SPECCROSS worker count excludes the checker
/// thread, matching §5.2's accounting.
pub fn speccross_pair(info: &BenchmarkInfo, scale: Scale, threads: usize) -> SpeedupPair {
    let model = info.model(scale);
    let cost = CostModel::default();
    let seq = sequential(model.as_ref(), &cost).total_ns;
    let barrier_result = baseline_barrier(info, scale, threads, &cost);
    let workers = threads.saturating_sub(1).max(1);
    let params = spec_params(info, scale, workers);
    let spec_result = speccross(model.as_ref(), &params, &cost);
    SpeedupPair {
        barrier: barrier_result.speedup_over(seq),
        technique: spec_result.speedup_over(seq),
    }
}

/// A wrapper inflating kernel costs by a redundancy factor — the
/// LOCALWRITE plan's repeated traversal (§5.4: "redundant computation
/// among threads").
#[derive(Debug)]
pub struct RedundantTraversal<W> {
    inner: W,
    /// Kernel cost multiplier in percent (100 = no redundancy).
    pub factor_pct: u64,
}

impl<W> RedundantTraversal<W> {
    /// Wraps `inner` with `factor_pct`% of the original kernel cost.
    pub fn new(inner: W, factor_pct: u64) -> Self {
        Self { inner, factor_pct }
    }
}

impl<W: SimWorkload> SimWorkload for RedundantTraversal<W> {
    fn num_invocations(&self) -> usize {
        self.inner.num_invocations()
    }
    fn num_iterations(&self, inv: usize) -> usize {
        self.inner.num_iterations(inv)
    }
    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        self.inner.iteration_cost(inv, iter) * self.factor_pct / 100
    }
    fn accesses(
        &self,
        inv: usize,
        iter: usize,
        out: &mut Vec<(usize, crossinvoc_runtime::signature::AccessKind)>,
    ) {
        self.inner.accesses(inv, iter, out)
    }
    fn prologue_cost(&self, inv: usize) -> u64 {
        self.inner.prologue_cost(inv)
    }
    fn sched_cost(&self, inv: usize, iter: usize) -> u64 {
        self.inner.sched_cost(inv, iter)
    }
    fn address_space(&self) -> Option<usize> {
        self.inner.address_space()
    }
}

/// The manual DOANY + barrier plan of §5.4: every thread runs its share,
/// but a per-invocation critical fraction of each task serializes on a
/// global lock (zero for lock-free phases).
pub fn doany_barrier<W: SimWorkload>(
    workload: &W,
    threads: usize,
    critical_pct: &dyn Fn(usize) -> u64,
    cost: &CostModel,
) -> SimResult {
    assert!(threads > 0, "at least one thread is required");
    let stats = crossinvoc_runtime::stats::RegionStats::new();
    let mut clocks = vec![0u64; threads];
    let mut busy = vec![0u64; threads];
    let mut idle = vec![0u64; threads];
    let mut lock_clock = 0u64;
    for inv in 0..workload.num_invocations() {
        stats.add_epoch();
        for iter in 0..workload.num_iterations(inv) {
            let tid = iter % threads;
            let work = workload.iteration_cost(inv, iter);
            let critical = work * critical_pct(inv) / 100;
            // Non-critical part runs freely.
            clocks[tid] += work - critical;
            busy[tid] += work - critical;
            // Critical part serializes on the lock.
            let acquire = clocks[tid].max(lock_clock);
            idle[tid] += acquire - clocks[tid];
            lock_clock = acquire + critical + cost.queue_ns; // lock handoff
            clocks[tid] = lock_clock;
            busy[tid] += critical;
            stats.add_task();
        }
        let slowest = *clocks.iter().max().expect("threads > 0");
        for (clock, i) in clocks.iter_mut().zip(idle.iter_mut()) {
            *i += slowest - *clock;
            *clock = slowest + cost.barrier_ns(threads);
        }
    }
    SimResult {
        total_ns: clocks.into_iter().max().unwrap_or(0),
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded: false,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_workloads::registry;

    #[test]
    fn geomean_of_identical_values_is_the_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn domore_pairs_produce_positive_speedups() {
        for info in registry().into_iter().filter(|b| b.domore) {
            let pair = domore_pair(&info, Scale::Test, 8);
            assert!(pair.barrier > 0.0, "{}", info.name);
            assert!(pair.technique > 0.0, "{}", info.name);
        }
    }

    #[test]
    fn speccross_pairs_produce_positive_speedups() {
        for info in registry().into_iter().filter(|b| b.speccross) {
            let pair = speccross_pair(&info, Scale::Test, 8);
            assert!(pair.barrier > 0.0, "{}", info.name);
            assert!(pair.technique > 0.0, "{}", info.name);
        }
    }

    #[test]
    fn redundant_traversal_inflates_costs() {
        let base = UniformWorkload::independent(2, 4, 1000);
        let wrapped = RedundantTraversal::new(base.clone(), 130);
        assert_eq!(wrapped.iteration_cost(0, 0), 1300);
        assert_eq!(wrapped.num_iterations(0), base.num_iterations(0));
    }

    #[test]
    fn doany_lock_serializes_critical_sections() {
        let w = UniformWorkload::independent(10, 64, 2_000);
        let cost = CostModel::default();
        let seq = sequential(&w, &cost).total_ns;
        let free = doany_barrier(&w, 8, &|_| 0, &cost).speedup_over(seq);
        let locked = doany_barrier(&w, 8, &|_| 60, &cost).speedup_over(seq);
        assert!(
            locked < free,
            "lock contention must cost: {locked} vs {free}"
        );
    }
}
