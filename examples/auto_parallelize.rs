//! The automatic pipeline end-to-end on two contrasting nests: one whose
//! cross-invocation dependences rarely bite (→ SPECCROSS) and one where
//! they bite constantly (→ DOMORE) — the complementarity claim of §1.2.
//!
//! Also prints the compiler-side artifacts: the scheduler/worker partition
//! (§3.3.1) and the extracted `computeAddr` slice (§3.3.4) for the DOMORE
//! nest.
//!
//! Run with: `cargo run --example auto_parallelize`

use crossinvoc::driver::{AutoParallelizer, Strategy};
use crossinvoc::pir::interp::Memory;
use crossinvoc::pir::ir::{Expr, Program, ProgramBuilder, StmtId};
use crossinvoc::pir::transform::DomorePlan;

/// Stencil nest: dependences sit a full invocation apart.
fn stencil_nest() -> (Program, StmtId) {
    let n = 64i64;
    let mut b = ProgramBuilder::new();
    let a = b.array("A", n as usize);
    let t = b.var("t");
    let i = b.var("i");
    let x = b.var("x");
    let outer = b.for_loop(t, Expr::Const(0), Expr::Const(24), |b| {
        b.for_loop(i, Expr::Const(0), Expr::Const(n), |b| {
            b.load(x, a, Expr::Var(i));
            b.store(a, Expr::Var(i), Expr::add(Expr::Var(x), Expr::Const(1)));
        });
    });
    (b.finish(), outer)
}

/// CG-style nest: overlapping row extents collide within a few tasks.
fn cg_nest() -> (Program, StmtId, StmtId) {
    let mut b = ProgramBuilder::new();
    let starts = b.array("starts", 32);
    let c = b.array("C", 48);
    let k = b.var("k");
    let i = b.var("i");
    let j = b.var("j");
    let start = b.var("start");
    let x = b.var("x");
    b.for_loop(k, Expr::Const(0), Expr::Const(32), |b| {
        b.store(
            starts,
            Expr::Var(k),
            Expr::rem(Expr::mul(Expr::Var(k), Expr::Const(3)), Expr::Const(40)),
        );
    });
    let mut inner = StmtId(0);
    let outer = b.for_loop(i, Expr::Const(0), Expr::Const(32), |b| {
        b.load(start, starts, Expr::Var(i));
        inner = b.for_loop(
            j,
            Expr::Var(start),
            Expr::add(Expr::Var(start), Expr::Const(8)),
            |b| {
                b.load(x, c, Expr::Var(j));
                b.store(c, Expr::Var(j), Expr::add(Expr::Var(x), Expr::Const(1)));
            },
        );
    });
    (b.finish(), outer, inner)
}

fn run(name: &str, program: &Program, outer: StmtId, workers: usize) -> Strategy {
    let driver = AutoParallelizer::new(workers);
    let decision = driver.plan(program, outer).expect("plannable nest");
    let mut mem = Memory::zeroed(program);
    decision.execute(&mut mem).expect("parallel execution");
    let mut expected = Memory::zeroed(program);
    decision.execute_sequential(&mut expected);
    assert_eq!(mem.snapshot(), expected.snapshot());
    println!(
        "{name}: chose {} (manifest rate {:.0}%, range {:?}) — verified",
        decision.strategy(),
        100.0 * decision.manifest_rate(),
        decision.spec_distance(),
    );
    decision.strategy()
}

fn main() {
    let (stencil, stencil_outer) = stencil_nest();
    let s1 = run("stencil nest", &stencil, stencil_outer, 4);
    assert_eq!(s1, Strategy::SpecCross, "far dependences speculate");

    let (cg, cg_outer, cg_inner) = cg_nest();
    let s2 = run("CG nest    ", &cg, cg_outer, 8);
    assert_eq!(s2, Strategy::Domore, "near dependences schedule");

    // Peek at the compiler artifacts for the DOMORE nest.
    let plan = DomorePlan::build(&cg, cg_outer, cg_inner).expect("DOMORE-able");
    println!(
        "CG partition: {} scheduler stmts / {} worker stmts; computeAddr: {} slice stmts, {} targets (weight {}/{})",
        plan.partition().scheduler.len(),
        plan.partition().worker.len(),
        plan.slice().stmts.len(),
        plan.slice().targets.len(),
        plan.slice().slice_weight,
        plan.slice().worker_weight,
    );
}
