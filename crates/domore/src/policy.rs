//! Iteration-to-worker assignment policies (§3.3.3).
//!
//! The thesis ships two schedulers and notes the design is pluggable
//! ("DOMORE allows for the easy integration of other smarter scheduling
//! techniques"): round-robin, and LOCALWRITE-style memory partitioning in
//! which each worker owns a region of the shared address space and
//! iterations run on the owner of the memory they touch.
//!
//! Policies must be *deterministic* functions of the iteration stream: the
//! duplicated-scheduler variant (§3.4) replays the policy independently on
//! every worker and relies on all replicas agreeing. The locality-aware
//! [`Adaptive`] policy keeps that property by deriving both its locality map
//! and its load estimate purely from the assignment stream itself, never
//! from runtime feedback.

use std::collections::HashMap;

use crossinvoc_runtime::{IterNum, ThreadId};

/// Deterministic assignment of iterations to workers.
pub trait Policy: Send {
    /// Chooses the worker for the iteration with combined number `iter`
    /// touching `addrs`, among `num_workers` workers.
    fn assign(&mut self, iter: IterNum, addrs: &[usize], num_workers: usize) -> ThreadId;

    /// A fresh replica with identical future behaviour, for scheduler
    /// duplication. Stateful policies must replicate their state.
    fn replicate(&self) -> Box<dyn Policy>;
}

/// Round-robin assignment: iteration `i` runs on worker `i % N`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl Policy for RoundRobin {
    fn assign(&mut self, iter: IterNum, _addrs: &[usize], num_workers: usize) -> ThreadId {
        (iter % num_workers as u64) as ThreadId
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// LOCALWRITE-style owner-computes assignment (§3.3.3, after Han & Tseng).
///
/// The shared address space `0..address_space` is split into `num_workers`
/// contiguous chunks; an iteration runs on the owner of its *first written*
/// address. (The thesis notes that when an iteration touches several owners
/// LOCALWRITE replicates it; DOMORE instead picks one owner and lets the
/// shadow-memory logic synchronize the rest, which is what this policy does.)
#[derive(Debug, Clone, Copy)]
pub struct LocalWrite {
    address_space: usize,
}

impl LocalWrite {
    /// Creates an owner-computes policy over addresses `0..address_space`.
    ///
    /// # Panics
    ///
    /// Panics if `address_space` is zero.
    pub fn new(address_space: usize) -> Self {
        assert!(address_space > 0, "address space must be positive");
        Self { address_space }
    }

    /// The worker owning `addr` among `num_workers` workers.
    pub fn owner(&self, addr: usize, num_workers: usize) -> ThreadId {
        let chunk = self.address_space.div_ceil(num_workers);
        (addr / chunk).min(num_workers - 1)
    }
}

impl Policy for LocalWrite {
    fn assign(&mut self, iter: IterNum, addrs: &[usize], num_workers: usize) -> ThreadId {
        match addrs.first() {
            Some(&addr) => self.owner(addr, num_workers),
            // Address-free iterations fall back to round-robin spreading.
            None => (iter % num_workers as u64) as ThreadId,
        }
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// Owner-computes over congruence classes: ownership of address `a` is
/// decided by `a % modulus`, so arrays laid out back-to-back over the same
/// logical grid (field arrays of a simulation, one per phase) share one
/// partition. This is how LOCALWRITE partitions FLUIDANIMATE's grid in the
/// §5.4 case study: a cell's densities, forces and velocities all belong
/// to the cell's owner.
#[derive(Debug, Clone, Copy)]
pub struct ModuloWrite {
    inner: LocalWrite,
    modulus: usize,
}

impl ModuloWrite {
    /// Creates a policy partitioning the congruence classes `0..modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn new(modulus: usize) -> Self {
        Self {
            inner: LocalWrite::new(modulus),
            modulus,
        }
    }
}

impl Policy for ModuloWrite {
    fn assign(&mut self, iter: IterNum, addrs: &[usize], num_workers: usize) -> ThreadId {
        match addrs.first() {
            Some(&addr) => self.inner.owner(addr % self.modulus, num_workers),
            None => (iter % num_workers as u64) as ThreadId,
        }
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// Chunked assignment: consecutive runs of `chunk` iterations share a worker.
///
/// This is the static-block schedule conventional DOALL codegen uses; it is
/// provided as a baseline for the scheduling-policy ablation.
#[derive(Debug, Clone, Copy)]
pub struct Chunked {
    chunk: u64,
}

impl Chunked {
    /// Creates a policy mapping iterations `[k*chunk, (k+1)*chunk)` to worker
    /// `k % N`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(chunk: u64) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        Self { chunk }
    }
}

impl Policy for Chunked {
    fn assign(&mut self, iter: IterNum, _addrs: &[usize], num_workers: usize) -> ThreadId {
        ((iter / self.chunk) % num_workers as u64) as ThreadId
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// Locality-aware dynamic dispatch: route an iteration to the worker that
/// last touched its `computeAddr` cell, falling back to the least-loaded
/// worker.
///
/// Two pieces of state, both pure functions of the assignment stream (so the
/// policy stays deterministic and replicable):
///
/// * a *locality map* from address to the worker most recently assigned an
///   iteration touching it — following it keeps dependence chains on one
///   worker, which turns would-be synchronization conditions into ordinary
///   program order (no stall, no `latestFinished` polling) and keeps the
///   touched cells hot in one cache;
/// * a per-worker *assigned-load* estimate (iterations weighted by their
///   access-list length). Locality is honoured only while the preferred
///   worker's load stays within [`Adaptive::with_imbalance_limit`] of the
///   least-loaded worker's; beyond that the iteration goes to the
///   least-loaded worker (lowest id on ties) and ownership migrates with it.
///
/// This is the "smarter scheduling" slot §3.3.3 leaves open: unlike
/// [`LocalWrite`] it needs no address-space partition up front, and unlike
/// [`RoundRobin`] it does not scatter dependence chains across workers.
#[derive(Debug, Clone)]
pub struct Adaptive {
    owner: HashMap<usize, ThreadId>,
    load: Vec<u64>,
    imbalance_limit: u64,
}

/// Default load gap (in weight units: one iteration costs `1 + #addrs`)
/// beyond which locality yields to balance.
const DEFAULT_IMBALANCE_LIMIT: u64 = 64;

impl Adaptive {
    /// Creates the policy with the default imbalance limit.
    pub fn new() -> Self {
        Self::with_imbalance_limit(DEFAULT_IMBALANCE_LIMIT)
    }

    /// Creates the policy with an explicit imbalance limit: the preferred
    /// (locality) worker is used only while its assigned load exceeds the
    /// least-loaded worker's by at most `limit` weight units. `0` makes the
    /// policy pure least-loaded; large values make it pure locality.
    pub fn with_imbalance_limit(limit: u64) -> Self {
        Self {
            owner: HashMap::new(),
            load: Vec::new(),
            imbalance_limit: limit,
        }
    }

    fn least_loaded(&self) -> ThreadId {
        let mut best = 0;
        for (tid, &load) in self.load.iter().enumerate() {
            if load < self.load[best] {
                best = tid;
            }
        }
        best
    }
}

impl Default for Adaptive {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Adaptive {
    fn assign(&mut self, _iter: IterNum, addrs: &[usize], num_workers: usize) -> ThreadId {
        if self.load.len() != num_workers {
            self.load.clear();
            self.load.resize(num_workers, 0);
            self.owner.clear();
        }
        let least = self.least_loaded();
        let tid = match addrs.first().and_then(|a| self.owner.get(a).copied()) {
            Some(owner)
                if owner < num_workers
                    && self.load[owner] <= self.load[least] + self.imbalance_limit =>
            {
                owner
            }
            _ => least,
        };
        for &addr in addrs {
            self.owner.insert(addr, tid);
        }
        self.load[tid] += 1 + addrs.len() as u64;
        tid
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

/// The dispatch policies a runtime can be configured with, as plain data —
/// the value-level mirror of the [`Policy`] objects, for configuration
/// surfaces (benchmark harnesses, CLI flags) that need to name a policy
/// before constructing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// [`RoundRobin`].
    #[default]
    RoundRobin,
    /// [`Chunked`] with the given chunk length.
    Chunked {
        /// Consecutive iterations sharing a worker.
        chunk: u64,
    },
    /// [`LocalWrite`] over the given address space.
    LocalWrite {
        /// Size of the partitioned address space.
        address_space: usize,
    },
    /// [`ModuloWrite`] with the given congruence modulus.
    ModuloWrite {
        /// Number of congruence classes.
        modulus: usize,
    },
    /// [`Adaptive`] with the default imbalance limit.
    Adaptive,
}

impl Dispatch {
    /// Instantiates the named policy.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero chunk, empty address space or
    /// zero modulus), exactly as the policy constructors do.
    pub fn policy(&self) -> Box<dyn Policy> {
        match *self {
            Dispatch::RoundRobin => Box::new(RoundRobin),
            Dispatch::Chunked { chunk } => Box::new(Chunked::new(chunk)),
            Dispatch::LocalWrite { address_space } => Box::new(LocalWrite::new(address_space)),
            Dispatch::ModuloWrite { modulus } => Box::new(ModuloWrite::new(modulus)),
            Dispatch::Adaptive => Box::new(Adaptive::new()),
        }
    }

    /// Stable lower-case name (used by bench output and trace tooling).
    pub fn name(&self) -> &'static str {
        match self {
            Dispatch::RoundRobin => "round_robin",
            Dispatch::Chunked { .. } => "chunked",
            Dispatch::LocalWrite { .. } => "local_write",
            Dispatch::ModuloWrite { .. } => "modulo_write",
            Dispatch::Adaptive => "adaptive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_workers() {
        let mut p = RoundRobin;
        let tids: Vec<_> = (0..6).map(|i| p.assign(i, &[], 3)).collect();
        assert_eq!(tids, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn local_write_partitions_address_space() {
        let mut p = LocalWrite::new(100);
        assert_eq!(p.assign(0, &[0], 4), 0);
        assert_eq!(p.assign(1, &[25], 4), 1);
        assert_eq!(p.assign(2, &[99], 4), 3);
    }

    #[test]
    fn local_write_clamps_last_chunk() {
        // 10 addresses over 3 workers → chunks of 4; address 9 is owner 2.
        let p = LocalWrite::new(10);
        assert_eq!(p.owner(9, 3), 2);
    }

    #[test]
    fn local_write_same_address_same_owner() {
        let mut p = LocalWrite::new(64);
        let a = p.assign(0, &[17], 8);
        let b = p.assign(5, &[17], 8);
        assert_eq!(a, b, "ownership is a pure function of the address");
    }

    #[test]
    fn local_write_without_addresses_spreads() {
        let mut p = LocalWrite::new(64);
        assert_eq!(p.assign(0, &[], 4), 0);
        assert_eq!(p.assign(1, &[], 4), 1);
    }

    #[test]
    fn modulo_write_unifies_field_arrays() {
        // Cell c of every field array (base + c) maps to one owner.
        let mut p = ModuloWrite::new(100);
        let a = p.assign(0, &[42], 4);
        let b = p.assign(1, &[100 + 42], 4);
        let c = p.assign(2, &[500 + 42], 4);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "address space must be positive")]
    fn modulo_write_zero_panics() {
        ModuloWrite::new(0);
    }

    #[test]
    fn chunked_groups_consecutive_iterations() {
        let mut p = Chunked::new(2);
        let tids: Vec<_> = (0..8).map(|i| p.assign(i, &[], 2)).collect();
        assert_eq!(tids, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn replicas_agree_with_originals() {
        let mut original = LocalWrite::new(32);
        let mut replica = original.replicate();
        for i in 0..32 {
            assert_eq!(
                original.assign(i, &[i as usize], 4),
                replica.assign(i, &[i as usize], 4)
            );
        }
    }

    #[test]
    #[should_panic(expected = "address space must be positive")]
    fn local_write_zero_space_panics() {
        LocalWrite::new(0);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn chunked_zero_panics() {
        Chunked::new(0);
    }

    #[test]
    fn adaptive_follows_the_last_toucher() {
        let mut p = Adaptive::new();
        let first = p.assign(0, &[7], 4);
        for i in 1..10 {
            assert_eq!(
                p.assign(i, &[7], 4),
                first,
                "the dependence chain on cell 7 stays on one worker"
            );
        }
    }

    #[test]
    fn adaptive_spreads_fresh_addresses_to_least_loaded() {
        let mut p = Adaptive::new();
        // Four never-seen addresses: each goes to the emptiest worker, so
        // the first four iterations cover all four workers.
        let tids: Vec<_> = (0..4)
            .map(|i| p.assign(i, &[100 + i as usize], 4))
            .collect();
        let mut sorted = tids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "got {tids:?}");
    }

    #[test]
    fn adaptive_abandons_locality_beyond_the_imbalance_limit() {
        let mut p = Adaptive::with_imbalance_limit(4);
        let hot = p.assign(0, &[1], 2);
        // Pile iterations onto the hot cell until the limit trips.
        let mut moved = false;
        for i in 1..32 {
            if p.assign(i, &[1], 2) != hot {
                moved = true;
                break;
            }
        }
        assert!(moved, "a bounded limit must eventually rebalance");
    }

    #[test]
    fn adaptive_is_deterministic_across_replicas() {
        let mut original = Adaptive::new();
        let mut replica = original.replicate();
        for i in 0..64 {
            let addrs = [(i as usize * 13) % 7, (i as usize * 5) % 11];
            assert_eq!(
                original.assign(i, &addrs, 4),
                replica.assign(i, &addrs, 4),
                "replicas diverged at iteration {i}"
            );
        }
    }

    #[test]
    fn adaptive_without_addresses_balances() {
        let mut p = Adaptive::new();
        let tids: Vec<_> = (0..4).map(|i| p.assign(i, &[], 4)).collect();
        let mut sorted = tids;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dispatch_constructs_each_policy() {
        let cases = [
            (Dispatch::RoundRobin, "round_robin"),
            (Dispatch::Chunked { chunk: 2 }, "chunked"),
            (Dispatch::LocalWrite { address_space: 8 }, "local_write"),
            (Dispatch::ModuloWrite { modulus: 8 }, "modulo_write"),
            (Dispatch::Adaptive, "adaptive"),
        ];
        for (dispatch, name) in cases {
            assert_eq!(dispatch.name(), name);
            let mut policy = dispatch.policy();
            let tid = policy.assign(0, &[3], 4);
            assert!(tid < 4, "{name} returned worker {tid}");
        }
        assert_eq!(Dispatch::default(), Dispatch::RoundRobin);
    }
}
