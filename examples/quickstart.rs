//! Quickstart: parallelize a barrier-bound loop nest automatically.
//!
//! Builds a small time-stepped stencil in the PIR intermediate
//! representation, lets the automatic driver profile it and choose a
//! technique, executes the chosen plan on real threads, and verifies the
//! result against sequential interpretation.
//!
//! Run with: `cargo run --example quickstart`

use crossinvoc::driver::AutoParallelizer;
use crossinvoc::pir::interp::Memory;
use crossinvoc::pir::ir::{Expr, ProgramBuilder};

fn main() {
    // --- 1. Describe the program: 60 timesteps of two parallel sweeps
    //        over a pair of arrays (the Fig. 1.3 shape).
    let n = 96i64;
    let mut b = ProgramBuilder::new();
    let a = b.array("A", n as usize + 1);
    let bb = b.array("B", n as usize + 1);
    let t = b.var("t");
    let i = b.var("i");
    let j = b.var("j");
    let x = b.var("x");
    let y = b.var("y");
    let outer = b.for_loop(t, Expr::Const(0), Expr::Const(60), |b| {
        // L1: A[i] = f(B[i], B[i+1])
        b.for_loop(i, Expr::Const(0), Expr::Const(n), |b| {
            b.load(x, bb, Expr::Var(i));
            b.load(y, bb, Expr::add(Expr::Var(i), Expr::Const(1)));
            b.store(
                a,
                Expr::Var(i),
                Expr::add(Expr::mul(Expr::Var(x), Expr::Const(3)), Expr::Var(y)),
            );
        });
        // L2: B[j] = g(A[j-1], A[j])
        b.for_loop(
            j,
            Expr::Const(1),
            Expr::add(Expr::Const(n), Expr::Const(1)),
            |b| {
                b.load(x, a, Expr::sub(Expr::Var(j), Expr::Const(1)));
                b.load(y, a, Expr::Var(j));
                b.store(
                    bb,
                    Expr::Var(j),
                    Expr::add(Expr::Var(x), Expr::mul(Expr::Var(y), Expr::Const(7))),
                );
            },
        );
    });
    let program = b.finish();

    // --- 2. Let the driver profile and decide.
    let driver = AutoParallelizer::new(4);
    let decision = driver.plan(&program, outer).expect("plannable nest");
    println!(
        "strategy: {} (manifest rate {:.1}%, speculative range {:?})",
        decision.strategy(),
        100.0 * decision.manifest_rate(),
        decision.spec_distance(),
    );

    // --- 3. Execute in parallel and verify against sequential semantics.
    let mut mem = Memory::zeroed(&program);
    let report = decision.execute(&mut mem).expect("parallel execution");
    let mut expected = Memory::zeroed(&program);
    decision.execute_sequential(&mut expected);
    assert_eq!(
        mem.snapshot(),
        expected.snapshot(),
        "parallel == sequential"
    );
    println!(
        "executed {} tasks over {} epochs with {} misspeculations — results verified",
        report.stats.tasks, report.stats.epochs, report.stats.misspeculations,
    );
}
