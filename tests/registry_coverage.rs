//! Registry-wide coverage: every Table 5.1 model is internally consistent,
//! profiles deterministically, simulates with conserved task counts, and
//! (for the SPECCROSS set) runs correctly on the real engine under Bloom
//! signatures as well as the default ranges.

use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_runtime::BloomSignature;
use crossinvoc_sim::prelude::*;
use crossinvoc_speccross::prelude::*;
use crossinvoc_speccross::SpecCrossEngine;
use crossinvoc_workloads::kernel::{profile_distance, AccessKernel};
use crossinvoc_workloads::{registry, Scale};

/// Models must declare address spaces that actually bound their accesses.
#[test]
fn declared_address_spaces_bound_all_accesses() {
    for info in registry() {
        let model = info.model(Scale::Test);
        let space = model.address_space().expect("all models declare space");
        let mut pairs = Vec::new();
        for inv in 0..model.num_invocations() {
            for iter in 0..model.num_iterations(inv) {
                pairs.clear();
                model.accesses(inv, iter, &mut pairs);
                for &(addr, _) in &pairs {
                    assert!(
                        addr < space,
                        "{}: address {addr} outside space {space}",
                        info.name
                    );
                }
            }
        }
    }
}

/// Same-invocation tasks never write-conflict on the SPECCROSS set: the
/// engine's precondition that inner loops are barrier-free parallel
/// (checked exhaustively at test scale). The Spec-DOALL programs (ECLAT,
/// BLACKSCHOLES) are exempt — their rare intra-invocation conflicts are
/// exactly why Table 5.1 assigns them Spec-DOALL and keeps them off the
/// SPECCROSS list, which a companion assertion pins down.
#[test]
fn same_invocation_writes_are_conflict_free() {
    use crossinvoc_workloads::InnerPlan;
    for info in registry() {
        if info.inner_plan == InnerPlan::SpecDoall {
            assert!(
                !info.speccross,
                "{}: Spec-DOALL inner loops cannot feed SPECCROSS",
                info.name
            );
            continue;
        }
        if !info.speccross {
            continue;
        }
        let model = info.model(Scale::Test);
        for inv in 0..model.num_invocations() {
            let mut writers: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            let mut pairs = Vec::new();
            for iter in 0..model.num_iterations(inv) {
                pairs.clear();
                model.accesses(inv, iter, &mut pairs);
                for &(addr, kind) in &pairs {
                    if kind == AccessKind::Write {
                        if let Some(&other) = writers.get(&addr) {
                            panic!(
                                "{}: invocation {inv} tasks {other} and {iter} both write {addr}",
                                info.name
                            );
                        }
                        writers.insert(addr, iter);
                    }
                }
            }
        }
    }
}

/// Simulated executors conserve the task count across techniques.
#[test]
fn simulated_task_counts_are_conserved() {
    let cost = CostModel::default();
    for info in registry() {
        let model = info.model(Scale::Test);
        let total = model.total_iterations();
        let seq = sequential(model.as_ref(), &cost);
        assert_eq!(seq.stats.tasks, total, "{} sequential", info.name);
        let bar = barrier(model.as_ref(), 4, &cost);
        assert_eq!(bar.stats.tasks, total, "{} barrier", info.name);
        let distance = profile_distance(model.as_ref(), 6).min_distance;
        let params = SpecSimParams::with_threads(4).spec_distance(distance);
        let spec = speccross(model.as_ref(), &params, &cost);
        assert!(
            spec.stats.tasks >= total,
            "{} speccross lost tasks",
            info.name
        );
        if spec.stats.misspeculations == 0 {
            assert_eq!(spec.stats.tasks, total, "{} speccross", info.name);
        }
    }
}

/// The real engine under Bloom signatures reproduces sequential results on
/// every SPECCROSS benchmark (false positives may trigger recovery; the
/// answer must survive it).
#[test]
fn bloom_signatures_preserve_results_on_the_speccross_set() {
    for info in registry().into_iter().filter(|b| b.speccross) {
        let model = info.model(Scale::Test);
        let distance = profile_distance(model.as_ref(), 6).min_distance;
        let kernel = AccessKernel::from_model(info.model(Scale::Test));
        let expected = kernel.sequential_checksum();
        SpecCrossEngine::<BloomSignature>::new(SpecConfig::with_workers(2).spec_distance(distance))
            .execute(&kernel)
            .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        assert_eq!(kernel.checksum(), expected, "{} diverged", info.name);
    }
}

/// Profiling the same model twice gives identical reports (determinism of
/// the whole input-generation + profiling pipeline).
#[test]
fn profiles_are_deterministic_across_reconstruction() {
    for info in registry() {
        let a = profile_distance(info.model(Scale::Test).as_ref(), 6);
        let b = profile_distance(info.model(Scale::Test).as_ref(), 6);
        assert_eq!(a.min_distance, b.min_distance, "{}", info.name);
        assert_eq!(a.conflicts, b.conflicts, "{}", info.name);
        assert_eq!(a.tasks, b.tasks, "{}", info.name);
    }
}
