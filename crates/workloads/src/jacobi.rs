//! JACOBI — the PolyBench 2-D stencil (Table 5.1, Fig. 5.2(e)).
//!
//! A ping-pong five-point stencil: each timestep (epoch) reads the previous
//! grid and writes the other. Tasks are grid *rows*; a row's update reads
//! its neighbouring rows of the source grid, so cross-invocation
//! dependences sit roughly one epoch apart (Table 5.3 profiles a minimum
//! distance just below the epoch size: 497/997 for the train/ref grids).

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The Jacobi stencil workload model (row-granular addresses).
#[derive(Debug, Clone)]
pub struct Jacobi {
    rows: usize,
    steps: usize,
    /// Per-row kernel cost base (proportional to the row length).
    row_cost: u64,
    seed: u64,
}

impl Jacobi {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            rows: scale.pick(24, 100),
            steps: scale.pick(16, 1000),
            row_cost: 4_000,
            seed,
        }
    }

    /// Grid-parity base address: epoch `e` writes grid `e % 2`.
    fn base(&self, epoch: usize) -> (usize, usize) {
        if epoch.is_multiple_of(2) {
            (0, self.rows) // read grid 0, write grid 1
        } else {
            (self.rows, 0)
        }
    }
}

impl SimWorkload for Jacobi {
    fn num_invocations(&self) -> usize {
        self.steps
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.rows
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        // Mild cost variance (cache effects / boundary rows): enough to
        // create the barrier imbalance of Fig. 4.3.
        self.row_cost + splitmix64(self.seed ^ ((inv * 131 + iter) as u64)) % 800
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let (src, dst) = self.base(inv);
        out.push((src + iter.saturating_sub(1), AccessKind::Read));
        out.push((src + iter, AccessKind::Read));
        out.push((src + (iter + 1).min(self.rows - 1), AccessKind::Read));
        out.push((dst + iter, AccessKind::Write));
    }

    fn address_space(&self) -> Option<usize> {
        Some(2 * self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_runtime::RangeSignature;
    use crossinvoc_speccross::prelude::*;
    use crossinvoc_speccross::SpecCrossEngine;

    #[test]
    fn profiled_distance_is_about_one_epoch() {
        let j = Jacobi::new(Scale::Test, 3);
        let d = profile_distance(&j, 4)
            .min_distance
            .expect("the stencil must conflict across epochs");
        assert!(
            d >= j.rows as u64 / 2 && d <= 2 * j.rows as u64,
            "distance ≈ one epoch of tasks, got {d} for {} rows",
            j.rows
        );
    }

    #[test]
    fn speccross_execution_matches_sequential() {
        let model = Jacobi::new(Scale::Test, 3);
        let d = profile_distance(&model, 4).min_distance;
        let kernel = AccessKernel::from_model(model);
        let expected = kernel.sequential_checksum();
        let report =
            SpecCrossEngine::<RangeSignature>::new(SpecConfig::with_workers(2).spec_distance(d))
                .execute(&kernel)
                .unwrap();
        assert_eq!(kernel.checksum(), expected);
        assert_eq!(report.stats.misspeculations, 0);
    }

    #[test]
    fn same_epoch_tasks_write_disjoint_rows() {
        let j = Jacobi::new(Scale::Test, 3);
        let mut writes = std::collections::HashSet::new();
        for t in 0..j.num_iterations(0) {
            let mut v = Vec::new();
            j.accesses(0, t, &mut v);
            for (addr, kind) in v {
                if kind == AccessKind::Write {
                    assert!(writes.insert(addr), "duplicate write to {addr}");
                }
            }
        }
    }
}
