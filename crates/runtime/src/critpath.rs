//! Critical-path extraction and what-if wait analysis over a [`Trace`].
//!
//! A merged trace is a set of per-thread event sequences plus the
//! cross-thread causality edges recorded as [`Event::Wake`]. Together they
//! form the region's happens-before DAG: program order within a thread,
//! wake edges across threads. This module answers the two questions the
//! evaluation chapter keeps asking of that DAG:
//!
//! * **Where did the wall time go?** [`critical_path`] walks the DAG
//!   backward from the last event using the last-wakeup rule — at a wake,
//!   the chain jumps to the releasing thread — and attributes every
//!   nanosecond on the longest chain to a [`PathCategory`]: compute,
//!   barrier wait, SPSC stall, checker latency, misspeculation redo, or
//!   uncategorized overhead.
//! * **What would removing a wait buy?** [`what_if`] replays the DAG
//!   forward with one or more [`WakeEdge`] classes zeroed (the wait window
//!   collapses, the cross-thread constraint is dropped) and reports the
//!   predicted span and speedup. Zeroing the barrier class on a
//!   barrier-mode trace predicts the barrier-removal speedup that
//!   SPECCROSS measures — the validation in `tests/trace.rs` holds the two
//!   within 10% of each other on a Table 5.1 kernel.
//!
//! Both analyses run on traces from the threaded engines and from the
//! virtual-time simulators, because both emit the same schema.

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::{Event, Trace, WakeEdge};
use crate::ThreadId;

/// Where a nanosecond on the critical path went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathCategory {
    /// Task execution (matched dispatch→retire run, first execution).
    Compute,
    /// Stalled at a barrier or on a DOMORE synchronization condition
    /// ([`WakeEdge::Barrier`]).
    BarrierWait,
    /// Waiting on an SPSC produce→consume handoff ([`WakeEdge::Queue`]).
    SpscStall,
    /// Waiting on the checker: checkpoint-rendezvous drains
    /// ([`WakeEdge::Checkpoint`]) and conflict-verdict recovery
    /// ([`WakeEdge::Checker`]).
    CheckerLatency,
    /// Re-executing tasks that had already retired once — the redo work a
    /// misspeculation rollback forces.
    MisspecRedo,
    /// Everything else on the path: prologues, scheduling, barrier service
    /// cost on the releasing thread, bookkeeping between events.
    Overhead,
}

impl PathCategory {
    /// All categories, in display order.
    pub const ALL: [PathCategory; 6] = [
        PathCategory::Compute,
        PathCategory::BarrierWait,
        PathCategory::SpscStall,
        PathCategory::CheckerLatency,
        PathCategory::MisspecRedo,
        PathCategory::Overhead,
    ];

    fn index(self) -> usize {
        match self {
            PathCategory::Compute => 0,
            PathCategory::BarrierWait => 1,
            PathCategory::SpscStall => 2,
            PathCategory::CheckerLatency => 3,
            PathCategory::MisspecRedo => 4,
            PathCategory::Overhead => 5,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PathCategory::Compute => "compute",
            PathCategory::BarrierWait => "barrier wait",
            PathCategory::SpscStall => "spsc stall",
            PathCategory::CheckerLatency => "checker latency",
            PathCategory::MisspecRedo => "misspec redo",
            PathCategory::Overhead => "overhead",
        }
    }
}

impl fmt::Display for PathCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

fn wait_category(edge: WakeEdge) -> PathCategory {
    match edge {
        WakeEdge::Barrier => PathCategory::BarrierWait,
        WakeEdge::Queue => PathCategory::SpscStall,
        WakeEdge::Checkpoint | WakeEdge::Checker => PathCategory::CheckerLatency,
    }
}

/// Nanoseconds per [`PathCategory`], indexed like [`PathCategory::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Per-category totals.
    pub ns: [u64; 6],
}

impl Attribution {
    /// Nanoseconds attributed to `cat`.
    pub fn get(&self, cat: PathCategory) -> u64 {
        self.ns[cat.index()]
    }

    fn add(&mut self, cat: PathCategory, ns: u64) {
        self.ns[cat.index()] += ns;
    }

    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }
}

/// The critical path of one traced region: its length and where the time on
/// it went, overall and per epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritPathReport {
    /// Trace span (timestamp of the last record) — the path's length.
    pub wall_ns: u64,
    /// Per-category attribution over the whole path.
    pub attribution: Attribution,
    /// Per-epoch attribution for path segments whose epoch is known
    /// (sorted by epoch).
    pub per_epoch: Vec<(u32, Attribution)>,
    /// Number of DAG nodes (records) the path visited.
    pub steps: usize,
}

impl fmt::Display for CritPathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "critical path: {} ns over {} steps",
            self.wall_ns, self.steps
        )?;
        let total = self.attribution.total().max(1);
        for cat in PathCategory::ALL {
            let ns = self.attribution.get(cat);
            if ns == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<16} {:>14} ns  {:>5.1}%",
                cat.label(),
                ns,
                100.0 * ns as f64 / total as f64
            )?;
        }
        Ok(())
    }
}

/// Outcome of a [`what_if`] replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIfReport {
    /// Observed span of the input trace.
    pub baseline_ns: u64,
    /// Predicted span with the chosen edge classes zeroed.
    pub predicted_ns: u64,
}

impl WhatIfReport {
    /// Predicted speedup (`baseline / predicted`; 1.0 when degenerate).
    pub fn predicted_speedup(&self) -> f64 {
        if self.predicted_ns == 0 || self.baseline_ns == 0 {
            1.0
        } else {
            self.baseline_ns as f64 / self.predicted_ns as f64
        }
    }
}

impl fmt::Display for WhatIfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ns -> {} ns ({:.2}x)",
            self.baseline_ns,
            self.predicted_ns,
            self.predicted_speedup()
        )
    }
}

/// Per-record derived facts shared by both analyses.
struct Dag<'a> {
    trace: &'a Trace,
    /// Index of the previous record on the same thread (`usize::MAX`: none).
    prev_same_tid: Vec<usize>,
    /// For a `BarrierLeave` followed by a `Wake` on the same thread: that
    /// wake's edge class. `None` for unwoken leaves (e.g. the releaser's).
    leave_class: Vec<Option<WakeEdge>>,
    /// `leave_class` with unwoken leaves filled in from woken leaves of the
    /// same epoch — the releaser participates in the same synchronization
    /// its waiters were woken from.
    leave_class_inferred: Vec<Option<WakeEdge>>,
    /// For each record: the index of the matching `BarrierEnter` if this is
    /// a `BarrierLeave` (`usize::MAX` otherwise / unmatched).
    leave_enter: Vec<usize>,
    /// `TaskRetire` records whose (epoch, task) already retired earlier in
    /// the trace — re-execution after a rollback.
    redo: Vec<bool>,
}

impl<'a> Dag<'a> {
    fn build(trace: &'a Trace) -> Self {
        let records = trace.records();
        let n = records.len();
        let mut prev_same_tid = vec![usize::MAX; n];
        let mut leave_class = vec![None; n];
        let mut leave_enter = vec![usize::MAX; n];
        let mut redo = vec![false; n];

        let mut last_on: BTreeMap<ThreadId, usize> = BTreeMap::new();
        let mut open_enter: BTreeMap<ThreadId, usize> = BTreeMap::new();
        let mut retired: BTreeMap<(u32, u64), u32> = BTreeMap::new();
        for (i, rec) in records.iter().enumerate() {
            if let Some(&p) = last_on.get(&rec.tid) {
                prev_same_tid[i] = p;
                // A wake directly after a leave (same thread) names the
                // wait's edge class.
                if let Event::Wake { edge, .. } = rec.event {
                    if matches!(records[p].event, Event::BarrierLeave { .. }) {
                        leave_class[p] = Some(edge);
                    }
                }
            }
            match rec.event {
                Event::BarrierEnter { .. } => {
                    open_enter.insert(rec.tid, i);
                }
                Event::BarrierLeave { .. } => {
                    if let Some(e) = open_enter.remove(&rec.tid) {
                        leave_enter[i] = e;
                    }
                }
                Event::TaskRetire { epoch, task } => {
                    let seen = retired.entry((epoch, task)).or_insert(0);
                    if *seen > 0 {
                        redo[i] = true;
                    }
                    *seen += 1;
                }
                _ => {}
            }
            last_on.insert(rec.tid, i);
        }
        // Classify unwoken leaves (the releasing participant has no wake)
        // by the class their epoch's woken leaves carry.
        let mut epoch_class: BTreeMap<u32, WakeEdge> = BTreeMap::new();
        for (i, rec) in records.iter().enumerate() {
            if let (Event::BarrierLeave { epoch, .. }, Some(c)) = (rec.event, leave_class[i]) {
                epoch_class.entry(epoch).or_insert(c);
            }
        }
        let mut leave_class_inferred = leave_class.clone();
        for (i, rec) in records.iter().enumerate() {
            if let Event::BarrierLeave { epoch, .. } = rec.event {
                if leave_class_inferred[i].is_none() {
                    leave_class_inferred[i] = epoch_class.get(&epoch).copied();
                }
            }
        }
        Dag {
            trace,
            prev_same_tid,
            leave_class,
            leave_class_inferred,
            leave_enter,
            redo,
        }
    }

    /// Latest record on `src` strictly before merged index `i`.
    fn anchor(&self, src: ThreadId, i: usize) -> Option<usize> {
        // Walk the destination's view backward: records are globally sorted,
        // so scan back from i for the nearest record of `src`. The scan is
        // short in practice (the anchor is the release that just happened),
        // and bounded by the trace length.
        let records = self.trace.records();
        (0..i).rev().find(|&j| records[j].tid == src)
    }

    /// Best-effort epoch of a record (for per-epoch attribution).
    fn epoch_hint(&self, i: usize) -> Option<u32> {
        match self.trace.records()[i].event {
            Event::EpochBegin { epoch }
            | Event::EpochEnd { epoch }
            | Event::BarrierEnter { epoch }
            | Event::BarrierLeave { epoch, .. }
            | Event::Checkpoint { epoch }
            | Event::Degradation { epoch }
            | Event::TaskAssign { epoch, .. }
            | Event::TaskDispatch { epoch, .. }
            | Event::TaskRetire { epoch, .. }
            | Event::FaultInjected { epoch, .. }
            | Event::CheckerSummary { epoch, .. }
            | Event::CheckElided { epoch, .. }
            | Event::ScheduleCacheHit { epoch } => Some(epoch),
            Event::Misspeculation { later_epoch, .. } => Some(later_epoch),
            // Per-shard totals are pass-scoped, not epoch-scoped.
            Event::CheckerShard { .. } => None,
            Event::Wake { edge, seq, .. } => match edge {
                // For barrier/checkpoint edges the sequence number *is* the
                // epoch.
                WakeEdge::Barrier | WakeEdge::Checkpoint => Some(seq as u32),
                WakeEdge::Queue | WakeEdge::Checker => None,
            },
        }
    }
}

/// Extracts the critical path of `trace` with per-category attribution.
///
/// The walk starts at the trace's last record and repeatedly steps to its
/// causal predecessor: at a [`Event::Wake`] it jumps to the releasing
/// thread (attributing the waited interval to the edge's wait category),
/// otherwise it follows program order on the same thread (attributing the
/// interval by the event that ends it). An empty trace yields a zeroed
/// report.
pub fn critical_path(trace: &Trace) -> CritPathReport {
    let records = trace.records();
    if records.is_empty() {
        return CritPathReport {
            wall_ns: 0,
            attribution: Attribution::default(),
            per_epoch: Vec::new(),
            steps: 0,
        };
    }
    let dag = Dag::build(trace);
    let mut attribution = Attribution::default();
    let mut per_epoch: BTreeMap<u32, Attribution> = BTreeMap::new();
    let mut steps = 0usize;
    fn attribute(
        attribution: &mut Attribution,
        per_epoch: &mut BTreeMap<u32, Attribution>,
        epoch: Option<u32>,
        cat: PathCategory,
        ns: u64,
    ) {
        attribution.add(cat, ns);
        if let Some(e) = epoch {
            per_epoch.entry(e).or_default().add(cat, ns);
        }
    }

    // Start at the latest record (the merged order puts it last).
    let mut cur = records.len() - 1;
    loop {
        steps += 1;
        let rec = &records[cur];
        if let Event::Wake { edge, src_tid, .. } = rec.event {
            if let Some(a) = dag.anchor(src_tid, cur) {
                // The wait ended because `src` reached its state at the
                // anchor: the whole interval since then was spent on this
                // edge.
                let ns = rec.t_ns.saturating_sub(records[a].t_ns);
                let epoch = dag.epoch_hint(cur).or_else(|| dag.epoch_hint(a));
                attribute(
                    &mut attribution,
                    &mut per_epoch,
                    epoch,
                    wait_category(edge),
                    ns,
                );
                cur = a;
                continue;
            }
        }
        let epoch = dag.epoch_hint(cur);
        let p = dag.prev_same_tid[cur];
        if p == usize::MAX {
            // Before a thread's first record: region startup / prologue.
            attribute(
                &mut attribution,
                &mut per_epoch,
                epoch,
                PathCategory::Overhead,
                rec.t_ns,
            );
            break;
        }
        let dt = rec.t_ns.saturating_sub(records[p].t_ns);
        match rec.event {
            Event::TaskRetire { .. } => {
                let cat = if dag.redo[cur] {
                    PathCategory::MisspecRedo
                } else {
                    PathCategory::Compute
                };
                attribute(&mut attribution, &mut per_epoch, epoch, cat, dt);
            }
            Event::BarrierLeave { wait_ns, .. } => {
                // Only reached for waits without a recorded wake (e.g. the
                // releasing thread itself): the slack is attributed to the
                // wait class, the remainder is synchronization service.
                let cat =
                    dag.leave_class_inferred[cur].map_or(PathCategory::BarrierWait, wait_category);
                let slack = wait_ns.min(dt);
                attribute(&mut attribution, &mut per_epoch, epoch, cat, slack);
                attribute(
                    &mut attribution,
                    &mut per_epoch,
                    epoch,
                    PathCategory::Overhead,
                    dt - slack,
                );
            }
            _ => attribute(
                &mut attribution,
                &mut per_epoch,
                epoch,
                PathCategory::Overhead,
                dt,
            ),
        }
        cur = p;
    }
    CritPathReport {
        wall_ns: trace.span_ns(),
        attribution,
        per_epoch: per_epoch.into_iter().collect(),
        steps,
    }
}

/// Replays the happens-before DAG with the given edge classes zeroed and
/// reports the predicted span.
///
/// Zeroing a class removes the *whole* enter→leave window of waits that end
/// in a wake of that class (slack plus synchronization service — "the
/// barrier is gone", not "the barrier is instant") and drops the
/// cross-thread constraint of its wake edges. Waits of other classes keep
/// their service cost but their slack is re-derived from the releaser's
/// replayed time, so removing one wait class correctly shortens (or fails
/// to shorten) waits downstream of it.
pub fn what_if(trace: &Trace, zeroed: &[WakeEdge]) -> WhatIfReport {
    let records = trace.records();
    let baseline_ns = trace.span_ns();
    if records.is_empty() {
        return WhatIfReport {
            baseline_ns,
            predicted_ns: 0,
        };
    }
    let dag = Dag::build(trace);
    let is_zeroed = |edge: WakeEdge| zeroed.contains(&edge);

    // Step weights: full program-order delta, minus the wait slack for
    // non-zeroed woken waits (re-imposed via the wake edge), or zero for
    // every step inside a zeroed wait window.
    let n = records.len();
    let mut zero_step = vec![false; n];
    let mut slack_sub = vec![0u64; n];
    for i in 0..n {
        if let Event::BarrierLeave { wait_ns, .. } = records[i].event {
            if dag.leave_class_inferred[i].is_some_and(is_zeroed) {
                // Zero every same-thread step inside the window (inferred
                // classes included: the releaser's service vanishes with
                // the synchronization itself).
                let enter = dag.leave_enter[i];
                let mut j = i;
                while j != usize::MAX && j != enter {
                    zero_step[j] = true;
                    j = dag.prev_same_tid[j];
                }
            } else if dag.leave_class[i].is_some() {
                // Only directly-woken waits get their slack re-derived from
                // the releaser (the wake edge re-imposes it); an unwoken
                // wait has no edge to restore it, so it keeps its span.
                slack_sub[i] = wait_ns;
            }
        } else if let Event::Wake { edge, .. } = records[i].event {
            if is_zeroed(edge) {
                zero_step[i] = true;
            }
        }
    }

    let mut rt = vec![0u64; n];
    let mut last_on: BTreeMap<ThreadId, usize> = BTreeMap::new();
    let mut predicted_ns = 0u64;
    for (i, rec) in records.iter().enumerate() {
        let mut t = match last_on.get(&rec.tid) {
            Some(&p) => {
                let dt = rec.t_ns.saturating_sub(records[p].t_ns);
                let w = if zero_step[i] {
                    0
                } else {
                    dt.saturating_sub(slack_sub[i])
                };
                rt[p] + w
            }
            // A thread's first record keeps its original offset (startup /
            // prologue time is not a wait).
            None => rec.t_ns,
        };
        if let Event::Wake { edge, src_tid, .. } = rec.event {
            if !is_zeroed(edge) {
                if let Some(&a) = last_on.get(&src_tid) {
                    let lag = rec.t_ns.saturating_sub(records[a].t_ns);
                    t = t.max(rt[a] + lag);
                }
            }
        }
        rt[i] = t;
        predicted_ns = predicted_ns.max(t);
        last_on.insert(rec.tid, i);
    }
    WhatIfReport {
        baseline_ns,
        predicted_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;

    /// Two workers, one epoch: worker 0 finishes its task at 10 and waits
    /// 20 ns for worker 1 (done at 30); the barrier costs 4 ns of service
    /// and releases both at 34, with a wake edge 1 → 0.
    fn barrier_trace() -> Trace {
        let rec = |t_ns, tid, event| TraceRecord { t_ns, tid, event };
        Trace::from_records(vec![
            rec(0, 0, Event::TaskDispatch { epoch: 0, task: 0 }),
            rec(0, 1, Event::TaskDispatch { epoch: 0, task: 1 }),
            rec(10, 0, Event::TaskRetire { epoch: 0, task: 0 }),
            rec(10, 0, Event::BarrierEnter { epoch: 0 }),
            rec(30, 1, Event::TaskRetire { epoch: 0, task: 1 }),
            rec(30, 1, Event::BarrierEnter { epoch: 0 }),
            rec(
                34,
                0,
                Event::BarrierLeave {
                    epoch: 0,
                    wait_ns: 20,
                },
            ),
            rec(
                34,
                0,
                Event::Wake {
                    edge: WakeEdge::Barrier,
                    src_tid: 1,
                    seq: 0,
                },
            ),
            rec(
                34,
                1,
                Event::BarrierLeave {
                    epoch: 0,
                    wait_ns: 0,
                },
            ),
        ])
    }

    #[test]
    fn critical_path_runs_through_the_slowest_thread() {
        let trace = barrier_trace();
        let report = critical_path(&trace);
        assert_eq!(report.wall_ns, 34);
        // The path ends at worker 1's leave (t=34), which waited 0: its
        // interval is 4 ns of barrier service, preceded by 30 ns of compute.
        assert_eq!(report.attribution.get(PathCategory::Compute), 30);
        assert_eq!(report.attribution.get(PathCategory::Overhead), 4);
        assert_eq!(report.attribution.get(PathCategory::BarrierWait), 0);
        assert_eq!(report.attribution.total(), 34);
        let (epoch, attr) = report.per_epoch[0];
        assert_eq!(epoch, 0);
        assert_eq!(attr.get(PathCategory::Compute), 30);
    }

    #[test]
    fn what_if_without_zeroed_classes_reproduces_the_span() {
        let trace = barrier_trace();
        let r = what_if(&trace, &[]);
        assert_eq!(r.baseline_ns, 34);
        assert_eq!(r.predicted_ns, 34);
        assert!((r.predicted_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zeroing_barrier_waits_predicts_the_barrier_free_span() {
        let trace = barrier_trace();
        let r = what_if(&trace, &[WakeEdge::Barrier]);
        // Without the barrier each worker is just its own compute: 10 and
        // 30 ns — the span collapses to the slowest worker.
        assert_eq!(r.predicted_ns, 30);
        assert!((r.predicted_speedup() - 34.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn wake_to_a_busy_releaser_keeps_the_wait_in_replay() {
        // Zeroing the *queue* class must not touch the barrier wait here.
        let trace = barrier_trace();
        let r = what_if(&trace, &[WakeEdge::Queue]);
        assert_eq!(r.predicted_ns, 34);
    }

    #[test]
    fn redo_work_is_attributed_separately() {
        let rec = |t_ns, tid, event| TraceRecord { t_ns, tid, event };
        let trace = Trace::from_records(vec![
            rec(0, 0, Event::TaskDispatch { epoch: 0, task: 0 }),
            rec(10, 0, Event::TaskRetire { epoch: 0, task: 0 }),
            // Rollback: the same task runs again.
            rec(20, 0, Event::TaskDispatch { epoch: 0, task: 0 }),
            rec(35, 0, Event::TaskRetire { epoch: 0, task: 0 }),
        ]);
        let report = critical_path(&trace);
        assert_eq!(report.attribution.get(PathCategory::Compute), 10);
        assert_eq!(report.attribution.get(PathCategory::MisspecRedo), 15);
        assert_eq!(report.attribution.get(PathCategory::Overhead), 10);
    }

    #[test]
    fn empty_trace_yields_a_zeroed_report() {
        let trace = Trace::from_records(Vec::new());
        let report = critical_path(&trace);
        assert_eq!(report.wall_ns, 0);
        assert_eq!(report.attribution.total(), 0);
        let r = what_if(&trace, &[WakeEdge::Barrier]);
        assert_eq!(r.predicted_ns, 0);
    }
}
