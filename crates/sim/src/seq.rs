//! Sequential baseline executor.

use crossinvoc_runtime::stats::RegionStats;

use crate::cost::CostModel;
use crate::result::SimResult;
use crate::workload::SimWorkload;

/// Simulates single-threaded execution: the best-sequential baseline every
/// speedup in Chapter 5 is measured against. No synchronization, no
/// scheduling, no per-task overhead — just prologues and kernel work.
pub fn sequential<W: SimWorkload + ?Sized>(workload: &W, _cost: &CostModel) -> SimResult {
    let stats = RegionStats::new();
    let mut clock = 0u64;
    for inv in 0..workload.num_invocations() {
        clock += workload.prologue_cost(inv);
        stats.add_epoch();
        for iter in 0..workload.num_iterations(inv) {
            clock += workload.iteration_cost(inv, iter);
            stats.add_task();
        }
    }
    SimResult {
        total_ns: clock,
        busy_ns: vec![clock],
        idle_ns: vec![0],
        stats: stats.summary(),
        degraded: false,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::UniformWorkload;

    #[test]
    fn sums_all_work_and_prologues() {
        let w = UniformWorkload::independent(4, 10, 100).with_prologue(50);
        let r = sequential(&w, &CostModel::default());
        assert_eq!(r.total_ns, 4 * 50 + 4 * 10 * 100);
        assert_eq!(r.stats.tasks, 40);
        assert_eq!(r.stats.epochs, 4);
        assert_eq!(r.idle_ns, vec![0]);
    }

    #[test]
    fn empty_workload_is_instant() {
        let w = UniformWorkload::independent(0, 0, 1);
        assert_eq!(sequential(&w, &CostModel::default()).total_ns, 0);
    }
}
