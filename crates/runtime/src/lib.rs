//! Shared runtime substrate for the crossinvoc reproduction of
//! *Automatically Exploiting Cross-Invocation Parallelism Using Runtime
//! Information* (Huang, 2012/2013).
//!
//! Both runtime engines described by the thesis — the non-speculative
//! DOMORE scheduler (`crossinvoc-domore`) and the speculative
//! SPECCROSS barrier (`crossinvoc-speccross`) — are built from a
//! small set of shared primitives, which this crate provides:
//!
//! * [`spsc`] — the lock-free single-producer/single-consumer queue used for
//!   the `produce`/`consume` primitives of §3.2.3 of the thesis (scheduler →
//!   worker synchronization conditions, worker → checker signature requests).
//! * [`barrier`] — a sense-reversing spinning barrier, standing in for the
//!   `pthread_barrier_wait` baseline the paper compares against, with idle-time
//!   accounting so the barrier-overhead experiment (Fig. 4.3) can be measured.
//! * [`shadow`] — the shadow memory of §3.2.1: one `(thread, iteration)` tuple
//!   per tracked memory location, used by DOMORE to detect dynamic dependences.
//! * [`signature`] — memory access signatures of §4.2.1: a summarising
//!   structure per task used by SPECCROSS to detect cross-epoch conflicts.
//!   Range-based (the paper's default) and Bloom-filter-based schemes are
//!   provided behind the [`signature::AccessSignature`] trait.
//! * [`shared`] — [`shared::SharedSlice`], the shared-memory view worker
//!   threads mutate concurrently. The *runtimes* guarantee conflicting
//!   iterations are ordered; the type encapsulates the `unsafe` needed to
//!   express that in Rust.
//! * [`stats`] — lightweight counters shared by runtimes and the simulator.
//! * [`metrics`] — the counters plus log₂ wait-time histograms, snapshotted
//!   once per execution into a [`metrics::MetricsSummary`].
//! * [`trace`] — structured execution tracing: per-thread ring-buffered
//!   [`trace::TraceSink`]s of typed [`trace::Event`]s, merged into a
//!   time-ordered JSONL [`trace::Trace`] with the same schema from the
//!   threaded engines and the simulator (see `docs/OBSERVABILITY.md`).
//! * [`critpath`] — the causal profiler over a trace: builds the
//!   cross-thread happens-before DAG from [`trace::Event::Wake`] edges,
//!   extracts the critical path with per-category time attribution, and
//!   answers what-if questions ("what if barrier waits were free?") by
//!   replaying the DAG with an edge class zeroed.
//! * [`chrome`] — Chrome/Perfetto `trace_event` JSON export
//!   ([`trace::Trace::to_chrome_json`]): one track per thread, flow events
//!   for every causality edge, counter tracks — open any trace in
//!   `ui.perfetto.dev`.
//! * [`fault`] — a deterministic fault-injection plan ([`fault::FaultPlan`])
//!   both engines and the simulator consult at well-defined points, so
//!   recovery and degradation paths can be exercised and replayed exactly.
//! * [`wait`] — adaptive spin-then-park waiting ([`wait::AdaptiveSpin`] +
//!   [`wait::Parker`]): bounded spin, bounded yields, then timed parks, so
//!   long waits stop burning a core while abort flags and watchdog deadlines
//!   keep being observed.
//! * [`pool`] — the region-server execution substrate: the
//!   [`pool::RegionExecutor`] boundary between engines and their threads,
//!   with [`pool::ScopedExecutor`] (a fresh scoped thread per role, the
//!   solo-region default) and [`pool::WorkerPool`] (long-lived threads with
//!   FIFO all-or-nothing gang admission serving many concurrent regions).
//! * [`telemetry`] — the live telemetry plane for the region server: a
//!   [`telemetry::ServerRegistry`] of pool-wide and per-region gauges
//!   updated from the hot paths and snapshotted without stopping workers, a
//!   [`telemetry::FlightRecorder`] that dumps the bounded trace rings as
//!   post-mortem JSONL when a region faults / degrades / blows a latency
//!   deadline, and Prometheus + JSON exposition
//!   ([`telemetry::RegistrySnapshot`]).
//!
//! # Example
//!
//! ```
//! use crossinvoc_runtime::spsc::Queue;
//!
//! let (tx, rx) = Queue::<u64>::with_capacity(8);
//! tx.produce(41);
//! tx.produce(42);
//! assert_eq!(rx.consume(), 41);
//! assert_eq!(rx.consume(), 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod barrier;
pub mod chrome;
pub mod critpath;
pub mod fault;
pub mod hash;
pub mod metrics;
pub mod pool;
pub mod shadow;
pub mod shared;
pub mod signature;
pub mod spsc;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod wait;

pub use barrier::{BarrierWait, SpinBarrier};
pub use critpath::{critical_path, what_if, CritPathReport, PathCategory, WhatIfReport};
pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use metrics::{Metrics, MetricsSummary};
pub use pool::{RegionExecutor, Role, ScopedExecutor, WorkerPool};
pub use shadow::{ShadowEntry, ShadowMemory};
pub use shared::SharedSlice;
pub use signature::{AccessSignature, BloomSignature, RangeSignature};
pub use spsc::Queue;
pub use telemetry::{
    FlightRecorder, RegionState, RegionTelemetry, RegistrySnapshot, ServerRegistry,
};
pub use trace::{Event, Trace, TraceCollector, TraceRecord, TraceReport, TraceSink, WakeEdge};
pub use wait::{AdaptiveSpin, Parker};

/// Identifier of a worker thread within a parallel region.
///
/// Thread ids are dense indices in `0..num_workers`, assigned by the runtime
/// that spawned the region. They are *not* OS thread ids.
pub type ThreadId = usize;

/// A global iteration (task) number.
///
/// DOMORE numbers iterations consecutively across *all* invocations of the
/// parallelized inner loop (the "combined iteration number" of Fig. 3.5), so a
/// single monotone counter totally orders every unit of scheduled work.
pub type IterNum = u64;

/// Sentinel iteration number meaning "no iteration yet" (the `⊥` entries of
/// the shadow-memory walkthrough in Fig. 3.5).
pub const NO_ITER: IterNum = IterNum::MAX;
