//! BLACKSCHOLES — the PARSEC option-pricing benchmark (Table 5.1,
//! Fig. 5.1(a)).
//!
//! Each invocation prices a block of options; pricing is embarrassingly
//! parallel except for a *rare* cross-iteration update to shared error
//! statistics, which forces a Spec-DOALL inner-loop plan (Table 5.1). At
//! the nest level that rare-but-real dependence is exactly what DOMORE's
//! runtime detection turns into an occasional synchronization condition
//! instead of a barrier.

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The BLACKSCHOLES workload model.
#[derive(Debug, Clone)]
pub struct Blackscholes {
    /// Pricing rounds (invocations).
    rounds: usize,
    /// Options per round (iterations).
    options: usize,
    /// One in `rarity` iterations updates the shared statistics cell.
    rarity: u64,
    seed: u64,
}

impl Blackscholes {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            rounds: scale.pick(12, 200),
            options: scale.pick(48, 1024),
            rarity: 400,
            seed,
        }
    }

    fn stats_cell(&self) -> usize {
        self.options
    }

    fn is_rare_hit(&self, inv: usize, iter: usize) -> bool {
        splitmix64(self.seed ^ ((inv as u64) << 32 | iter as u64)).is_multiple_of(self.rarity)
    }
}

impl SimWorkload for Blackscholes {
    fn num_invocations(&self) -> usize {
        self.rounds
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.options
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        // A closed-form pricing kernel with mild data-dependent variance.
        5_000 + splitmix64(self.seed ^ ((inv * 977 + iter) as u64)) % 1_500
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        out.push((iter, AccessKind::Write)); // prices[iter]
        if self.is_rare_hit(inv, iter) {
            out.push((self.stats_cell(), AccessKind::Write));
        }
    }

    fn sched_cost(&self, _inv: usize, _iter: usize) -> u64 {
        // Table 5.2: 4.5% scheduler/worker ratio.
        230
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.options + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_domore::prelude::*;

    #[test]
    fn shared_updates_are_rare_but_present() {
        let b = Blackscholes::new(Scale::Test, 9);
        let mut hits = 0;
        let mut v = Vec::new();
        for inv in 0..b.rounds {
            for iter in 0..b.options {
                v.clear();
                b.accesses(inv, iter, &mut v);
                hits += usize::from(v.len() == 2);
            }
        }
        let total = b.rounds * b.options;
        assert!(hits > 0, "the dependence must exist");
        assert!(
            (hits as f64) < total as f64 * 0.02,
            "and be rare: {hits}/{total}"
        );
    }

    #[test]
    fn fixed_price_cells_keep_per_worker_chains() {
        // prices[iter] is written by worker iter % W every round: the only
        // cross-worker conflicts go through the stats cell.
        let b = Blackscholes::new(Scale::Test, 9);
        let p = profile_distance(&b, 4);
        assert!(p.conflicts > 0);
    }

    #[test]
    fn domore_execution_matches_sequential() {
        let kernel = AccessKernel::from_model(Blackscholes::new(Scale::Test, 9));
        let expected = kernel.sequential_checksum();
        DomoreRuntime::new(DomoreConfig::with_workers(3))
            .execute(&kernel)
            .unwrap();
        assert_eq!(kernel.checksum(), expected);
    }
}
