//! The sequential oracle: an independent, bounds-checked, fueled
//! evaluator for PIR programs.
//!
//! The production interpreter ([`crossinvoc_pir::Interp`]) is part of the
//! system under test — every engine path executes through it — so the
//! oracle re-implements the language semantics from the [`Stmt`]/[`Expr`]
//! definitions instead of calling it. Differences between the two are
//! reported as divergences like any other. Unlike the interpreter, the
//! oracle returns *typed errors* for out-of-bounds accesses and runaway
//! loops (a fuel budget), which lets the minimizer reject invalid shrink
//! candidates without catching panics.

use crossinvoc_pir::ir::{BinOp, Expr, Program, Stmt, StmtId};

/// Why the oracle rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// An array access fell outside the array (index, array name).
    OutOfBounds {
        /// The evaluated element index.
        index: i64,
        /// Name of the accessed array.
        array: String,
    },
    /// The program exceeded the execution-step budget.
    FuelExhausted,
    /// The program contains an opaque call (the fuzzer never generates
    /// them, and the corpus format cannot express them).
    UnsupportedCall(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::OutOfBounds { index, array } => {
                write!(f, "index {index} out of bounds for array {array}")
            }
            OracleError::FuelExhausted => write!(f, "execution-step budget exhausted"),
            OracleError::UnsupportedCall(name) => write!(f, "opaque call {name:?}"),
        }
    }
}

/// Default step budget: generous for generated cases (thousands of
/// iterations), tight enough to bound hand-edited corpus entries.
pub const DEFAULT_FUEL: u64 = 20_000_000;

struct Oracle<'p> {
    program: &'p Program,
    mem: Vec<i64>,
    env: Vec<i64>,
    fuel: u64,
}

/// Runs `program` sequentially on zeroed memory and returns the final
/// memory image.
///
/// # Errors
///
/// [`OracleError`] on out-of-bounds accesses, opaque calls, or fuel
/// exhaustion.
pub fn run_oracle(program: &Program) -> Result<Vec<i64>, OracleError> {
    run_oracle_fueled(program, DEFAULT_FUEL)
}

/// [`run_oracle`] with an explicit step budget.
///
/// # Errors
///
/// As for [`run_oracle`].
pub fn run_oracle_fueled(program: &Program, fuel: u64) -> Result<Vec<i64>, OracleError> {
    let mut o = Oracle {
        program,
        mem: vec![0; program.memory_len()],
        env: vec![0; program.vars().len()],
        fuel,
    };
    for &s in program.body() {
        o.exec(s)?;
    }
    Ok(o.mem)
}

impl Oracle<'_> {
    fn eval(&self, e: &Expr) -> i64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Var(v) => self.env[v.0],
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.eval(a), self.eval(b));
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.rem_euclid(b)
                        }
                    }
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Eq => i64::from(a == b),
                }
            }
        }
    }

    fn addr(&self, array: crossinvoc_pir::ArrayId, index: i64) -> Result<usize, OracleError> {
        let len = self.program.arrays()[array.0].len;
        let oob = || OracleError::OutOfBounds {
            index,
            array: self.program.arrays()[array.0].name.clone(),
        };
        let idx = usize::try_from(index).map_err(|_| oob())?;
        if idx >= len {
            return Err(oob());
        }
        Ok(self.program.array_base(array) + idx)
    }

    fn exec(&mut self, id: StmtId) -> Result<(), OracleError> {
        self.fuel = self.fuel.checked_sub(1).ok_or(OracleError::FuelExhausted)?;
        match self.program.stmt(id) {
            Stmt::Assign { var, expr } => {
                self.env[var.0] = self.eval(expr);
            }
            Stmt::Load { var, array, index } => {
                let addr = self.addr(*array, self.eval(index))?;
                self.env[var.0] = self.mem[addr];
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let addr = self.addr(*array, self.eval(index))?;
                self.mem[addr] = self.eval(value);
            }
            Stmt::Call { name, .. } => {
                return Err(OracleError::UnsupportedCall(name.clone()));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let arm = if self.eval(cond) != 0 {
                    then_body
                } else {
                    else_body
                };
                for &s in arm.clone().iter() {
                    self.exec(s)?;
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let (var, from, to) = (*var, self.eval(from), self.eval(to));
                let body = body.clone();
                let mut i = from;
                while i < to {
                    self.env[var.0] = i;
                    for &s in &body {
                        self.exec(s)?;
                    }
                    i += 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_pir::ir::ProgramBuilder;
    use crossinvoc_pir::Memory;

    #[test]
    fn oracle_matches_the_interpreter() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let i = b.var("i");
        let x = b.var("x");
        b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(x, a, Expr::Var(i));
            b.store(
                a,
                Expr::Var(i),
                Expr::add(Expr::mul(Expr::Var(x), Expr::Const(3)), Expr::Var(i)),
            );
        });
        let p = b.finish();
        let oracle = run_oracle(&p).unwrap();
        let mut mem = Memory::zeroed(&p);
        crossinvoc_pir::Interp::new(&p).run(&mut mem);
        assert_eq!(oracle, mem.snapshot());
    }

    #[test]
    fn out_of_bounds_is_a_typed_error() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 2);
        b.store(a, Expr::Const(5), Expr::Const(1));
        let p = b.finish();
        assert!(matches!(
            run_oracle(&p),
            Err(OracleError::OutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn fuel_bounds_runaway_loops() {
        let mut b = ProgramBuilder::new();
        let i = b.var("i");
        let x = b.var("x");
        b.for_loop(i, Expr::Const(0), Expr::Const(1_000_000), |b| {
            b.assign(x, Expr::Var(i));
        });
        let p = b.finish();
        assert_eq!(run_oracle_fueled(&p, 1000), Err(OracleError::FuelExhausted));
    }
}
