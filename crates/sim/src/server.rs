//! Virtual-time model of the region server's shared worker pool.
//!
//! The threaded [`crossinvoc_runtime::pool::WorkerPool`] admits whole gangs
//! in FIFO ticket order, all-or-nothing: the oldest waiting gang is granted
//! as soon as enough slots are free, and no later gang may overtake it.
//! This module replays that admission discipline in virtual time, which is
//! how the BENCH_8 saturation gate scores throughput: CI machines
//! (frequently single-core) cannot observe real concurrent speedup, so the
//! gate feeds each region's *solo* simulated duration into this model and
//! compares the pooled makespan against region-at-a-time execution
//! (`sum` of the durations). The units are whatever the durations are in —
//! typically the `total_ns` of a [`crate::SimResult`].
//!
//! The model deliberately mirrors the pool's two scheduling properties:
//!
//! * **All-or-nothing**: a region occupies its whole gang for its whole
//!   duration; partial admission never happens (so a deadlock between
//!   half-admitted gangs is impossible — same argument as the real pool).
//! * **FIFO head-of-line**: a wide gang at the head blocks later narrow
//!   gangs even when they would fit — the price of starvation-freedom.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crossinvoc_runtime::metrics::{Histogram, MetricsSummary};
use crossinvoc_runtime::telemetry::{PoolSnapshot, RegionSnapshot, RegionState, RegistrySnapshot};

/// One region submitted to the simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpec {
    /// Pool slots the region's gang occupies while running (for SPECCROSS:
    /// workers + checker shards; for DOMORE: workers — the scheduler rides
    /// the submitting manager thread).
    pub gang: usize,
    /// Virtual run time of the region once admitted (e.g. its solo
    /// simulated `total_ns`).
    pub duration: u64,
}

/// Timeline of a simulated region-server run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSimResult {
    /// Virtual completion time of the whole batch through the shared pool.
    pub makespan: u64,
    /// Region-at-a-time baseline: the sum of all durations (one region
    /// holds the pool at a time, as pre-region-server code would).
    pub sequential: u64,
    /// Per-region `(start, finish)` virtual times, in submission order.
    pub timeline: Vec<(u64, u64)>,
}

impl ServerSimResult {
    /// Aggregate throughput of the pooled run relative to region-at-a-time
    /// execution (`> 1.0` means the shared pool helped).
    pub fn throughput_ratio(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.sequential as f64 / self.makespan as f64
    }
}

/// Simulates `regions` (all submitted at time 0, in order) through a pool
/// of `pool_slots` workers under FIFO all-or-nothing gang admission.
///
/// # Panics
///
/// Panics if `pool_slots` is zero or any region's gang is zero or exceeds
/// `pool_slots` (the real pool rejects such regions with `InvalidConfig`
/// before they reach admission).
pub fn region_server(pool_slots: usize, regions: &[RegionSpec]) -> ServerSimResult {
    assert!(pool_slots > 0, "pool must have at least one slot");
    let mut free = pool_slots;
    let mut now = 0u64;
    // Pending slot releases as (finish_time, slots), popped earliest-first.
    let mut releases: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut timeline = Vec::with_capacity(regions.len());
    let mut makespan = 0u64;
    let mut sequential = 0u64;

    for region in regions {
        assert!(
            region.gang > 0 && region.gang <= pool_slots,
            "gang of {} on a pool of {pool_slots} slots",
            region.gang
        );
        // FIFO: this region is the head of the queue; retire finished gangs
        // until its whole gang fits. Later regions cannot overtake it.
        while free < region.gang {
            let Reverse((finish, slots)) = releases
                .pop()
                .expect("gang fits in the pool, so releases must cover the deficit");
            now = now.max(finish);
            free += slots;
        }
        let start = now;
        let finish = start + region.duration;
        free -= region.gang;
        releases.push(Reverse((finish, region.gang)));
        timeline.push((start, finish));
        makespan = makespan.max(finish);
        sequential += region.duration;
    }

    ServerSimResult {
        makespan,
        sequential,
        timeline,
    }
}

/// Replays [`region_server`] and emits one [`RegistrySnapshot`] per virtual
/// event time (t = 0, every admission, every completion), mirroring what the
/// threaded server's live registry would report at those instants — same
/// struct, same `to_json()` wire schema (`crossinvoc-telemetry-1`), so
/// `server-stats` renders simulated and real runs identically.
///
/// All regions are submitted at t = 0, matching the model's assumption, so a
/// region's queue wait equals its admission time and its end-to-end latency
/// equals its finish time. Engine-level fields the model does not simulate
/// (metrics, faults, degradations, flight dumps) are zero.
///
/// # Panics
///
/// Panics under the same conditions as [`region_server`].
pub fn region_server_telemetry(pool_slots: usize, regions: &[RegionSpec]) -> Vec<RegistrySnapshot> {
    let result = region_server(pool_slots, regions);
    let mut times: Vec<u64> = std::iter::once(0)
        .chain(result.timeline.iter().flat_map(|&(s, f)| [s, f]))
        .collect();
    times.sort_unstable();
    times.dedup();

    times
        .iter()
        .map(|&t| {
            let queue_wait = Histogram::new();
            let region_latency = Histogram::new();
            let mut slots_busy = 0usize;
            let mut in_flight = 0usize;
            let mut admissions = 0u64;
            let mut busy_ns = 0u64;
            let rows = regions
                .iter()
                .zip(&result.timeline)
                .enumerate()
                .map(|(i, (region, &(start, finish)))| {
                    let state = if t < start {
                        RegionState::Queued
                    } else if t < finish {
                        RegionState::Running
                    } else {
                        RegionState::Done
                    };
                    if state != RegionState::Queued {
                        admissions += 1;
                        queue_wait.record(start);
                        busy_ns += region.gang as u64 * (t.min(finish) - start);
                    }
                    if state == RegionState::Running {
                        slots_busy += region.gang;
                        in_flight += 1;
                    }
                    if state == RegionState::Done {
                        region_latency.record(finish);
                    }
                    RegionSnapshot {
                        region_id: i as u64 + 1,
                        kind: "sim".to_string(),
                        gang: region.gang,
                        state,
                        queue_wait_ns: if state == RegionState::Queued {
                            0
                        } else {
                            start
                        },
                        degrade_events: 0,
                        faults: 0,
                        latency_ns: match state {
                            RegionState::Queued => 0,
                            RegionState::Running => t,
                            _ => finish,
                        },
                        metrics: MetricsSummary::default(),
                    }
                })
                .collect();
            let utilization = if t == 0 {
                0.0
            } else {
                (busy_ns as f64 / (pool_slots as f64 * t as f64)).clamp(0.0, 1.0)
            };
            RegistrySnapshot {
                t_ns: t,
                pool: PoolSnapshot {
                    slots: pool_slots,
                    slots_busy,
                    in_flight,
                    admissions,
                    busy_ns,
                    utilization,
                    queue_wait: queue_wait.snapshot(),
                    region_latency: region_latency.snapshot(),
                },
                regions: rows,
                flight_dumps: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(gang: usize, duration: u64) -> RegionSpec {
        RegionSpec { gang, duration }
    }

    #[test]
    fn independent_gangs_overlap_and_beat_region_at_a_time() {
        // Four 2-wide regions on 4 slots: two waves instead of four.
        let r = region_server(4, &[spec(2, 100), spec(2, 100), spec(2, 100), spec(2, 100)]);
        assert_eq!(r.makespan, 200);
        assert_eq!(r.sequential, 400);
        assert!(r.throughput_ratio() > 1.9);
    }

    #[test]
    fn fifo_head_of_line_blocks_even_fitting_gangs() {
        // The 4-wide head must wait for the whole pool; the narrow region
        // behind it waits too, despite one free slot, matching the pool's
        // starvation-free ticket order.
        let r = region_server(4, &[spec(3, 100), spec(4, 10), spec(1, 10)]);
        assert_eq!(r.timeline[0], (0, 100));
        assert_eq!(r.timeline[1], (100, 110));
        assert_eq!(r.timeline[2], (110, 120));
    }

    #[test]
    fn saturated_pool_serializes_exactly() {
        let r = region_server(2, &[spec(2, 50), spec(2, 70)]);
        assert_eq!(r.makespan, 120);
        assert_eq!(r.sequential, 120);
        assert!((r.throughput_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gang of 5")]
    fn oversized_gang_panics() {
        region_server(4, &[spec(5, 1)]);
    }

    #[test]
    fn telemetry_mirror_tracks_admissions_and_completion() {
        // Two waves on 4 slots: regions 1+2 run at t=0, 3+4 at t=100.
        let snaps =
            region_server_telemetry(4, &[spec(2, 100), spec(2, 100), spec(2, 100), spec(2, 100)]);
        // Event times: 0 (admit 1+2), 100 (finish 1+2, admit 3+4), 200.
        assert_eq!(snaps.len(), 3);

        let t0 = &snaps[0];
        assert_eq!(t0.t_ns, 0);
        assert_eq!(t0.pool.slots_busy, 4);
        assert_eq!(t0.pool.in_flight, 2);
        assert_eq!(t0.pool.admissions, 2);
        assert_eq!(t0.regions[2].state, RegionState::Queued);

        let t1 = &snaps[1];
        assert_eq!(t1.t_ns, 100);
        assert_eq!(t1.pool.admissions, 4);
        assert_eq!(t1.pool.in_flight, 2);
        assert_eq!(t1.regions[0].state, RegionState::Done);
        assert_eq!(t1.regions[0].latency_ns, 100);
        // Wave-two regions waited one wave in the admission queue.
        assert_eq!(t1.regions[2].queue_wait_ns, 100);

        let t2 = &snaps[2];
        assert_eq!(t2.pool.in_flight, 0);
        assert_eq!(t2.pool.slots_busy, 0);
        // Full pool busy for the whole makespan: utilization 1.0.
        assert!((t2.pool.utilization - 1.0).abs() < 1e-12);
        assert_eq!(t2.pool.region_latency.count, 4);
    }

    #[test]
    fn telemetry_mirror_speaks_the_live_wire_schema() {
        let snaps = region_server_telemetry(2, &[spec(2, 50), spec(2, 70)]);
        let last = snaps.last().unwrap().to_json();
        assert!(last.starts_with("{\"schema\":\"crossinvoc-telemetry-1\""));
        assert!(last.contains("\"kind\":\"sim\""));
        assert!(!last.contains('\n'));
    }
}
