//! Fig. 3.3 — CG loop speedup with and without DOMORE.
//!
//! The thesis' headline DOMORE figure: with pthread barriers CG's 9-task
//! epochs make synchronization dominate and performance *degrades* with
//! thread count; DOMORE's cross-invocation overlap scales it.

use crossinvoc_bench::{domore_pair, write_csv, THREADS};
use crossinvoc_workloads::registry::by_name;
use crossinvoc_workloads::Scale;

fn main() {
    println!("Fig. 3.3: performance improvement of CG with and without DOMORE");
    println!(
        "{:>7} {:>16} {:>12}",
        "threads", "pthread barrier", "DOMORE"
    );
    let info = by_name("CG");
    let mut rows = Vec::new();
    let mut crossover_seen = false;
    for threads in THREADS {
        let pair = domore_pair(&info, Scale::Figure, threads);
        crossover_seen |= pair.technique > pair.barrier;
        println!(
            "{:>7} {:>15.2}x {:>11.2}x",
            threads, pair.barrier, pair.technique
        );
        rows.push(format!(
            "{},{:.4},{:.4}",
            threads, pair.barrier, pair.technique
        ));
    }
    assert!(
        crossover_seen,
        "DOMORE must beat the barrier plan somewhere in the sweep"
    );
    write_csv("fig3_3", "threads,barrier_speedup,domore_speedup", &rows);
}
