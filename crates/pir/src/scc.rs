//! Strongly connected components, the DAG-SCC, and the DOMORE
//! scheduler/worker partitioner (§3.3.1, Fig. 3.6(c)).
//!
//! DOMORE splits a loop nest into a scheduler thread (outer-loop sequential
//! code plus loop traversal) and worker threads (the inner-loop body). The
//! split must form a *pipeline* — all cross-thread dependences flowing
//! scheduler → worker — so the partitioner groups PDG nodes into SCCs and
//! iterates the thesis' two repair rules until fixpoint: an SCC containing
//! any scheduler statement becomes scheduler entirely, and a worker SCC
//! with an edge *back* into a scheduler SCC is re-partitioned to the
//! scheduler.

use std::collections::{HashMap, HashSet};

use crate::ir::{Program, Stmt, StmtId};
use crate::pdg::Pdg;

/// The condensation of a PDG into strongly connected components.
#[derive(Debug, Clone)]
pub struct SccGraph {
    components: Vec<Vec<StmtId>>,
    comp_of: HashMap<StmtId, usize>,
    dag_edges: HashSet<(usize, usize)>,
}

impl SccGraph {
    /// Computes SCCs of `pdg` (Tarjan) and the induced DAG.
    pub fn build(pdg: &Pdg) -> SccGraph {
        let nodes = pdg.nodes();
        let index_of: HashMap<StmtId, usize> =
            nodes.iter().enumerate().map(|(k, &s)| (s, k)).collect();
        let mut adj = vec![Vec::new(); nodes.len()];
        for e in pdg.edges() {
            adj[index_of[&e.src]].push(index_of[&e.dst]);
        }

        // Iterative Tarjan.
        let n = nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();
        let mut call_stack: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            call_stack.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
                if *ei < adj[v].len() {
                    let w = adj[v][*ei];
                    *ei += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                }
            }
        }

        let mut comp_of = HashMap::new();
        let components: Vec<Vec<StmtId>> = components
            .into_iter()
            .enumerate()
            .map(|(cid, comp)| {
                comp.into_iter()
                    .map(|k| {
                        comp_of.insert(nodes[k], cid);
                        nodes[k]
                    })
                    .collect()
            })
            .collect();
        let mut dag_edges = HashSet::new();
        for e in pdg.edges() {
            let (a, b) = (comp_of[&e.src], comp_of[&e.dst]);
            if a != b {
                dag_edges.insert((a, b));
            }
        }
        SccGraph {
            components,
            comp_of,
            dag_edges,
        }
    }

    /// The components (each a set of statements).
    pub fn components(&self) -> &[Vec<StmtId>] {
        &self.components
    }

    /// Component id of a statement.
    ///
    /// # Panics
    ///
    /// Panics if `stmt` is not a PDG node.
    pub fn component_of(&self, stmt: StmtId) -> usize {
        self.comp_of[&stmt]
    }

    /// Whether the condensation has an edge between two components.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.dag_edges.contains(&(from, to))
    }

    /// Edges of the condensation.
    pub fn dag_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.dag_edges.iter().copied()
    }
}

/// A scheduler/worker split of a loop nest's statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Statements executed by the scheduler thread.
    pub scheduler: HashSet<StmtId>,
    /// Statements executed by worker threads.
    pub worker: HashSet<StmtId>,
}

impl Partition {
    /// Runs the partitioning algorithm of §3.3.1 for the nest
    /// `outer_loop` / `inner_loop` over the outer loop's PDG.
    ///
    /// Seed: inner-loop *body* statements belong to the worker; everything
    /// else (outer sequential code and both loops' traversal) belongs to
    /// the scheduler. The two repair rules then run to fixpoint.
    ///
    /// # Panics
    ///
    /// Panics if `inner_loop` is not a `For` inside the PDG's loop.
    pub fn scheduler_worker(program: &Program, pdg: &Pdg, inner_loop: StmtId) -> Partition {
        let Stmt::For { body, .. } = program.stmt(inner_loop) else {
            panic!("inner loop must be a For statement");
        };
        assert!(
            pdg.nodes().contains(&inner_loop),
            "inner loop must be inside the partitioned nest"
        );
        let worker_seed: HashSet<StmtId> = program.subtrees(body).into_iter().collect();
        let scc = SccGraph::build(pdg);
        let ncomp = scc.components().len();
        // true = scheduler.
        let mut is_sched = vec![false; ncomp];
        for (cid, comp) in scc.components().iter().enumerate() {
            // Rule 1: any scheduler statement claims the whole SCC.
            if comp.iter().any(|s| !worker_seed.contains(s)) {
                is_sched[cid] = true;
            }
        }
        // Rule 2: a worker SCC with a backedge into a scheduler SCC moves
        // to the scheduler; repeat until both partitions converge.
        loop {
            let mut changed = false;
            for (a, b) in scc.dag_edges() {
                if !is_sched[a] && is_sched[b] {
                    is_sched[a] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut scheduler = HashSet::new();
        let mut worker = HashSet::new();
        for (cid, comp) in scc.components().iter().enumerate() {
            for &s in comp {
                if is_sched[cid] {
                    scheduler.insert(s);
                } else {
                    worker.insert(s);
                }
            }
        }
        Partition { scheduler, worker }
    }

    /// Whether the split is a valid pipeline: no dependence flows from a
    /// worker statement to a scheduler statement.
    pub fn is_pipelined(&self, pdg: &Pdg) -> bool {
        pdg.edges()
            .iter()
            .all(|e| !(self.worker.contains(&e.src) && self.scheduler.contains(&e.dst)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, ProgramBuilder};

    /// Builds the CG-style nest of Fig. 3.1 and returns
    /// (program, outer, inner, store-in-inner).
    fn cg_like() -> (Program, StmtId, StmtId, StmtId) {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let bb = b.array("B", 8);
        let c = b.array("C", 16);
        let i = b.var("i");
        let j = b.var("j");
        let start = b.var("start");
        let end = b.var("end");
        let t = b.var("t");
        let mut inner = StmtId(0);
        let mut store = StmtId(0);
        let outer = b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(start, a, Expr::Var(i));
            b.load(end, bb, Expr::Var(i));
            inner = b.for_loop(j, Expr::Var(start), Expr::Var(end), |b| {
                b.load(t, c, Expr::Var(j));
                store = b.store(c, Expr::Var(j), Expr::add(Expr::Var(t), Expr::Const(1)));
            });
        });
        (b.finish(), outer, inner, store)
    }

    #[test]
    fn tarjan_groups_cycles() {
        let (p, outer, _, _) = cg_like();
        let pdg = Pdg::build(&p, outer);
        let scc = SccGraph::build(&pdg);
        // The load/store pair on C[j] forms a cycle (carried unknown both
        // ways via the outer loop's perspective — C[j] with j from a
        // loop-variant bound).
        assert!(scc.components().iter().any(|c| c.len() >= 2));
        // Every PDG node is in exactly one component.
        let total: usize = scc.components().iter().map(Vec::len).sum();
        assert_eq!(total, pdg.nodes().len());
    }

    #[test]
    fn partition_puts_prologue_on_scheduler_and_body_on_worker() {
        let (p, outer, inner, store) = cg_like();
        let pdg = Pdg::build(&p, outer);
        let part = Partition::scheduler_worker(&p, &pdg, inner);
        // Loop traversal and bound loads: scheduler.
        assert!(part.scheduler.contains(&outer));
        assert!(part.scheduler.contains(&inner));
        // The C[j] update: worker.
        assert!(part.worker.contains(&store));
        assert!(part.is_pipelined(&pdg));
    }

    #[test]
    fn worker_scc_feeding_scheduler_is_repartitioned() {
        // Inner body writes the array the *outer* bounds read: the worker
        // statement participates in a cycle with scheduler statements and
        // must be pulled to the scheduler (the Fig. 4.1 pathology).
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let i = b.var("i");
        let j = b.var("j");
        let bound = b.var("bound");
        let mut inner = StmtId(0);
        let mut bad_store = StmtId(0);
        let outer = b.for_loop(i, Expr::Const(0), Expr::Const(4), |b| {
            b.load(bound, a, Expr::Const(0));
            inner = b.for_loop(
                j,
                Expr::Const(0),
                Expr::add(Expr::rem(Expr::Var(bound), Expr::Const(4)), Expr::Const(1)),
                |b| {
                    bad_store = b.store(a, Expr::Const(0), Expr::Var(j));
                },
            );
        });
        let p = b.finish();
        let pdg = Pdg::build(&p, outer);
        let part = Partition::scheduler_worker(&p, &pdg, inner);
        assert!(
            part.scheduler.contains(&bad_store),
            "store feeding the outer bound must move to the scheduler"
        );
        assert!(part.is_pipelined(&pdg));
    }

    #[test]
    fn fully_parallel_nest_keeps_whole_body_on_worker() {
        let mut b = ProgramBuilder::new();
        let c = b.array("C", 8);
        let i = b.var("i");
        let j = b.var("j");
        let t = b.var("t");
        let mut inner = StmtId(0);
        let outer = b.for_loop(i, Expr::Const(0), Expr::Const(4), |b| {
            inner = b.for_loop(j, Expr::Const(0), Expr::Const(8), |b| {
                b.load(t, c, Expr::Var(j));
                b.store(c, Expr::Var(j), Expr::add(Expr::Var(t), Expr::Var(i)));
            });
        });
        let p = b.finish();
        let pdg = Pdg::build(&p, outer);
        let part = Partition::scheduler_worker(&p, &pdg, inner);
        assert_eq!(part.worker.len(), 2, "load and store stay on the worker");
        assert!(part.is_pipelined(&pdg));
    }
}
