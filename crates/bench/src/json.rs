//! Minimal JSON reader shared by the harness binaries and the workspace
//! integration tests.
//!
//! The workspace vendors no JSON library (see `vendor/README.md`), so
//! validation of the hand-rolled JSON the harness *writes* — `BENCH_3.json`
//! from `bench-suite`, Chrome trace_event exports from
//! [`crossinvoc_runtime::chrome`] — parses with this small
//! recursive-descent reader. Values are checked structurally; numbers are
//! not range-checked, and string escapes cover only what our own writers
//! emit.

/// A parsed JSON value.
#[derive(Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept; `get` returns
    /// the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `text` as one complete JSON document (trailing whitespace
/// allowed, trailing garbage rejected).
///
/// # Errors
///
/// A human-readable description of the first syntax error, with a byte
/// offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or("dangling escape".to_string())?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => *other as char,
                    });
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_nested_values() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-3.0),
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Str("x".into())));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["{", "[1,]", "{\"a\": }", "{} trailing", "{\"a\"; 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_reject_mismatched_shapes() {
        let v = parse(r#"{"n": 3}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.as_arr(), None);
    }
}
