//! Virtual-time trace sinks shared by the simulated executors.
//!
//! The simulators stamp events with their per-thread virtual clocks via
//! [`TraceSink::emit_at`], so two runs over the same inputs produce
//! byte-identical traces — the same JSONL schema the threaded engines emit
//! from wall-clock sinks (see `docs/OBSERVABILITY.md`).

use crossinvoc_runtime::trace::{Trace, TraceSink, CHECKER_TID, MANAGER_TID};

/// One sink per simulated thread plus the two service pseudo-threads.
///
/// With capacity zero every sink is disabled and each emit is a single
/// branch, so untraced simulations pay nothing.
#[derive(Debug)]
pub(crate) struct SimSinks {
    /// Worker sinks, indexed by dense thread id.
    pub workers: Vec<TraceSink>,
    /// Sink for manager-level events (checkpoints, degradations).
    pub manager: TraceSink,
    /// Sink for checker-side events (misspeculations, checker faults).
    pub checker: TraceSink,
}

impl SimSinks {
    pub fn new(threads: usize, capacity: usize) -> Self {
        Self {
            workers: (0..threads)
                .map(|tid| TraceSink::with_capacity(tid, capacity))
                .collect(),
            manager: TraceSink::with_capacity(MANAGER_TID, capacity),
            checker: TraceSink::with_capacity(CHECKER_TID, capacity),
        }
    }

    /// Merges every sink into a time-ordered trace; `None` when disabled.
    pub fn finish(self) -> Option<Trace> {
        if !self.manager.is_enabled() {
            return None;
        }
        let mut all = self.workers;
        all.push(self.manager);
        all.push(self.checker);
        Some(Trace::from_sinks(all))
    }
}
