//! Fig. 5.4 — best performance of this work vs. previous work.
//!
//! Per program: the best speedup DOMORE/SPECCROSS reach anywhere in the
//! thread sweep, against the best the conventional (barrier-synchronized
//! intra-invocation) plan reaches — the strongest baseline this
//! reproduction implements for the systems the thesis compares against
//! (substitution S5 of DESIGN.md).

use crossinvoc_bench::{domore_pair, speccross_pair, write_csv, THREADS};
use crossinvoc_workloads::{registry, Scale};

fn main() {
    println!("Fig. 5.4: best speedup, this work vs previous work");
    println!(
        "{:<16} {:>11} {:>14} {:>10}",
        "Benchmark", "this work", "previous work", "technique"
    );
    let mut rows = Vec::new();
    for info in registry() {
        let mut best_ours = 0.0f64;
        let mut best_prev = 0.0f64;
        let mut which = "-";
        for threads in THREADS {
            if info.domore {
                let pair = domore_pair(&info, Scale::Figure, threads);
                best_prev = best_prev.max(pair.barrier);
                if pair.technique > best_ours {
                    best_ours = pair.technique;
                    which = "DOMORE";
                }
            }
            if info.speccross {
                let pair = speccross_pair(&info, Scale::Figure, threads);
                best_prev = best_prev.max(pair.barrier);
                if pair.technique > best_ours {
                    best_ours = pair.technique;
                    which = "SPECCROSS";
                }
            }
        }
        println!(
            "{:<16} {:>10.2}x {:>13.2}x {:>10}",
            info.name, best_ours, best_prev, which
        );
        rows.push(format!(
            "{},{:.4},{:.4},{}",
            info.name, best_ours, best_prev, which
        ));
    }
    write_csv(
        "fig5_4",
        "benchmark,this_work_best,previous_work_best,technique",
        &rows,
    );
}
