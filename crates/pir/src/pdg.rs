//! Program dependence graphs (Figs. 2.4(b), 3.1(b)/(c), 3.6(b)).
//!
//! A [`Pdg`] is built for one `For` loop: its nodes are the statements of
//! the loop's subtree (the loop statement itself included — it carries the
//! induction variable definition and the loop-exit control dependence), and
//! its edges are register, memory and control dependences, each flagged as
//! intra-iteration or loop-carried. Memory edges record the constant
//! dependence distance when the affine test proves one, and can carry a
//! profiled *manifest rate* — the fraction of iterations in which the
//! dependence actually bites (the 72.4% of Fig. 3.1(c)) — which is what the
//! Fig. 1.5 decision flow consumes.

use std::collections::{HashMap, HashSet};

use crossinvoc_runtime::signature::AccessKind;

use crate::analysis::{collect_accesses, loop_variant_vars, DepTest, IndexRelation};
use crate::interp::{Interp, Memory};
use crate::ir::{Program, Stmt, StmtId, VarId};

/// Kind of a PDG edge.
#[derive(Debug, Clone, PartialEq)]
pub enum DepKind {
    /// Scalar def → use.
    Register {
        /// Whether the value flows across iterations.
        loop_carried: bool,
    },
    /// Memory dependence (at least one side writes).
    Memory {
        /// Whether the accesses may touch the same cell in different
        /// iterations.
        loop_carried: bool,
        /// Constant iteration distance, when provable.
        distance: Option<i64>,
        /// Profiled fraction of iterations in which the dependence
        /// manifests (`None` = not profiled).
        manifest_rate: Option<f64>,
    },
    /// Control dependence from a branch/loop to a controlled statement.
    Control,
}

impl DepKind {
    /// Whether this dependence crosses iterations.
    pub fn is_loop_carried(&self) -> bool {
        match self {
            DepKind::Register { loop_carried } => *loop_carried,
            DepKind::Memory { loop_carried, .. } => *loop_carried,
            DepKind::Control => false,
        }
    }
}

/// One PDG edge.
#[derive(Debug, Clone, PartialEq)]
pub struct PdgEdge {
    /// Source statement.
    pub src: StmtId,
    /// Destination statement.
    pub dst: StmtId,
    /// Dependence kind and attributes.
    pub kind: DepKind,
}

/// The dependence graph of one loop.
#[derive(Debug, Clone)]
pub struct Pdg {
    loop_stmt: StmtId,
    nodes: Vec<StmtId>,
    edges: Vec<PdgEdge>,
}

impl Pdg {
    /// Builds the PDG of the `For` loop at `loop_stmt`.
    ///
    /// # Panics
    ///
    /// Panics if `loop_stmt` is not a `For` statement.
    pub fn build(program: &Program, loop_stmt: StmtId) -> Pdg {
        let Stmt::For { var: iv, body, .. } = program.stmt(loop_stmt) else {
            panic!("PDG is built over a For statement");
        };
        let iv = *iv;
        let nodes: Vec<StmtId> = std::iter::once(loop_stmt)
            .chain(program.subtrees(body))
            .collect();
        let order: HashMap<StmtId, usize> =
            nodes.iter().enumerate().map(|(k, &s)| (s, k)).collect();
        let variant = loop_variant_vars(program, loop_stmt);
        let mut edges = Vec::new();

        // --- Register dependences: def → use, flow-insensitive within the
        // body; a use textually before the def is the carried direction.
        let mut defs: HashMap<VarId, Vec<StmtId>> = HashMap::new();
        defs.entry(iv).or_default().push(loop_stmt);
        for &id in &nodes[1..] {
            match program.stmt(id) {
                Stmt::Assign { var, .. } | Stmt::Load { var, .. } => {
                    defs.entry(*var).or_default().push(id)
                }
                Stmt::For { var, .. } => defs.entry(*var).or_default().push(id),
                _ => {}
            }
        }
        for &id in &nodes[1..] {
            let mut used = Vec::new();
            stmt_uses(program.stmt(id), &mut used);
            for v in used {
                for &def in defs.get(&v).into_iter().flatten() {
                    if def == id {
                        // `x = x + ...`: the statement consumes its own
                        // previous-iteration value -- a carried self-cycle
                        // (the cost accumulation of Fig. 2.4).
                        edges.push(PdgEdge {
                            src: id,
                            dst: id,
                            kind: DepKind::Register { loop_carried: true },
                        });
                        continue;
                    }
                    let carried = order[&def] > order[&id] && def != loop_stmt;
                    edges.push(PdgEdge {
                        src: def,
                        dst: id,
                        kind: DepKind::Register {
                            loop_carried: carried,
                        },
                    });
                    // Self-accumulating variables (`x = x + …` styles reach
                    // here as def-before-use plus use-before-def between
                    // distinct statements); a definition reused in a later
                    // iteration is additionally carried.
                    if order[&def] < order[&id] && def != loop_stmt && defines(program, id, v) {
                        edges.push(PdgEdge {
                            src: id,
                            dst: def,
                            kind: DepKind::Register { loop_carried: true },
                        });
                    }
                }
            }
        }

        // --- Memory dependences.
        let accesses = collect_accesses(program, body);
        let test = DepTest::new(program);
        for (k1, a1) in accesses.iter().enumerate() {
            for a2 in accesses.iter().skip(k1) {
                if a1.array != a2.array {
                    continue;
                }
                if a1.kind == AccessKind::Read && a2.kind == AccessKind::Read {
                    continue;
                }
                let relation = match (&a1.index, &a2.index) {
                    (Some(i1), Some(i2)) => test.index_relation(i1, i2, iv, &variant),
                    _ => IndexRelation::Unknown, // opaque call access
                };
                let (intra, carried, distance) = match relation {
                    IndexRelation::Never => (false, false, None),
                    IndexRelation::SameIteration => (a1.stmt != a2.stmt, false, None),
                    IndexRelation::Carried { distance } => (false, true, Some(distance)),
                    IndexRelation::AllPairs => (a1.stmt != a2.stmt, true, None),
                    IndexRelation::Unknown => (a1.stmt != a2.stmt, true, None),
                };
                if intra {
                    let (src, dst) = if order[&a1.stmt] <= order[&a2.stmt] {
                        (a1.stmt, a2.stmt)
                    } else {
                        (a2.stmt, a1.stmt)
                    };
                    edges.push(PdgEdge {
                        src,
                        dst,
                        kind: DepKind::Memory {
                            loop_carried: false,
                            distance: None,
                            manifest_rate: None,
                        },
                    });
                }
                if carried {
                    edges.push(PdgEdge {
                        src: a1.stmt,
                        dst: a2.stmt,
                        kind: DepKind::Memory {
                            loop_carried: true,
                            distance,
                            manifest_rate: None,
                        },
                    });
                    if a1.stmt != a2.stmt {
                        edges.push(PdgEdge {
                            src: a2.stmt,
                            dst: a1.stmt,
                            kind: DepKind::Memory {
                                loop_carried: true,
                                distance: distance.map(|d| -d),
                                manifest_rate: None,
                            },
                        });
                    }
                }
            }
        }

        // --- Control dependences: compound statements control their direct
        // children; the loop itself controls its body (loop-exit condition).
        for &id in &nodes {
            match program.stmt(id) {
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    for &child in then_body.iter().chain(else_body) {
                        edges.push(PdgEdge {
                            src: id,
                            dst: child,
                            kind: DepKind::Control,
                        });
                    }
                }
                Stmt::For { body, .. } => {
                    for &child in body {
                        edges.push(PdgEdge {
                            src: id,
                            dst: child,
                            kind: DepKind::Control,
                        });
                    }
                }
                _ => {}
            }
        }

        edges.retain(|e| order.contains_key(&e.src) && order.contains_key(&e.dst));
        Pdg {
            loop_stmt,
            nodes,
            edges,
        }
    }

    /// The loop this PDG describes.
    pub fn loop_stmt(&self) -> StmtId {
        self.loop_stmt
    }

    /// PDG nodes (the loop statement first, then its subtree in preorder).
    pub fn nodes(&self) -> &[StmtId] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[PdgEdge] {
        &self.edges
    }

    /// Loop-carried edges only.
    pub fn carried_edges(&self) -> impl Iterator<Item = &PdgEdge> {
        self.edges.iter().filter(|e| e.kind.is_loop_carried())
    }

    /// Attaches profiled manifest rates to carried memory edges.
    pub fn annotate_manifest(&mut self, rates: &HashMap<(StmtId, StmtId), f64>) {
        for edge in &mut self.edges {
            if let DepKind::Memory {
                loop_carried: true,
                manifest_rate,
                ..
            } = &mut edge.kind
            {
                if let Some(&r) = rates.get(&(edge.src, edge.dst)) {
                    *manifest_rate = Some(r);
                }
            }
        }
    }
}

fn defines(program: &Program, id: StmtId, v: VarId) -> bool {
    matches!(
        program.stmt(id),
        Stmt::Assign { var, .. } | Stmt::Load { var, .. } | Stmt::For { var, .. } if *var == v
    )
}

/// Variables read by a statement (its own header expressions; children are
/// separate nodes).
fn stmt_uses(stmt: &Stmt, out: &mut Vec<VarId>) {
    match stmt {
        Stmt::Assign { expr, .. } => expr.vars(out),
        Stmt::Load { index, .. } => index.vars(out),
        Stmt::Store { index, value, .. } => {
            index.vars(out);
            value.vars(out);
        }
        Stmt::Call { args, .. } => {
            for a in args {
                a.vars(out);
            }
        }
        Stmt::If { cond, .. } => cond.vars(out),
        Stmt::For { from, to, .. } => {
            from.vars(out);
            to.vars(out);
        }
    }
}

/// Profiled manifest rates for the loop-carried memory dependences of one
/// *top-level* loop: the fraction of iterations whose memory accesses
/// collide with an earlier iteration's, per statement pair (§3.1).
#[derive(Debug, Clone, Default)]
pub struct ManifestProfile {
    /// Manifest rate per `(earlier stmt, later stmt)` pair.
    pub rates: HashMap<(StmtId, StmtId), f64>,
    /// Iterations profiled.
    pub iterations: u64,
}

impl ManifestProfile {
    /// Interprets `program` on `mem`, profiling the top-level loop
    /// `loop_stmt`: statements before it run normally, then each iteration
    /// of the loop is traced and checked against all prior iterations'
    /// accesses.
    ///
    /// # Panics
    ///
    /// Panics if `loop_stmt` is not a top-level `For` of `program`.
    pub fn collect(program: &Program, loop_stmt: StmtId, mem: &mut Memory) -> ManifestProfile {
        assert!(
            program.body().contains(&loop_stmt),
            "manifest profiling targets a top-level loop"
        );
        let Stmt::For {
            var: iv,
            from,
            to,
            body,
        } = program.stmt(loop_stmt)
        else {
            panic!("manifest profiling requires a For statement");
        };
        let interp = Interp::new(program);
        let mut env = vec![0; program.vars().len()];
        // Run the prefix of the program.
        let prefix: Vec<StmtId> = program
            .body()
            .iter()
            .copied()
            .take_while(|&s| s != loop_stmt)
            .collect();
        // SAFETY: exclusive `&mut Memory`.
        unsafe { interp.exec_stmts(&prefix, &mut env, mem, &mut None) };

        let (lo, hi) = (interp.eval(from, &env), interp.eval(to, &env));
        // Last accessor per address: (stmt, iteration, was_write).
        let mut last: HashMap<usize, (StmtId, i64, bool)> = HashMap::new();
        let mut hits: HashMap<(StmtId, StmtId), HashSet<i64>> = HashMap::new();
        let mut iterations = 0u64;
        let mut i = lo;
        while i < hi {
            env[iv.0] = i;
            let mut events = Vec::new();
            let mut sink: Option<&mut dyn FnMut(crate::interp::TraceEvent)> =
                Some(&mut |e| events.push(e));
            // SAFETY: exclusive `&mut Memory`.
            unsafe { interp.exec_stmts(body, &mut env, mem, &mut sink) };
            for e in &events {
                let is_write = e.kind == AccessKind::Write;
                if let Some(&(src, src_iter, src_write)) = last.get(&e.addr) {
                    if src_iter != i && (is_write || src_write) {
                        hits.entry((src, e.stmt)).or_default().insert(i);
                    }
                }
                let entry = last.entry(e.addr).or_insert((e.stmt, i, is_write));
                // Writes supersede; reads only update the reader slot when
                // nothing is recorded (keep the writer visible).
                if is_write || entry.1 != i {
                    *entry = (e.stmt, i, is_write);
                }
            }
            iterations += 1;
            i += 1;
        }
        let total = (hi - lo).max(1) as f64;
        ManifestProfile {
            rates: hits
                .into_iter()
                .map(|(pair, iters)| (pair, iters.len() as f64 / total))
                .collect(),
            iterations,
        }
    }

    /// The highest manifest rate over all profiled pairs (0 if none).
    pub fn max_rate(&self) -> f64 {
        self.rates.values().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, ProgramBuilder};

    /// `for i { A[i] = A[i] + 1 }`: only same-iteration memory dependence.
    #[test]
    fn doall_loop_has_no_carried_memory_edges() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let i = b.var("i");
        let t = b.var("t");
        let l = b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(t, a, Expr::Var(i));
            b.store(a, Expr::Var(i), Expr::add(Expr::Var(t), Expr::Const(1)));
        });
        let p = b.finish();
        let pdg = Pdg::build(&p, l);
        assert!(
            pdg.carried_edges()
                .all(|e| !matches!(e.kind, DepKind::Memory { .. })),
            "A[i] self-update is iteration-local"
        );
    }

    /// `for i { A[i+1] = A[i] }`: carried with distance 1.
    #[test]
    fn shifted_store_is_carried_with_distance() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let i = b.var("i");
        let t = b.var("t");
        let l = b.for_loop(i, Expr::Const(0), Expr::Const(7), |b| {
            b.load(t, a, Expr::Var(i));
            b.store(a, Expr::add(Expr::Var(i), Expr::Const(1)), Expr::Var(t));
        });
        let p = b.finish();
        let pdg = Pdg::build(&p, l);
        let carried_mem: Vec<_> = pdg
            .carried_edges()
            .filter(|e| matches!(e.kind, DepKind::Memory { .. }))
            .collect();
        assert!(!carried_mem.is_empty());
        assert!(carried_mem.iter().any(|e| matches!(
            e.kind,
            DepKind::Memory {
                distance: Some(d),
                ..
            } if d.abs() == 1
        )));
    }

    /// `for i { A[idx[i]] += 1 }`: irregular — unknown carried dependence.
    #[test]
    fn indirect_index_is_carried_unknown() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let idx = b.array("idx", 8);
        let i = b.var("i");
        let k = b.var("k");
        let t = b.var("t");
        let l = b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(k, idx, Expr::Var(i));
            b.load(t, a, Expr::Var(k));
            b.store(a, Expr::Var(k), Expr::add(Expr::Var(t), Expr::Const(1)));
        });
        let p = b.finish();
        let pdg = Pdg::build(&p, l);
        assert!(pdg.carried_edges().any(|e| matches!(
            e.kind,
            DepKind::Memory {
                loop_carried: true,
                distance: None,
                ..
            }
        )));
    }

    /// Reduction `s = s + A[i]`: loop-carried register dependence.
    #[test]
    fn reduction_has_carried_register_edge() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let i = b.var("i");
        let t = b.var("t");
        let s = b.var("s");
        let l = b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(t, a, Expr::Var(i));
            b.assign(s, Expr::add(Expr::Var(s), Expr::Var(t)));
        });
        let p = b.finish();
        let pdg = Pdg::build(&p, l);
        assert!(pdg
            .carried_edges()
            .any(|e| matches!(e.kind, DepKind::Register { loop_carried: true })));
    }

    #[test]
    fn control_edges_link_compounds_to_children() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 4);
        let i = b.var("i");
        let l = b.for_loop(i, Expr::Const(0), Expr::Const(4), |b| {
            b.if_else(
                Expr::lt(Expr::Var(i), Expr::Const(2)),
                |b| {
                    b.store(a, Expr::Var(i), Expr::Const(1));
                },
                |_| {},
            );
        });
        let p = b.finish();
        let pdg = Pdg::build(&p, l);
        let control = pdg
            .edges()
            .iter()
            .filter(|e| e.kind == DepKind::Control)
            .count();
        assert_eq!(control, 2, "loop→if and if→store");
    }

    /// The CG pattern of Fig. 3.1: irregular outer-loop dependence that
    /// manifests in a measurable fraction of iterations.
    #[test]
    fn manifest_profile_measures_collision_rate() {
        let mut b = ProgramBuilder::new();
        let c = b.array("C", 4);
        let i = b.var("i");
        let t = b.var("t");
        // for i in 0..8 { t = C[i % 4]; C[i % 4] = t + 1 }: iteration i
        // collides with i-4 — every iteration from i=4 on manifests.
        let l = b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(t, c, Expr::rem(Expr::Var(i), Expr::Const(4)));
            b.store(
                c,
                Expr::rem(Expr::Var(i), Expr::Const(4)),
                Expr::add(Expr::Var(t), Expr::Const(1)),
            );
        });
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        let profile = ManifestProfile::collect(&p, l, &mut mem);
        assert_eq!(profile.iterations, 8);
        assert!(
            (profile.max_rate() - 0.5).abs() < 1e-9,
            "4 of 8 iterations collide, got {}",
            profile.max_rate()
        );
    }

    #[test]
    fn annotate_manifest_updates_matching_edges() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 4);
        let idx = b.array("idx", 4);
        let i = b.var("i");
        let k = b.var("k");
        let l = b.for_loop(i, Expr::Const(0), Expr::Const(4), |b| {
            b.load(k, idx, Expr::Var(i));
            b.store(a, Expr::Var(k), Expr::Var(i));
        });
        let p = b.finish();
        let mut pdg = Pdg::build(&p, l);
        let carried: Vec<(StmtId, StmtId)> = pdg
            .carried_edges()
            .filter(|e| matches!(e.kind, DepKind::Memory { .. }))
            .map(|e| (e.src, e.dst))
            .collect();
        assert!(!carried.is_empty());
        let mut rates = HashMap::new();
        for pair in carried {
            rates.insert(pair, 0.724);
        }
        pdg.annotate_manifest(&rates);
        assert!(pdg.carried_edges().any(|e| matches!(
            e.kind,
            DepKind::Memory {
                manifest_rate: Some(r),
                ..
            } if (r - 0.724).abs() < 1e-9
        )));
    }
}
