//! The cyclic-dependence baselines of Chapter 2: DOACROSS and DSWP
//! (Figs. 2.4–2.5).
//!
//! Both handle loops whose iterations form a dependence chain. DOACROSS
//! distributes whole iterations round-robin and synchronizes the chain
//! stage across threads — putting the communication latency on the critical
//! path once per iteration. DSWP splits the body into pipeline *stages*,
//! one thread per stage, with all cross-thread values flowing forward — so
//! communication latency is paid once per pipeline fill, not per iteration
//! (the decoupling property the thesis recounts from its citation \[50\]).
//!
//! The model is a [`StagedLoop`]: per-iteration stage costs, with stage 0
//! carrying the loop's cross-iteration dependence (the `node = node->next`
//! of Fig. 2.4).

use crossinvoc_runtime::stats::RegionStats;

use crate::result::SimResult;

/// A loop body split into pipeline stages.
///
/// Stage 0 is the sequential chain (its instance in iteration `i` depends
/// on its instance in iteration `i-1`); later stages depend only on earlier
/// stages of the *same* iteration.
#[derive(Debug, Clone)]
pub struct StagedLoop {
    /// Number of iterations.
    pub iterations: usize,
    /// Cost of each stage, in simulated nanoseconds.
    pub stage_costs: Vec<u64>,
}

impl StagedLoop {
    /// Creates a staged loop.
    ///
    /// # Panics
    ///
    /// Panics if there are no stages or no iterations.
    pub fn new(iterations: usize, stage_costs: Vec<u64>) -> Self {
        assert!(iterations > 0, "loop needs iterations");
        assert!(!stage_costs.is_empty(), "loop needs at least one stage");
        Self {
            iterations,
            stage_costs,
        }
    }

    /// Cost of one whole iteration.
    pub fn iteration_cost(&self) -> u64 {
        self.stage_costs.iter().sum()
    }

    /// Sequential execution time.
    pub fn sequential_ns(&self) -> u64 {
        self.iteration_cost() * self.iterations as u64
    }
}

/// Simulates DOACROSS on `threads` threads with `comm_ns` cross-thread
/// forwarding latency: iteration `i` runs whole on thread `i % threads`,
/// but its chain stage may not start before the previous iteration's chain
/// stage (plus latency when they sit on different threads).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn doacross(staged: &StagedLoop, threads: usize, comm_ns: u64) -> SimResult {
    assert!(threads > 0, "at least one thread is required");
    let stats = RegionStats::new();
    stats.add_epoch();
    let mut clocks = vec![0u64; threads];
    let mut busy = vec![0u64; threads];
    let mut idle = vec![0u64; threads];
    let mut prev_chain_finish = 0u64;
    let mut prev_tid = usize::MAX;
    let chain = staged.stage_costs[0];
    let rest: u64 = staged.stage_costs[1..].iter().sum();
    for i in 0..staged.iterations {
        let tid = i % threads;
        let release = if prev_tid == tid || prev_tid == usize::MAX {
            prev_chain_finish
        } else {
            prev_chain_finish + comm_ns
        };
        let start = clocks[tid].max(release);
        idle[tid] += start - clocks[tid];
        prev_chain_finish = start + chain;
        clocks[tid] = prev_chain_finish + rest;
        busy[tid] += chain + rest;
        prev_tid = tid;
        stats.add_task();
    }
    SimResult {
        total_ns: clocks.into_iter().max().unwrap_or(0),
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded: false,
        trace: None,
    }
}

/// Simulates DSWP with one thread per stage and `comm_ns` forwarding
/// latency between consecutive stages: stage `k` of iteration `i` starts
/// once its own thread is free and iteration `i`'s stage `k-1` value has
/// arrived.
pub fn dswp(staged: &StagedLoop, comm_ns: u64) -> SimResult {
    let stats = RegionStats::new();
    stats.add_epoch();
    let stages = staged.stage_costs.len();
    let mut clocks = vec![0u64; stages];
    let mut busy = vec![0u64; stages];
    let mut idle = vec![0u64; stages];
    for _ in 0..staged.iterations {
        let mut upstream_finish = 0u64;
        for (k, &cost) in staged.stage_costs.iter().enumerate() {
            let arrival = if k == 0 { 0 } else { upstream_finish + comm_ns };
            let start = clocks[k].max(arrival);
            idle[k] += start - clocks[k];
            clocks[k] = start + cost;
            busy[k] += cost;
            upstream_finish = clocks[k];
        }
        stats.add_task();
    }
    SimResult {
        total_ns: clocks.into_iter().max().unwrap_or(0),
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded: false,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_2_4_loop() -> StagedLoop {
        // Fig. 2.4: stage {3,6} (pointer chase) and stage {4,5} (work).
        StagedLoop::new(1000, vec![200, 800])
    }

    #[test]
    fn sequential_cost_sums_stages() {
        let l = fig_2_4_loop();
        assert_eq!(l.iteration_cost(), 1000);
        assert_eq!(l.sequential_ns(), 1_000_000);
    }

    #[test]
    fn both_techniques_beat_sequential_with_cheap_communication() {
        let l = fig_2_4_loop();
        let seq = l.sequential_ns();
        let da = doacross(&l, 2, 10);
        let ds = dswp(&l, 10);
        assert!(da.speedup_over(seq) > 1.5, "{}", da.speedup_over(seq));
        assert!(ds.speedup_over(seq) > 1.1, "{}", ds.speedup_over(seq));
    }

    #[test]
    fn dswp_tolerates_communication_latency_doacross_does_not() {
        // The Fig. 2.5 claim: latency sits on DOACROSS's critical path once
        // per iteration, but only fills DSWP's pipeline once.
        let l = fig_2_4_loop();
        let cheap = 10;
        let expensive = 2_000;
        let da_degradation =
            doacross(&l, 2, expensive).total_ns as f64 / doacross(&l, 2, cheap).total_ns as f64;
        let ds_degradation = dswp(&l, expensive).total_ns as f64 / dswp(&l, cheap).total_ns as f64;
        assert!(
            da_degradation > 2.0,
            "DOACROSS must suffer: {da_degradation}"
        );
        assert!(
            ds_degradation < 1.1,
            "DSWP must shrug it off: {ds_degradation}"
        );
    }

    #[test]
    fn dswp_throughput_is_bounded_by_the_slowest_stage() {
        let l = StagedLoop::new(10_000, vec![100, 900]);
        let r = dswp(&l, 50);
        let per_iter = r.total_ns / 10_000;
        assert!(
            (890..=920).contains(&per_iter),
            "slowest stage gates throughput: {per_iter}"
        );
    }

    #[test]
    fn doacross_scales_when_the_chain_is_short() {
        let l = StagedLoop::new(10_000, vec![10, 990]);
        let seq = l.sequential_ns();
        let s4 = doacross(&l, 4, 50).speedup_over(seq);
        assert!(s4 > 3.0, "short chain: {s4}");
    }

    #[test]
    fn doacross_serializes_when_the_chain_dominates() {
        let l = StagedLoop::new(1_000, vec![900, 100]);
        let seq = l.sequential_ns();
        let s8 = doacross(&l, 8, 100).speedup_over(seq);
        assert!(s8 < 1.3, "chain-bound: {s8}");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn doacross_zero_threads_panics() {
        doacross(&fig_2_4_loop(), 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stages_panic() {
        StagedLoop::new(1, vec![]);
    }
}
