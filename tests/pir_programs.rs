//! Additional PIR end-to-end programs: classification corner cases, the
//! Fig. 3.1 manifest-rate measurement, nested control flow through the
//! transformations, and display/round-trip sanity.

use crossinvoc_pir::analysis::{collect_accesses, AffineForm};
use crossinvoc_pir::interp::{Interp, Memory};
use crossinvoc_pir::ir::{CallEffect, Expr, Program, ProgramBuilder, StmtId};
use crossinvoc_pir::pdg::{ManifestProfile, Pdg};
use crossinvoc_pir::techniques::{classify_loop, Technique};
use crossinvoc_pir::transform::DomorePlan;

/// Fig. 3.1's headline number: CG's update dependence manifests in ≈72% of
/// outer iterations. Build a CG-shaped nest whose extents overlap with a
/// tuned stride and check the profiled rate lands in that regime.
#[test]
fn manifest_profile_reproduces_cg_like_rates() {
    let rows = 200i64;
    let cells = 64i64;
    let mut b = ProgramBuilder::new();
    let starts = b.array("starts", rows as usize);
    let c = b.array("C", cells as usize);
    let k = b.var("k");
    let i = b.var("i");
    let j = b.var("j");
    let start = b.var("start");
    let t = b.var("t");
    b.for_loop(k, Expr::Const(0), Expr::Const(rows), |b| {
        // Strided starts with jitter: ~3 of 4 consecutive rows overlap.
        b.store(
            starts,
            Expr::Var(k),
            Expr::rem(
                Expr::add(
                    Expr::mul(Expr::Var(k), Expr::Const(4)),
                    Expr::rem(Expr::Var(k), Expr::Const(3)),
                ),
                Expr::Const(cells - 6),
            ),
        );
    });
    let outer = b.for_loop(i, Expr::Const(0), Expr::Const(rows), |b| {
        b.load(start, starts, Expr::Var(i));
        b.for_loop(
            j,
            Expr::Var(start),
            Expr::add(Expr::Var(start), Expr::Const(6)),
            |b| {
                b.load(t, c, Expr::Var(j));
                b.store(c, Expr::Var(j), Expr::add(Expr::Var(t), Expr::Const(1)));
            },
        );
    });
    let p = b.finish();
    let mut mem = Memory::zeroed(&p);
    let profile = ManifestProfile::collect(&p, outer, &mut mem);
    let rate = profile.max_rate();
    assert!(
        (0.5..=1.0).contains(&rate),
        "overlapping extents manifest frequently, got {rate:.3}"
    );
}

/// DOANY classification: a loop of commutative allocator calls.
#[test]
fn commutative_allocation_loop_classifies_doany() {
    let mut b = ProgramBuilder::new();
    let pool = b.array("pool", 16);
    let nodes = b.array("nodes", 16);
    let i = b.var("i");
    let l = b.for_loop(i, Expr::Const(0), Expr::Const(16), |b| {
        b.call(
            "malloc",
            vec![Expr::Var(i)],
            CallEffect {
                commutative: true,
                may_read: vec![pool],
                may_write: vec![pool],
                ..CallEffect::default()
            },
        );
        b.store(nodes, Expr::Var(i), Expr::Var(i));
    });
    let p = b.finish();
    let pdg = Pdg::build(&p, l);
    let a = classify_loop(&p, &pdg);
    assert_eq!(a.best(), Technique::Doany);
}

/// Nested `if` inside the DOMORE-transformed inner loop: the branch is part
/// of the iteration body and must survive the transformation.
#[test]
fn domore_plan_handles_conditional_kernels() {
    let mut b = ProgramBuilder::new();
    let c = b.array("C", 32);
    let i = b.var("i");
    let j = b.var("j");
    let t = b.var("t");
    let mut inner = StmtId(0);
    let outer = b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
        inner = b.for_loop(j, Expr::Const(0), Expr::Const(32), |b| {
            b.load(t, c, Expr::Var(j));
            b.if_else(
                Expr::lt(Expr::Var(t), Expr::Const(100)),
                |b| {
                    b.store(c, Expr::Var(j), Expr::add(Expr::Var(t), Expr::Var(i)));
                },
                |b| {
                    b.store(c, Expr::Var(j), Expr::Const(0));
                },
            );
        });
    });
    let p = b.finish();
    let plan = DomorePlan::build(&p, outer, inner).expect("conditional kernel is fine");
    let mut reference = Memory::zeroed(&p);
    plan.execute_sequential(&mut reference);
    let mut mem = Memory::zeroed(&p);
    plan.execute(&mut mem, 3).unwrap();
    assert_eq!(mem.snapshot(), reference.snapshot());
}

/// Affine forms survive nesting, cancellation and scaling.
#[test]
fn affine_analysis_handles_compound_expressions() {
    let v = crossinvoc_pir::ir::VarId(0);
    // 3*(i + 2) - 2*i - 6  ==  i
    let e = Expr::sub(
        Expr::sub(
            Expr::mul(Expr::Const(3), Expr::add(Expr::Var(v), Expr::Const(2))),
            Expr::mul(Expr::Const(2), Expr::Var(v)),
        ),
        Expr::Const(6),
    );
    let f = AffineForm::of(&e).unwrap();
    assert_eq!(f.constant, 0);
    assert_eq!(f.coefficient(v), 1);
}

/// Interpreter/display round trip: the textual form names every construct.
#[test]
fn display_covers_all_statement_forms() {
    let mut b = ProgramBuilder::new();
    let a = b.array("A", 4);
    let i = b.var("i");
    let t = b.var("t");
    b.for_loop(i, Expr::Const(0), Expr::Const(4), |b| {
        b.load(t, a, Expr::Var(i));
        b.if_else(
            Expr::Var(t),
            |b| {
                b.call("log", vec![Expr::Var(t)], CallEffect::default());
            },
            |b| {
                b.store(a, Expr::Var(i), Expr::Const(1));
            },
        );
        b.assign(t, Expr::mul(Expr::Var(t), Expr::Const(2)));
    });
    let p = b.finish();
    let text = p.to_string();
    for needle in [
        "for i in 0..4",
        "t = A[i]",
        "if t {",
        "log(…)",
        "A[i] = 1",
        "(t * 2)",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

/// Access collection sees through arbitrary nesting depth.
#[test]
fn collect_accesses_traverses_deep_nests() {
    fn deep(b: &mut ProgramBuilder, arr: crossinvoc_pir::ir::ArrayId, depth: usize) {
        if depth == 0 {
            b.store(arr, Expr::Const(0), Expr::Const(1));
        } else {
            b.if_else(Expr::Const(1), |b| deep(b, arr, depth - 1), |_| {});
        }
    }
    let mut b = ProgramBuilder::new();
    let a = b.array("A", 2);
    deep(&mut b, a, 10);
    let p = b.finish();
    assert_eq!(collect_accesses(&p, p.body()).len(), 1);
}

/// Sequential interpretation is deterministic across identical programs.
#[test]
fn interpretation_is_reproducible() {
    let build = |seed: i64| -> (Program, Vec<i64>) {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 16);
        let i = b.var("i");
        let t = b.var("t");
        b.for_loop(i, Expr::Const(0), Expr::Const(64), |b| {
            let idx = Expr::rem(Expr::mul(Expr::Var(i), Expr::Const(seed)), Expr::Const(16));
            b.load(t, a, idx.clone());
            b.store(a, idx, Expr::add(Expr::Var(t), Expr::Var(i)));
        });
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        Interp::new(&p).run(&mut mem);
        let snap = mem.snapshot();
        (p, snap)
    };
    assert_eq!(build(7).1, build(7).1);
    assert_ne!(build(7).1, build(11).1);
}
