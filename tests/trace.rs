//! Integration tests for the structured execution-trace layer: the JSONL
//! schema round-trips, injected faults surface in the trace at their
//! planned coordinates, and the threaded engine and the simulator emit the
//! *same* schema — a trace from either side feeds the same `TraceReport`
//! reconstruction (misspeculation ledger, per-thread barrier-wait
//! breakdown). See `docs/OBSERVABILITY.md`.

use crossinvoc_runtime::fault::{FaultKind, FaultPlan};
use crossinvoc_runtime::trace::{Event, Trace, TraceReport, TraceSink};
use crossinvoc_runtime::{RangeSignature, SharedSlice, ThreadId};
use crossinvoc_sim::prelude::*;
use crossinvoc_speccross::prelude::*;
use crossinvoc_speccross::SpecCrossEngine;

/// Task `t` of every epoch increments cell `t`: same-epoch tasks are
/// disjoint and cross-epoch revisits are ordered by the engine, so a clean
/// run never misspeculates — any conflict below is injected.
struct IncGrid {
    data: SharedSlice<u64>,
    epochs: usize,
}

impl IncGrid {
    fn new(n: usize, epochs: usize) -> Self {
        Self {
            data: SharedSlice::from_vec(vec![0; n]),
            epochs,
        }
    }
}

impl SpecWorkload for IncGrid {
    type State = Vec<u64>;

    fn num_epochs(&self) -> usize {
        self.epochs
    }
    fn num_tasks(&self, _epoch: usize) -> usize {
        self.data.len()
    }
    fn execute_task(
        &self,
        _epoch: usize,
        task: usize,
        _tid: ThreadId,
        rec: &mut dyn AccessRecorder,
    ) {
        rec.write(task);
        // SAFETY: same-epoch tasks write disjoint cells; the same cell is
        // revisited only across epochs, which the engine orders.
        unsafe { self.data.update(task, |v| *v += 1) };
    }
    fn snapshot(&self) -> Self::State {
        (0..self.data.len())
            .map(|i| unsafe { self.data.read(i) })
            .collect()
    }
    fn restore(&self, state: &Self::State) {
        for (i, v) in state.iter().enumerate() {
            unsafe { self.data.write(i, *v) };
        }
    }
}

fn traced_engine(plan: FaultPlan) -> SpecCrossEngine {
    SpecCrossEngine::<RangeSignature>::new(
        SpecConfig::with_workers(2)
            .checkpoint_every(2)
            .fault_plan(plan)
            .trace(1 << 14),
    )
}

/// An engine trace serializes to JSONL and parses back to an equal trace —
/// the schema is lossless over the wire.
#[test]
fn engine_trace_round_trips_through_jsonl() {
    let w = IncGrid::new(8, 6);
    let report = traced_engine(FaultPlan::default()).execute(&w).unwrap();
    let trace = report.trace.expect("tracing was configured");
    assert!(!trace.records().is_empty());
    let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("engine JSONL must parse");
    assert_eq!(parsed, trace);
}

/// A seeded `FaultPlan` leaves its firings in the trace at the planned
/// (epoch, task, thread) coordinates: tasks are assigned round-robin, so
/// task 3 on 2 workers runs — and fires — on thread `3 % 2`.
#[test]
fn injected_faults_appear_at_planned_coordinates() {
    let w = IncGrid::new(8, 6);
    let report = traced_engine(FaultPlan::default().delay_at(2, 3, 50))
        .execute(&w)
        .unwrap();
    let trace = report.trace.expect("tracing was configured");
    let firing = trace
        .records()
        .iter()
        .find(|r| matches!(r.event, Event::FaultInjected { .. }))
        .expect("the planned delay must be recorded");
    assert_eq!(
        firing.event,
        Event::FaultInjected {
            kind: FaultKind::Delay(50),
            epoch: 2,
            task: 3,
        }
    );
    assert_eq!(firing.tid, 3 % 2, "round-robin assignment places task 3");
}

/// The acceptance scenario: one injected misspeculation, traced through
/// the real engine *and* the simulator. Both traces parse under the same
/// closed schema, and the same `TraceReport` reconstruction yields a
/// one-entry misspeculation ledger and a per-thread barrier-wait breakdown
/// from each.
#[test]
fn engine_and_sim_traces_share_schema_and_reconstruct_the_ledger() {
    // Real engine: force one false-positive conflict at epoch 3.
    let w = IncGrid::new(8, 6);
    let report = traced_engine(FaultPlan::default().false_positive_at(3))
        .execute(&w)
        .unwrap();
    assert_eq!(report.stats.misspeculations, 1);
    let engine_trace = report.trace.expect("tracing was configured");

    // Simulator: inject one misspeculation into an equivalent clean model.
    let model = UniformWorkload::independent(100, 16, 1_000);
    let params = SpecSimParams::with_threads(2)
        .checkpoint_every(2)
        .inject_misspec_at_task(Some(800))
        .trace(1 << 14);
    let sim = speccross(&model, &params, &CostModel::default());
    assert_eq!(sim.stats.misspeculations, 1);
    let sim_trace = sim.trace.expect("tracing was requested");

    for (label, trace) in [("engine", &engine_trace), ("sim", &sim_trace)] {
        // Same wire schema: one parser accepts both byte streams.
        let parsed = Trace::from_jsonl(&trace.to_jsonl())
            .unwrap_or_else(|e| panic!("{label} trace must parse: {e}"));
        assert_eq!(&parsed, trace, "{label}");
        // Same reconstruction: one misspeculation in the ledger, and a
        // breakdown row with barrier waits for every worker.
        let report = TraceReport::from_trace(trace);
        assert_eq!(report.misspeculations.len(), 1, "{label}");
        let workers: Vec<_> = report.threads.iter().filter(|t| t.tid < 2).collect();
        assert_eq!(workers.len(), 2, "{label}");
        assert!(
            workers.iter().any(|t| t.barrier_waits > 0),
            "{label}: checkpoint rendezvous must show up as barrier waits"
        );
        assert!(workers.iter().all(|t| t.tasks > 0), "{label}");
    }
}

/// Overhead smoke: with tracing off the engine reports no trace, and a
/// disabled sink costs one branch — no ring allocation, no atomics (the
/// sink is a plain-field struct; see the ordering notes in
/// `crossinvoc_runtime::trace`).
#[test]
fn tracing_off_allocates_nothing_and_reports_no_trace() {
    let w = IncGrid::new(8, 4);
    let report = SpecCrossEngine::<RangeSignature>::new(SpecConfig::with_workers(2))
        .execute(&w)
        .unwrap();
    assert!(
        report.trace.is_none(),
        "untraced runs must not carry a trace"
    );

    let mut sink = TraceSink::disabled();
    for i in 0..10_000 {
        sink.emit_at(i, Event::Checkpoint { epoch: 0 });
    }
    assert_eq!(sink.ring_capacity(), 0, "disabled sinks never allocate");
    assert_eq!(sink.len(), 0);
}
