//! Virtual-time model of the region server's shared worker pool.
//!
//! The threaded [`crossinvoc_runtime::pool::WorkerPool`] admits whole gangs
//! in FIFO ticket order, all-or-nothing: the oldest waiting gang is granted
//! as soon as enough slots are free, and no later gang may overtake it.
//! This module replays that admission discipline in virtual time, which is
//! how the BENCH_8 saturation gate scores throughput: CI machines
//! (frequently single-core) cannot observe real concurrent speedup, so the
//! gate feeds each region's *solo* simulated duration into this model and
//! compares the pooled makespan against region-at-a-time execution
//! (`sum` of the durations). The units are whatever the durations are in —
//! typically the `total_ns` of a [`crate::SimResult`].
//!
//! The model deliberately mirrors the pool's two scheduling properties:
//!
//! * **All-or-nothing**: a region occupies its whole gang for its whole
//!   duration; partial admission never happens (so a deadlock between
//!   half-admitted gangs is impossible — same argument as the real pool).
//! * **FIFO head-of-line**: a wide gang at the head blocks later narrow
//!   gangs even when they would fit — the price of starvation-freedom.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One region submitted to the simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpec {
    /// Pool slots the region's gang occupies while running (for SPECCROSS:
    /// workers + checker shards; for DOMORE: workers — the scheduler rides
    /// the submitting manager thread).
    pub gang: usize,
    /// Virtual run time of the region once admitted (e.g. its solo
    /// simulated `total_ns`).
    pub duration: u64,
}

/// Timeline of a simulated region-server run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSimResult {
    /// Virtual completion time of the whole batch through the shared pool.
    pub makespan: u64,
    /// Region-at-a-time baseline: the sum of all durations (one region
    /// holds the pool at a time, as pre-region-server code would).
    pub sequential: u64,
    /// Per-region `(start, finish)` virtual times, in submission order.
    pub timeline: Vec<(u64, u64)>,
}

impl ServerSimResult {
    /// Aggregate throughput of the pooled run relative to region-at-a-time
    /// execution (`> 1.0` means the shared pool helped).
    pub fn throughput_ratio(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.sequential as f64 / self.makespan as f64
    }
}

/// Simulates `regions` (all submitted at time 0, in order) through a pool
/// of `pool_slots` workers under FIFO all-or-nothing gang admission.
///
/// # Panics
///
/// Panics if `pool_slots` is zero or any region's gang is zero or exceeds
/// `pool_slots` (the real pool rejects such regions with `InvalidConfig`
/// before they reach admission).
pub fn region_server(pool_slots: usize, regions: &[RegionSpec]) -> ServerSimResult {
    assert!(pool_slots > 0, "pool must have at least one slot");
    let mut free = pool_slots;
    let mut now = 0u64;
    // Pending slot releases as (finish_time, slots), popped earliest-first.
    let mut releases: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut timeline = Vec::with_capacity(regions.len());
    let mut makespan = 0u64;
    let mut sequential = 0u64;

    for region in regions {
        assert!(
            region.gang > 0 && region.gang <= pool_slots,
            "gang of {} on a pool of {pool_slots} slots",
            region.gang
        );
        // FIFO: this region is the head of the queue; retire finished gangs
        // until its whole gang fits. Later regions cannot overtake it.
        while free < region.gang {
            let Reverse((finish, slots)) = releases
                .pop()
                .expect("gang fits in the pool, so releases must cover the deficit");
            now = now.max(finish);
            free += slots;
        }
        let start = now;
        let finish = start + region.duration;
        free -= region.gang;
        releases.push(Reverse((finish, region.gang)));
        timeline.push((start, finish));
        makespan = makespan.max(finish);
        sequential += region.duration;
    }

    ServerSimResult {
        makespan,
        sequential,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(gang: usize, duration: u64) -> RegionSpec {
        RegionSpec { gang, duration }
    }

    #[test]
    fn independent_gangs_overlap_and_beat_region_at_a_time() {
        // Four 2-wide regions on 4 slots: two waves instead of four.
        let r = region_server(4, &[spec(2, 100), spec(2, 100), spec(2, 100), spec(2, 100)]);
        assert_eq!(r.makespan, 200);
        assert_eq!(r.sequential, 400);
        assert!(r.throughput_ratio() > 1.9);
    }

    #[test]
    fn fifo_head_of_line_blocks_even_fitting_gangs() {
        // The 4-wide head must wait for the whole pool; the narrow region
        // behind it waits too, despite one free slot, matching the pool's
        // starvation-free ticket order.
        let r = region_server(4, &[spec(3, 100), spec(4, 10), spec(1, 10)]);
        assert_eq!(r.timeline[0], (0, 100));
        assert_eq!(r.timeline[1], (100, 110));
        assert_eq!(r.timeline[2], (110, 120));
    }

    #[test]
    fn saturated_pool_serializes_exactly() {
        let r = region_server(2, &[spec(2, 50), spec(2, 70)]);
        assert_eq!(r.makespan, 120);
        assert_eq!(r.sequential, 120);
        assert!((r.throughput_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gang of 5")]
    fn oversized_gang_panics() {
        region_server(4, &[spec(5, 1)]);
    }
}
