//! The automatic parallelization driver — the decision flow of Fig. 1.5.
//!
//! Given a top-level loop nest, the driver:
//!
//! 1. profiles the outer loop's cross-invocation dependences on a training
//!    run ([`crossinvoc_pir::pdg::ManifestProfile`], the 72.4%-style rates
//!    of Fig. 3.1);
//! 2. if conflicts are *rare*, builds a SPECCROSS plan and profiles its
//!    minimum dependence distance for the speculative-range gate (§4.4);
//! 3. if conflicts are *frequent* — speculation would thrash — builds a
//!    DOMORE plan instead (the complementarity claim of §1.2);
//! 4. falls back to barrier-synchronized parallel execution when the nest
//!    defeats both transformations, or to sequential execution when the
//!    inner loops cannot be parallelized at all.

use std::fmt;

use crossinvoc_domore::runtime::DomoreError;
use crossinvoc_pir::interp::{Interp, Memory};
use crossinvoc_pir::ir::{Program, Stmt, StmtId};
use crossinvoc_pir::pdg::ManifestProfile;
use crossinvoc_pir::transform::{DomorePlan, SpecCrossPlan};
use crossinvoc_runtime::stats::StatsSummary;
use crossinvoc_speccross::engine::{SpecConfig, SpecError};

/// How a nest ends up being executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Speculative barriers (rare cross-invocation conflicts).
    SpecCross,
    /// DOMORE runtime scheduling (frequent conflicts).
    Domore,
    /// Parallel inner loops behind non-speculative barriers.
    Barrier,
    /// No profitable parallelization found.
    Sequential,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::SpecCross => write!(f, "SPECCROSS"),
            Strategy::Domore => write!(f, "DOMORE"),
            Strategy::Barrier => write!(f, "barrier"),
            Strategy::Sequential => write!(f, "sequential"),
        }
    }
}

/// Errors from planning or executing an automatic parallelization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoError {
    /// The designated statement is not a top-level `For` loop of the
    /// program (profiling and plan execution need the whole-program
    /// context).
    NotATopLevelLoop(StmtId),
    /// The DOMORE runtime rejected the execution.
    Domore(DomoreError),
    /// The SPECCROSS engine rejected the execution.
    Spec(SpecError),
}

impl fmt::Display for AutoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoError::NotATopLevelLoop(s) => {
                write!(f, "statement #{} is not a top-level loop", s.0)
            }
            AutoError::Domore(e) => write!(f, "DOMORE execution failed: {e}"),
            AutoError::Spec(e) => write!(f, "SPECCROSS execution failed: {e}"),
        }
    }
}

impl std::error::Error for AutoError {}

impl From<DomoreError> for AutoError {
    fn from(e: DomoreError) -> Self {
        AutoError::Domore(e)
    }
}

impl From<SpecError> for AutoError {
    fn from(e: SpecError) -> Self {
        AutoError::Spec(e)
    }
}

/// Execution summary, unified across strategies.
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Runtime counters (tasks, epochs, sync conditions, misspeculations).
    pub stats: StatsSummary,
    /// Whether a SPECCROSS execution abandoned speculation mid-run and
    /// finished the region under non-speculative barriers (see
    /// `DegradePolicy`); always `false` for the other strategies.
    pub degraded: bool,
}

/// The driver configuration.
#[derive(Debug, Clone)]
pub struct AutoParallelizer {
    workers: usize,
    /// Manifest-rate ceiling below which speculation is chosen (§4.4's
    /// "high-confidence" threshold; the thesis' default partitions exactly
    /// as Fig. 1.5 describes).
    speculation_ceiling: f64,
    /// Profiling window, in epochs, for the dependence-distance profiler.
    profile_window: u32,
}

impl AutoParallelizer {
    /// Creates a driver targeting `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            speculation_ceiling: 0.05,
            profile_window: 4,
        }
    }

    /// Overrides the speculation manifest-rate ceiling.
    pub fn speculation_ceiling(mut self, ceiling: f64) -> Self {
        self.speculation_ceiling = ceiling;
        self
    }

    /// Plans the parallelization of the top-level loop `outer`.
    ///
    /// Profiling runs execute the program on zeroed training memory; plans
    /// never modify the program.
    ///
    /// # Errors
    ///
    /// Returns [`AutoError::NotATopLevelLoop`] if `outer` is not a
    /// top-level `For` of `program`.
    pub fn plan<'p>(&self, program: &'p Program, outer: StmtId) -> Result<Decision<'p>, AutoError> {
        if !program.body().contains(&outer) || !matches!(program.stmt(outer), Stmt::For { .. }) {
            return Err(AutoError::NotATopLevelLoop(outer));
        }

        // Step 1: profile the outer loop's cross-invocation dependences on
        // a training run (diagnostic; reported on the decision).
        let mut training = Memory::zeroed(program);
        let manifest = ManifestProfile::collect(program, outer, &mut training);
        let rate = manifest.max_rate();

        // Step 2: if the region is SPECCROSS-shaped, profile its minimum
        // dependence distance and apply §4.4's rule: speculate unless the
        // closest conflict is nearer than the worker count (the thesis'
        // default threshold) — such conflicts would gate speculation into
        // near-serial execution, which is DOMORE territory (§1.2).
        let spec_plan = SpecCrossPlan::build(program, outer).ok();
        let mut distance = None;
        let speculate = match &spec_plan {
            Some(plan) => {
                let mut training = Memory::zeroed(program);
                distance = plan
                    .profile(&mut training, self.profile_window)
                    .min_distance;
                match distance {
                    None => true,
                    Some(d) => d >= self.workers as u64,
                }
            }
            None => false,
        };
        if speculate {
            let plan = spec_plan.expect("speculate implies a SPECCROSS plan");
            return Ok(Decision {
                program,
                workers: self.workers,
                manifest_rate: rate,
                plan: Plan::SpecCross { plan, distance },
            });
        }

        // Step 3: frequent/near conflicts — synchronize them precisely.
        if let Some(inner) = last_inner_loop(program, outer) {
            if let Ok(plan) = DomorePlan::build(program, outer, inner) {
                return Ok(Decision {
                    program,
                    workers: self.workers,
                    manifest_rate: rate,
                    plan: Plan::Domore(plan),
                });
            }
        }
        // Step 4: fall back — barriers if the region is at least
        // inner-parallelizable, else sequential.
        match spec_plan {
            Some(plan) => Ok(Decision {
                program,
                workers: self.workers,
                manifest_rate: rate,
                plan: Plan::Barrier(plan),
            }),
            None => Ok(Decision {
                program,
                workers: self.workers,
                manifest_rate: rate,
                plan: Plan::Sequential,
            }),
        }
    }
}

fn last_inner_loop(program: &Program, outer: StmtId) -> Option<StmtId> {
    let Stmt::For { body, .. } = program.stmt(outer) else {
        return None;
    };
    body.last()
        .copied()
        .filter(|&s| matches!(program.stmt(s), Stmt::For { .. }))
}

/// A planned parallelization, ready to execute.
#[derive(Debug)]
pub struct Decision<'p> {
    program: &'p Program,
    workers: usize,
    manifest_rate: f64,
    plan: Plan<'p>,
}

#[derive(Debug)]
enum Plan<'p> {
    Domore(DomorePlan<'p>),
    SpecCross {
        plan: SpecCrossPlan<'p>,
        distance: Option<u64>,
    },
    Barrier(SpecCrossPlan<'p>),
    Sequential,
}

impl Decision<'_> {
    /// The chosen strategy.
    pub fn strategy(&self) -> Strategy {
        match &self.plan {
            Plan::Domore(_) => Strategy::Domore,
            Plan::SpecCross { .. } => Strategy::SpecCross,
            Plan::Barrier(_) => Strategy::Barrier,
            Plan::Sequential => Strategy::Sequential,
        }
    }

    /// The profiled cross-invocation manifest rate that drove the choice.
    pub fn manifest_rate(&self) -> f64 {
        self.manifest_rate
    }

    /// The profiled speculative range, if the strategy is SPECCROSS.
    pub fn spec_distance(&self) -> Option<u64> {
        match &self.plan {
            Plan::SpecCross { distance, .. } => *distance,
            _ => None,
        }
    }

    /// Executes the whole program under the chosen strategy.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`AutoError::Domore`]/[`AutoError::Spec`]).
    pub fn execute(&self, mem: &mut Memory) -> Result<Report, AutoError> {
        match &self.plan {
            Plan::Domore(plan) => {
                let report = plan.execute(mem, self.workers)?;
                Ok(Report {
                    stats: report.stats,
                    degraded: false,
                })
            }
            Plan::SpecCross { plan, distance } => {
                let report = plan.execute(
                    mem,
                    SpecConfig::with_workers(self.workers).spec_distance(*distance),
                )?;
                Ok(Report {
                    stats: report.stats,
                    degraded: report.degraded,
                })
            }
            Plan::Barrier(plan) => {
                let report =
                    plan.execute_with_barriers(mem, SpecConfig::with_workers(self.workers))?;
                Ok(Report {
                    stats: report.stats,
                    degraded: false,
                })
            }
            Plan::Sequential => {
                Interp::new(self.program).run(mem);
                Ok(Report::default())
            }
        }
    }

    /// Runs the program sequentially (the validation baseline).
    pub fn execute_sequential(&self, mem: &mut Memory) {
        Interp::new(self.program).run(mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_pir::ir::{Expr, ProgramBuilder};

    /// Independent inner loops: rare conflicts → SPECCROSS.
    fn clean_nest() -> (Program, StmtId) {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 32);
        let t = b.var("t");
        let i = b.var("i");
        let x = b.var("x");
        let outer = b.for_loop(t, Expr::Const(0), Expr::Const(6), |b| {
            b.for_loop(i, Expr::Const(0), Expr::Const(32), |b| {
                b.load(x, a, Expr::Var(i));
                b.store(a, Expr::Var(i), Expr::add(Expr::Var(x), Expr::Const(1)));
            });
        });
        (b.finish(), outer)
    }

    /// CG-shaped nest: overlapping extents → frequent conflicts → DOMORE.
    fn conflicting_nest() -> (Program, StmtId) {
        let mut b = ProgramBuilder::new();
        let starts = b.array("starts", 16);
        let c = b.array("C", 24);
        let k = b.var("k");
        let i = b.var("i");
        let j = b.var("j");
        let start = b.var("start");
        let x = b.var("x");
        b.for_loop(k, Expr::Const(0), Expr::Const(16), |b| {
            b.store(
                starts,
                Expr::Var(k),
                Expr::rem(Expr::mul(Expr::Var(k), Expr::Const(3)), Expr::Const(18)),
            );
        });
        let outer = b.for_loop(i, Expr::Const(0), Expr::Const(16), |b| {
            b.load(start, starts, Expr::Var(i));
            b.for_loop(
                j,
                Expr::Var(start),
                Expr::add(Expr::Var(start), Expr::Const(6)),
                |b| {
                    b.load(x, c, Expr::Var(j));
                    b.store(c, Expr::Var(j), Expr::add(Expr::Var(x), Expr::Const(1)));
                },
            );
        });
        (b.finish(), outer)
    }

    #[test]
    fn rare_conflicts_choose_speccross() {
        let (p, outer) = clean_nest();
        let decision = AutoParallelizer::new(2).plan(&p, outer).unwrap();
        assert_eq!(decision.strategy(), Strategy::SpecCross);
        let mut mem = Memory::zeroed(&p);
        let report = decision.execute(&mut mem).unwrap();
        assert!(!report.degraded, "a clean run must not degrade");
        let mut expected = Memory::zeroed(&p);
        decision.execute_sequential(&mut expected);
        assert_eq!(mem.snapshot(), expected.snapshot());
    }

    #[test]
    fn frequent_conflicts_choose_domore() {
        let (p, outer) = conflicting_nest();
        // Overlapping extents put the closest conflict a handful of tasks
        // away — below an 8-worker threshold, so speculation is rejected.
        let decision = AutoParallelizer::new(8).plan(&p, outer).unwrap();
        assert!(
            decision.manifest_rate() > 0.5,
            "overlapping extents manifest often, got {}",
            decision.manifest_rate()
        );
        assert_eq!(decision.strategy(), Strategy::Domore);
        let mut mem = Memory::zeroed(&p);
        decision.execute(&mut mem).unwrap();
        let mut expected = Memory::zeroed(&p);
        decision.execute_sequential(&mut expected);
        assert_eq!(mem.snapshot(), expected.snapshot());
    }

    #[test]
    fn non_loop_target_is_rejected() {
        let (p, _) = clean_nest();
        let not_a_loop = p.body()[0];
        let nested = StmtId(1);
        let err = AutoParallelizer::new(2).plan(&p, nested).unwrap_err();
        assert!(matches!(err, AutoError::NotATopLevelLoop(_)));
        let _ = not_a_loop;
    }

    #[test]
    fn strategy_displays_readably() {
        assert_eq!(Strategy::SpecCross.to_string(), "SPECCROSS");
        assert_eq!(Strategy::Domore.to_string(), "DOMORE");
    }
}
