//! `trace-report` — renders JSONL execution traces into the barrier-idle
//! breakdown, per-thread utilization timeline, and misspeculation ledger
//! (see `docs/OBSERVABILITY.md`).
//!
//! Traces come from a figure bench run with `CROSSINVOC_TRACE=1` (written
//! to `target/figures/<name>.trace.jsonl`), or from any engine run whose
//! `SpecReport`/`ExecutionReport` trace was serialized with
//! `Trace::to_jsonl`. Usage:
//!
//! ```text
//! cargo run -p crossinvoc-bench --bin trace-report -- target/figures/*.trace.jsonl
//! ```

use std::process::ExitCode;

use crossinvoc_runtime::trace::{Trace, TraceReport};

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-report <trace.jsonl>...");
        eprintln!(
            "hint: run a figure bench with CROSSINVOC_TRACE=1 to write \
             target/figures/<name>.trace.jsonl"
        );
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("{path}: {err}");
                failed = true;
                continue;
            }
        };
        match Trace::from_jsonl(&text) {
            Ok(trace) => {
                let report = TraceReport::from_trace(&trace);
                println!("== {path}");
                print!("{}", report.render(&trace));
                println!();
            }
            Err(err) => {
                eprintln!("{path}: {err}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
