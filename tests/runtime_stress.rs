//! Concurrency stress tests for the runtime substrate: queue transfer
//! under contention and varying capacities, barrier phase integrity over
//! many generations, progress-board monotonicity, and checker admission
//! order independence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use crossinvoc_runtime::signature::{AccessKind, AccessSignature, RangeSignature};
use crossinvoc_runtime::spsc::Queue;
use crossinvoc_runtime::SpinBarrier;
use crossinvoc_speccross::{CheckRequest, CheckerState, Position};

#[test]
fn spsc_transfer_is_lossless_across_capacities() {
    for capacity in [1usize, 2, 7, 64, 1024] {
        let (tx, rx) = Queue::with_capacity(capacity);
        const N: u64 = 20_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                tx.produce(i * i);
            }
        });
        let mut sum = 0u64;
        for _ in 0..N {
            sum = sum.wrapping_add(rx.consume());
        }
        producer.join().unwrap();
        let expected = (0..N).map(|i| i * i).fold(0u64, u64::wrapping_add);
        assert_eq!(sum, expected, "capacity {capacity}");
    }
}

#[test]
fn barrier_keeps_phases_aligned_for_thousands_of_generations() {
    const THREADS: usize = 3;
    const GENERATIONS: u64 = 5_000;
    let barrier = Arc::new(SpinBarrier::new(THREADS));
    let phase = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let barrier = Arc::clone(&barrier);
        let phase = Arc::clone(&phase);
        handles.push(thread::spawn(move || {
            for g in 0..GENERATIONS {
                if barrier.wait(tid) {
                    // Exactly one serial thread per generation advances.
                    phase.store(g + 1, Ordering::SeqCst);
                }
                barrier.wait(tid);
                assert_eq!(phase.load(Ordering::SeqCst), g + 1, "thread {tid}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(barrier.generations(), GENERATIONS * 2);
}

fn req(
    tid: usize,
    epoch: u32,
    task: u32,
    snapshot: &[(u32, u32)],
    addr: usize,
) -> CheckRequest<RangeSignature> {
    let mut sig = RangeSignature::empty();
    sig.record(addr, AccessKind::Write);
    CheckRequest {
        tid,
        pos: Position { epoch, task },
        snapshot: snapshot
            .iter()
            .map(|&(e, t)| Position { epoch: e, task: t })
            .collect(),
        sig,
    }
}

/// The symmetric admit rule: a racing cross-epoch pair is caught no matter
/// which side's request reaches the checker first.
#[test]
fn checker_catches_conflicts_in_either_admission_order() {
    // Worker 0 runs <1,0>, worker 1 runs <2,0> concurrently; both write
    // address 9; each observed the other in flight.
    let early = req(0, 1, 0, &[(1, 0), (2, 0)], 9);
    let late = req(1, 2, 0, &[(1, 0), (2, 0)], 9);

    let mut forward = CheckerState::new(2);
    assert!(forward.admit(early.clone()).is_none());
    let c1 = forward.admit(late.clone()).expect("forward order");

    let mut backward = CheckerState::new(2);
    assert!(backward.admit(late).is_none());
    let c2 = backward.admit(early).expect("backward order");

    assert_eq!(c1, c2, "the detected pair is order-independent");
}

/// Pruning at a checkpoint epoch never removes entries that could still
/// race with requests from at or after that epoch.
#[test]
fn checker_pruning_is_safe_at_checkpoint_boundaries() {
    let mut state = CheckerState::new(2);
    for epoch in 0..10u32 {
        let tid = (epoch % 2) as usize;
        let mut snapshot = [(0u32, 0u32); 2];
        // Barrier-equivalent history: the other worker is observed past
        // its epoch-(epoch-1) work.
        snapshot[1 - tid] = (epoch, u32::MAX);
        snapshot[tid] = (epoch, 0);
        assert!(state.admit(req(tid, epoch, 0, &snapshot, 5)).is_none());
    }
    state.prune_before_epoch(8);
    // A new request racing with the epoch-8 leftover (worker 0's, observed
    // still in flight) must still be caught after pruning.
    let conflict = state.admit(req(1, 9, 1, &[(8, 0), (9, 1)], 5));
    assert!(conflict.is_some(), "post-prune race still detected");
}

/// Monotone combined-iteration numbering survives interleaved scheduling
/// from the pure logic under concurrent-looking streams.
#[test]
fn scheduler_numbers_are_strictly_monotone() {
    use crossinvoc_domore::logic::SchedulerLogic;
    let mut logic = SchedulerLogic::with_sparse_shadow();
    let mut conds = Vec::new();
    let mut last = None;
    for i in 0..1000usize {
        conds.clear();
        let n = logic.schedule_rw(i % 5, &[i % 13], &[(i * 7) % 13], &mut conds);
        if let Some(prev) = last {
            assert_eq!(n, prev + 1);
        }
        last = Some(n);
    }
}

/// The fault matrix: every injectable fault kind, driven through both
/// engines, must terminate within the watchdog deadline with either the
/// sequential result or a typed error — never an abort or a hang.
mod fault_matrix {
    use std::time::Duration;

    use crossinvoc_domore::prelude::*;
    use crossinvoc_domore::runtime::DomoreError;
    use crossinvoc_domore::DuplicatedScheduler;
    use crossinvoc_runtime::fault::FaultPlan;
    use crossinvoc_runtime::{RangeSignature, SharedSlice, ThreadId};
    use crossinvoc_speccross::prelude::*;

    const WATCHDOG: Duration = Duration::from_secs(30);

    /// Task `t` of every epoch increments cell `t` (and records the write).
    /// The same cell is always touched by the same worker, so a clean run
    /// never conflicts — every misspeculation below is injected.
    struct IncGrid {
        data: SharedSlice<u64>,
        epochs: usize,
    }

    impl IncGrid {
        fn new(n: usize, epochs: usize) -> Self {
            Self {
                data: SharedSlice::from_vec(vec![0; n]),
                epochs,
            }
        }

        fn expected(&self) -> Vec<u64> {
            vec![self.epochs as u64; self.data.len()]
        }

        fn cells(&self) -> Vec<u64> {
            (0..self.data.len())
                .map(|i| unsafe { self.data.read(i) })
                .collect()
        }
    }

    impl SpecWorkload for IncGrid {
        type State = Vec<u64>;

        fn num_epochs(&self) -> usize {
            self.epochs
        }
        fn num_tasks(&self, _epoch: usize) -> usize {
            self.data.len()
        }
        fn execute_task(
            &self,
            _epoch: usize,
            task: usize,
            _tid: ThreadId,
            rec: &mut dyn AccessRecorder,
        ) {
            rec.write(task);
            // SAFETY: same-epoch tasks write disjoint cells; the same cell
            // is revisited only across epochs, which the engine orders.
            unsafe { self.data.update(task, |v| *v += 1) };
        }
        fn snapshot(&self) -> Self::State {
            self.cells()
        }
        fn restore(&self, state: &Self::State) {
            for (i, v) in state.iter().enumerate() {
                unsafe { self.data.write(i, *v) };
            }
        }
    }

    fn engine(plan: FaultPlan) -> SpecCrossEngine {
        SpecCrossEngine::<RangeSignature>::new(
            SpecConfig::with_workers(2)
                .checkpoint_every(2)
                .fault_plan(plan)
                .watchdog(WATCHDOG),
        )
    }

    #[test]
    fn worker_panic_is_contained_and_rolled_back() {
        let w = IncGrid::new(8, 6);
        let report = engine(FaultPlan::default().worker_panic_at(2, 3))
            .execute(&w)
            .unwrap();
        assert_eq!(w.cells(), w.expected());
        assert!(
            report
                .contained_faults
                .iter()
                .any(|f| matches!(f, ContainedFault::WorkerPanic { epoch: 2, task: 3 })),
            "the contained panic must be reported: {:?}",
            report.contained_faults
        );
        assert!(!report.degraded);
    }

    #[test]
    fn checker_stall_only_slows_the_run() {
        let w = IncGrid::new(8, 6);
        let report = engine(FaultPlan::default().checker_stall_at(1, 30))
            .execute(&w)
            .unwrap();
        assert_eq!(w.cells(), w.expected());
        assert_eq!(report.stats.misspeculations, 0);
    }

    #[test]
    fn checker_death_without_policy_is_a_typed_error() {
        let w = IncGrid::new(8, 6);
        let err = engine(FaultPlan::default().checker_death_at(1))
            .execute(&w)
            .unwrap_err();
        assert!(
            matches!(err, SpecError::CheckerFailed { .. }),
            "expected CheckerFailed, got {err:?}"
        );
    }

    #[test]
    fn checker_death_with_policy_degrades_to_barriers() {
        let w = IncGrid::new(8, 6);
        let report = SpecCrossEngine::<RangeSignature>::new(
            SpecConfig::with_workers(2)
                .checkpoint_every(2)
                .fault_plan(FaultPlan::default().checker_death_at(1))
                .degrade(DegradePolicy::default())
                .watchdog(WATCHDOG),
        )
        .execute(&w)
        .unwrap();
        assert!(report.degraded, "losing the checker must degrade");
        assert_eq!(w.cells(), w.expected());
    }

    #[test]
    fn forced_false_positive_recovers_like_a_real_conflict() {
        let w = IncGrid::new(8, 6);
        let report = engine(FaultPlan::default().false_positive_at(3))
            .execute(&w)
            .unwrap();
        assert!(report.stats.misspeculations >= 1);
        assert!(!report.degraded);
        assert_eq!(w.cells(), w.expected());
    }

    #[test]
    fn false_positive_storm_trips_the_degrade_policy() {
        let w = IncGrid::new(8, 12);
        let report = SpecCrossEngine::<RangeSignature>::new(
            SpecConfig::with_workers(2)
                .checkpoint_every(2)
                .fault_plan(FaultPlan::default().false_positive_storm(32))
                .degrade(DegradePolicy {
                    window: 4,
                    max_misspeculations: 2,
                    max_consecutive_failures: 2,
                })
                .watchdog(WATCHDOG),
        )
        .execute(&w)
        .unwrap();
        assert!(report.degraded, "a storm of false positives must degrade");
        assert_eq!(w.cells(), w.expected());
    }

    #[test]
    fn snapshot_failure_keeps_the_previous_checkpoint() {
        let w = IncGrid::new(8, 6);
        let report = engine(FaultPlan::default().snapshot_failure_at(2))
            .execute(&w)
            .unwrap();
        assert_eq!(w.cells(), w.expected());
        assert!(
            report
                .contained_faults
                .iter()
                .any(|f| matches!(f, ContainedFault::SnapshotSkipped { epoch: 2 })),
            "the skipped snapshot must be reported: {:?}",
            report.contained_faults
        );
    }

    #[test]
    fn restore_failure_retries_once_then_succeeds() {
        let w = IncGrid::new(8, 6);
        let report = SpecCrossEngine::<RangeSignature>::new(
            SpecConfig::with_workers(2)
                .checkpoint_every(2)
                .inject_conflict_at_epoch(Some(3))
                .fault_plan(FaultPlan::default().restore_failure())
                .watchdog(WATCHDOG),
        )
        .execute(&w)
        .unwrap();
        assert_eq!(w.cells(), w.expected());
        assert!(
            report
                .contained_faults
                .iter()
                .any(|f| matches!(f, ContainedFault::RestoreRetried { .. })),
            "the retried restore must be reported: {:?}",
            report.contained_faults
        );
    }

    #[test]
    fn restore_failing_twice_is_a_typed_error() {
        let w = IncGrid::new(8, 6);
        let err = SpecCrossEngine::<RangeSignature>::new(
            SpecConfig::with_workers(2)
                .checkpoint_every(2)
                .inject_conflict_at_epoch(Some(3))
                .fault_plan(FaultPlan::default().restore_failure().restore_failure())
                .watchdog(WATCHDOG),
        )
        .execute(&w)
        .unwrap_err();
        assert!(
            matches!(err, SpecError::RestoreFailed { .. }),
            "expected RestoreFailed, got {err:?}"
        );
    }

    #[test]
    fn task_delay_changes_timing_not_results() {
        let w = IncGrid::new(8, 6);
        let report = engine(FaultPlan::default().delay_at(1, 2, 200))
            .execute(&w)
            .unwrap();
        assert_eq!(w.cells(), w.expected());
        assert_eq!(report.stats.misspeculations, 0);
    }

    /// Iteration `i` of every invocation increments cell `i` through the
    /// DOMORE shadow-memory scheduler.
    struct DomoreGrid {
        data: SharedSlice<u64>,
        invocations: usize,
    }

    impl DomoreWorkload for DomoreGrid {
        fn num_invocations(&self) -> usize {
            self.invocations
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            self.data.len()
        }
        fn touched_addrs(&self, _inv: usize, iter: usize, out: &mut Vec<usize>) {
            out.push(iter);
        }
        fn execute_iteration(&self, _inv: usize, iter: usize, _tid: ThreadId) {
            // SAFETY: conflicting iterations are ordered by the runtime.
            unsafe { self.data.update(iter, |v| *v += 1) };
        }
        fn address_space(&self) -> Option<usize> {
            Some(self.data.len())
        }
    }

    #[test]
    fn domore_iteration_panic_is_a_typed_error_not_a_hang() {
        let w = DomoreGrid {
            data: SharedSlice::from_vec(vec![0; 8]),
            invocations: 5,
        };
        let err = DomoreRuntime::new(
            DomoreConfig::with_workers(3)
                .fault_plan(FaultPlan::default().worker_panic_at(1, 3))
                .watchdog(WATCHDOG),
        )
        .execute(&w)
        .unwrap_err();
        assert_eq!(err, DomoreError::IterationPanicked { inv: 1, iter: 3 });
    }

    /// Regression: a worker panic used to condemn the whole region
    /// immediately — every queued iteration everywhere was skipped. The
    /// scheduler now routes around the dead worker, so only the panicked
    /// iteration plus the (bounded) work already in flight to the corpse
    /// is lost; the live workers finish the region.
    #[test]
    fn domore_routes_around_a_dead_worker() {
        use std::sync::atomic::AtomicU64;

        struct Counting {
            inner: DomoreGrid,
            executed: AtomicU64,
        }
        impl DomoreWorkload for Counting {
            fn num_invocations(&self) -> usize {
                self.inner.num_invocations()
            }
            fn num_iterations(&self, inv: usize) -> usize {
                self.inner.num_iterations(inv)
            }
            fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
                self.inner.touched_addrs(inv, iter, out);
            }
            fn execute_iteration(&self, inv: usize, iter: usize, tid: ThreadId) {
                self.executed
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.inner.execute_iteration(inv, iter, tid);
            }
            fn address_space(&self) -> Option<usize> {
                self.inner.address_space()
            }
        }

        const CELLS: usize = 8;
        const INVOCATIONS: usize = 50;
        const QUEUE: usize = 4;
        let w = Counting {
            inner: DomoreGrid {
                data: SharedSlice::from_vec(vec![0; CELLS]),
                invocations: INVOCATIONS,
            },
            executed: AtomicU64::new(0),
        };
        let err = DomoreRuntime::new(
            DomoreConfig::with_workers(3)
                .queue_capacity(QUEUE)
                .fault_plan(FaultPlan::default().worker_panic_at(0, 3))
                .watchdog(WATCHDOG),
        )
        .execute(&w)
        .unwrap_err();
        // The first (and only) panic is the surfaced error.
        assert_eq!(err, DomoreError::IterationPanicked { inv: 0, iter: 3 });
        // At most the panicked iteration plus work already queued or
        // batched toward the dead worker can be lost (the scheduler batch
        // is 32 messages; leave slack for one extra in-flight batch).
        let total = (CELLS * INVOCATIONS) as u64;
        let lost_bound = 1 + (QUEUE + 2 * 32) as u64;
        let executed = w.executed.load(std::sync::atomic::Ordering::Relaxed);
        assert!(
            executed >= total - lost_bound,
            "live workers should finish the region: executed {executed} of {total} \
             (allowed loss {lost_bound})"
        );
        assert!(executed < total, "the panicked iteration itself never ran");
    }

    /// When every worker is dead the scheduler must cut the region short
    /// (abort) instead of spinning looking for a live thread.
    #[test]
    fn domore_all_workers_dead_terminates_with_the_panic_error() {
        let w = DomoreGrid {
            data: SharedSlice::from_vec(vec![0; 8]),
            invocations: 50,
        };
        let err = DomoreRuntime::new(
            DomoreConfig::with_workers(1)
                .fault_plan(FaultPlan::default().worker_panic_at(0, 2))
                .watchdog(WATCHDOG),
        )
        .execute(&w)
        .unwrap_err();
        assert_eq!(err, DomoreError::IterationPanicked { inv: 0, iter: 2 });
    }

    #[test]
    fn domore_delay_changes_timing_not_results() {
        let mut w = DomoreGrid {
            data: SharedSlice::from_vec(vec![0; 8]),
            invocations: 5,
        };
        DomoreRuntime::new(
            DomoreConfig::with_workers(3)
                .fault_plan(FaultPlan::default().delay_at(2, 4, 200))
                .watchdog(WATCHDOG),
        )
        .execute(&w)
        .unwrap();
        assert_eq!(w.data.snapshot(), vec![5; 8]);
    }

    /// Region isolation: a faulting region served by a [`RegionServer`]
    /// must leave a concurrently running clean neighbour *byte-identical*
    /// to a solo run — same misspeculation count, same conflict list, same
    /// degradation flag, same contained-fault ledger, same final memory.
    /// One matrix case per fault class the server must firewall: a worker
    /// panic, a checker death that degrades the region, and a forced
    /// misspeculation; plus a DOMORE neighbour case (the other runtime
    /// drawing from the same pool while SPECCROSS region A recovers).
    mod region_isolation {
        use std::sync::Arc;

        use super::*;
        use crossinvoc::server::{RegionReport, RegionServer};

        fn spec_config() -> SpecConfig {
            SpecConfig::with_workers(2)
                .checker_shards(1)
                .checkpoint_every(2)
                .watchdog(WATCHDOG)
        }

        /// The order-insensitive observable outcome of a SPECCROSS region.
        fn digest(w: &IncGrid, report: &crossinvoc_speccross::engine::SpecReport) -> String {
            format!(
                "misspec={} conflicts={:?} degraded={} contained={:?} cells={:?}",
                report.stats.misspeculations,
                report.conflicts,
                report.degraded,
                report.contained_faults,
                w.cells()
            )
        }

        /// Solo baseline: the clean grid through the classic scoped entry
        /// point, no pool, no neighbours.
        fn solo_digest() -> String {
            let w = IncGrid::new(8, 6);
            let report = SpecCrossEngine::<RangeSignature>::new(spec_config())
                .execute(&w)
                .unwrap();
            digest(&w, &report)
        }

        /// Runs clean region B concurrently with region A under `fault`,
        /// checks A's outcome with `check_a`, and returns B's digest.
        fn neighbour_digest(
            fault: FaultPlan,
            a_config: SpecConfig,
            check_a: impl FnOnce(&IncGrid, &RegionReport),
        ) -> String {
            // 3 slots per spec region (2 workers + 1 checker shard).
            let server = RegionServer::new(6);
            let a = Arc::new(IncGrid::new(8, 6));
            let b = Arc::new(IncGrid::new(8, 6));
            let ha = server.submit_spec::<RangeSignature, _>(
                1,
                a_config.fault_plan(fault),
                Arc::clone(&a),
            );
            let hb = server.submit_spec::<RangeSignature, _>(2, spec_config(), Arc::clone(&b));
            let ra = ha.join().expect("the faulting region must be contained");
            let rb = hb.join().expect("the clean region");
            check_a(&a, &ra);
            digest(&b, rb.spec().unwrap())
        }

        #[test]
        fn neighbour_unaffected_by_worker_panic_next_door() {
            let baseline = solo_digest();
            let b = neighbour_digest(
                FaultPlan::default().worker_panic_at(2, 3),
                spec_config(),
                |a, ra| {
                    let report = ra.spec().unwrap();
                    assert!(
                        report.contained_faults.iter().any(|f| matches!(
                            f,
                            ContainedFault::WorkerPanic { epoch: 2, task: 3 }
                        )),
                        "region A must contain its panic: {:?}",
                        report.contained_faults
                    );
                    assert_eq!(a.cells(), a.expected(), "region A still converges");
                },
            );
            assert_eq!(b, baseline, "worker panic in A must not leak into B");
        }

        #[test]
        fn neighbour_unaffected_by_checker_death_and_degrade_next_door() {
            let baseline = solo_digest();
            let b = neighbour_digest(
                FaultPlan::default().checker_death_at(1),
                spec_config().degrade(DegradePolicy::default()),
                |a, ra| {
                    let report = ra.spec().unwrap();
                    assert!(report.degraded, "region A must degrade to barriers");
                    assert_eq!(a.cells(), a.expected(), "region A still converges");
                },
            );
            assert_eq!(b, baseline, "A's degradation must not leak into B");
        }

        #[test]
        fn neighbour_unaffected_by_forced_misspeculation_next_door() {
            let baseline = solo_digest();
            let b = neighbour_digest(
                FaultPlan::default().false_positive_at(3),
                spec_config(),
                |a, ra| {
                    let report = ra.spec().unwrap();
                    assert!(report.stats.misspeculations >= 1, "A must roll back");
                    assert_eq!(a.cells(), a.expected(), "region A still converges");
                },
            );
            assert_eq!(b, baseline, "A's rollback must not leak into B");
        }

        fn dom_cells(g: &DomoreGrid) -> Vec<u64> {
            (0..g.data.len())
                .map(|i| unsafe { g.data.read(i) })
                .collect()
        }

        /// Cross-runtime case: a clean DOMORE region keeps its solo result
        /// while a SPECCROSS neighbour on the same pool panics and recovers.
        #[test]
        fn domore_neighbour_unaffected_by_speccross_panic() {
            // Solo DOMORE baseline.
            let solo = DomoreGrid {
                data: SharedSlice::from_vec(vec![0; 8]),
                invocations: 6,
            };
            let solo_report = DomoreRuntime::new(DomoreConfig::with_workers(2).watchdog(WATCHDOG))
                .execute(&solo)
                .unwrap();
            let baseline = format!(
                "tasks={} sync={} cells={:?}",
                solo_report.stats.tasks,
                solo_report.stats.sync_conditions,
                dom_cells(&solo)
            );

            // 3 slots for the spec region + 2 for the DOMORE workers.
            let server = RegionServer::new(5);
            let a = Arc::new(IncGrid::new(8, 6));
            let b = Arc::new(DomoreGrid {
                data: SharedSlice::from_vec(vec![0; 8]),
                invocations: 6,
            });
            let ha = server.submit_spec::<RangeSignature, _>(
                1,
                spec_config().fault_plan(FaultPlan::default().worker_panic_at(2, 3)),
                Arc::clone(&a),
            );
            let hb = server.submit_domore(
                2,
                DomoreConfig::with_workers(2).watchdog(WATCHDOG),
                Arc::clone(&b),
            );
            ha.join().expect("the panicking spec region is contained");
            let rb = hb.join().expect("the clean domore region");
            let report = rb.domore().unwrap();
            let got = format!(
                "tasks={} sync={} cells={:?}",
                report.stats.tasks,
                report.stats.sync_conditions,
                dom_cells(&b)
            );
            assert_eq!(got, baseline, "A's panic must not leak into DOMORE B");
        }
    }

    /// The duplicated-scheduler variant has no fault hooks, so drive it with
    /// an organically panicking workload: containment must hold there too.
    #[test]
    fn duplicated_scheduler_contains_organic_panics() {
        struct Poisoned {
            inner: DomoreGrid,
        }
        impl DomoreWorkload for Poisoned {
            fn num_invocations(&self) -> usize {
                self.inner.num_invocations()
            }
            fn num_iterations(&self, inv: usize) -> usize {
                self.inner.num_iterations(inv)
            }
            fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
                self.inner.touched_addrs(inv, iter, out);
            }
            fn execute_iteration(&self, inv: usize, iter: usize, tid: ThreadId) {
                assert!(!(inv == 2 && iter == 5), "organic failure");
                self.inner.execute_iteration(inv, iter, tid);
            }
            fn address_space(&self) -> Option<usize> {
                self.inner.address_space()
            }
        }
        let w = Poisoned {
            inner: DomoreGrid {
                data: SharedSlice::from_vec(vec![0; 8]),
                invocations: 5,
            },
        };
        let err = DuplicatedScheduler::new(3).execute(&w).unwrap_err();
        assert_eq!(err, DomoreError::IterationPanicked { inv: 2, iter: 5 });
    }
}
