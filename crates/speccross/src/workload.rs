//! The workload contract consumed by the SPECCROSS engine.
//!
//! A [`SpecWorkload`] is the code region the SPECCROSS compiler targets
//! (§4.3): a sequence of *epochs* (parallelizable inner-loop invocations),
//! each a bag of independent *tasks* (iterations). The instrumentation the
//! compiler inserts (Alg. 5) appears here as the [`AccessRecorder`] passed to
//! every task: the task reports the shared accesses that participate in
//! cross-invocation dependences (the `spec_access` calls), and the engine
//! folds them into that task's signature.

use crossinvoc_runtime::signature::{AccessKind, AccessSignature};
use crossinvoc_runtime::ThreadId;

/// Sink for a task's speculative memory accesses.
///
/// Tasks need only report accesses that may participate in cross-invocation
/// dependences — exactly the loads/stores `Alg. 5` instruments. Reporting a
/// superset is always sound (more false conflicts, never missed ones).
pub trait AccessRecorder {
    /// Reports one access.
    fn record(&mut self, addr: usize, kind: AccessKind);

    /// Reports a read (convenience for `record(addr, AccessKind::Read)`).
    fn read(&mut self, addr: usize) {
        self.record(addr, AccessKind::Read);
    }

    /// Reports a write (convenience for `record(addr, AccessKind::Write)`).
    fn write(&mut self, addr: usize) {
        self.record(addr, AccessKind::Write);
    }
}

/// Records into an [`AccessSignature`].
#[derive(Debug, Default)]
pub struct SigRecorder<S> {
    sig: S,
}

impl<S: AccessSignature> SigRecorder<S> {
    /// Creates a recorder with an empty signature.
    pub fn new() -> Self {
        Self { sig: S::empty() }
    }

    /// Extracts the accumulated signature, leaving the recorder empty.
    pub fn take(&mut self) -> S {
        std::mem::replace(&mut self.sig, S::empty())
    }
}

impl<S: AccessSignature> AccessRecorder for SigRecorder<S> {
    fn record(&mut self, addr: usize, kind: AccessKind) {
        self.sig.record(addr, kind);
    }
}

/// Counts accesses without retaining them. Statically-proven (elided) tasks
/// run with this recorder: no signature is ever checked, but the engine still
/// reports how much admission work the proof saved (the `check_elided` trace
/// event and the elision counters).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingRecorder {
    count: u64,
}

impl CountingRecorder {
    /// Returns the accumulated access count, leaving the recorder at zero.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.count)
    }
}

impl AccessRecorder for CountingRecorder {
    fn record(&mut self, _addr: usize, _kind: AccessKind) {
        self.count += 1;
    }
}

/// Discards all accesses (used by non-speculative re-execution, where no
/// checking happens).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl AccessRecorder for NullRecorder {
    fn record(&mut self, _addr: usize, _kind: AccessKind) {}
}

/// A barrier-synchronized parallel region eligible for SPECCROSS.
///
/// # Contract
///
/// * Tasks within one epoch must be mutually independent (the inner loop is
///   DOALL/LOCALWRITE-parallelizable — this is what the SPECCROSS compiler
///   verifies before transforming, §4.3).
/// * Every access that may conflict with a task of a *different* epoch must
///   be reported through the recorder; missing one can let a real dependence
///   violation go undetected (the analogue of a compiler instrumentation
///   bug).
/// * [`snapshot`](Self::snapshot)/[`restore`](Self::restore) are invoked
///   only while no task is executing (all workers quiesced at a checkpoint
///   or recovery rendezvous), and must capture/reinstate *all* state that
///   tasks mutate.
pub trait SpecWorkload: Sync {
    /// Checkpointable state: everything tasks mutate.
    type State: Send;

    /// Number of epochs (loop invocations) in the region.
    fn num_epochs(&self) -> usize;

    /// Number of tasks in epoch `epoch`.
    fn num_tasks(&self, epoch: usize) -> usize;

    /// Executes one task, reporting speculative accesses to `recorder`.
    ///
    /// `tid` identifies the executing worker (tasks are distributed
    /// round-robin: worker `t` runs tasks `t, t+W, t+2W, …` of each epoch,
    /// matching the `for (i = threadID; i < M; i += THREADNUM)` codegen of
    /// Fig. 4.9).
    fn execute_task(
        &self,
        epoch: usize,
        task: usize,
        tid: ThreadId,
        recorder: &mut dyn AccessRecorder,
    );

    /// Captures all mutable state (quiesced; see the trait contract).
    fn snapshot(&self) -> Self::State;

    /// Reinstates previously captured state (quiesced; see the trait
    /// contract).
    fn restore(&self, state: &Self::State);

    /// Whether `epoch` contains irreversible operations (I/O, …). Such
    /// epochs are executed non-speculatively between two full
    /// synchronizations, and a fresh checkpoint is taken after them
    /// (§4.2.2).
    fn epoch_is_irreversible(&self, epoch: usize) -> bool {
        let _ = epoch;
        false
    }

    /// Whether every access of `epoch`'s tasks is statically proven
    /// conflict-free against all compared tasks (the `pir::elide`
    /// analysis). When the engine runs with
    /// [`crate::engine::SpecConfig::elide`], such tasks skip signature
    /// generation and checker admission entirely; the default keeps every
    /// epoch on the full check path.
    fn epoch_is_proven(&self, epoch: usize) -> bool {
        let _ = epoch;
        false
    }

    /// Total tasks across all epochs.
    fn total_tasks(&self) -> u64
    where
        Self: Sized,
    {
        (0..self.num_epochs())
            .map(|e| self.num_tasks(e) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_runtime::signature::RangeSignature;

    #[test]
    fn sig_recorder_accumulates_and_takes() {
        let mut r = SigRecorder::<RangeSignature>::new();
        r.write(4);
        r.read(9);
        let sig = r.take();
        assert!(!sig.is_empty());
        assert!(r.take().is_empty(), "take resets the recorder");
    }

    #[test]
    fn null_recorder_ignores_everything() {
        let mut r = NullRecorder;
        r.write(1);
        r.read(2);
        // Nothing observable; this test simply exercises the paths.
    }

    struct Toy;
    impl SpecWorkload for Toy {
        type State = ();
        fn num_epochs(&self) -> usize {
            3
        }
        fn num_tasks(&self, epoch: usize) -> usize {
            epoch + 2
        }
        fn execute_task(
            &self,
            _epoch: usize,
            _task: usize,
            _tid: ThreadId,
            _recorder: &mut dyn AccessRecorder,
        ) {
        }
        fn snapshot(&self) -> Self::State {}
        fn restore(&self, _state: &Self::State) {}
    }

    #[test]
    fn total_tasks_sums_epochs() {
        assert_eq!(Toy.total_tasks(), 2 + 3 + 4);
        assert!(!Toy.epoch_is_irreversible(0));
    }
}
