//! The Inspector-Executor baseline (§2.2, §3.5.3; Saltz et al.).
//!
//! IE parallelizes an irregular loop in three phases: an *inspector* walks
//! the iteration space recording the addresses each iteration touches, a
//! *scheduler* topologically sorts the dependence graph into wavefronts,
//! and the *executor* runs one wavefront at a time with a barrier between
//! wavefronts. Two properties distinguish it from DOMORE, both noted by
//! the thesis:
//!
//! 1. inspection is **serialized with execution** — the wavefronts for an
//!    invocation are computed before any of its iterations run, whereas
//!    DOMORE's scheduler dispatches while workers execute; and
//! 2. it is **intra-invocation only** — every invocation still ends in a
//!    global barrier, so no cross-invocation overlap is possible.

use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_runtime::stats::RegionStats;

use crate::cost::CostModel;
use crate::result::SimResult;
use crate::workload::SimWorkload;

/// Computes the wavefront number of every iteration of one invocation:
/// an iteration's wavefront is one past the maximum wavefront of the
/// earlier iterations it conflicts with (write/any overlap).
///
/// Exposed for tests and for the comparison bench; the executor uses it
/// internally.
pub fn wavefronts<W: SimWorkload + ?Sized>(workload: &W, inv: usize) -> Vec<u32> {
    let iterations = workload.num_iterations(inv);
    let mut last_writer: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    let mut last_access: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    let mut fronts = Vec::with_capacity(iterations);
    let mut pairs = Vec::new();
    for iter in 0..iterations {
        pairs.clear();
        workload.accesses(inv, iter, &mut pairs);
        let mut front = 0u32;
        for &(addr, kind) in &pairs {
            // A write conflicts with any earlier access; a read only with
            // earlier writes.
            if let Some(&w) = last_writer.get(&addr) {
                front = front.max(w + 1);
            }
            if kind == AccessKind::Write {
                if let Some(&a) = last_access.get(&addr) {
                    front = front.max(a + 1);
                }
            }
        }
        for &(addr, kind) in &pairs {
            let slot = last_access.entry(addr).or_insert(front);
            *slot = (*slot).max(front);
            if kind == AccessKind::Write {
                let slot = last_writer.entry(addr).or_insert(front);
                *slot = (*slot).max(front);
            }
        }
        fronts.push(front);
    }
    fronts
}

/// Simulates Inspector-Executor parallelization on `threads` threads.
///
/// Per invocation: a serial inspection pass (`inspect_ns` per iteration —
/// the duplicated address computation, comparable to DOMORE's
/// `sched_cost`), then each wavefront in parallel with a barrier after it,
/// then the invocation-ending barrier.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn inspector_executor<W: SimWorkload + ?Sized>(
    workload: &W,
    threads: usize,
    cost: &CostModel,
) -> SimResult {
    assert!(threads > 0, "at least one thread is required");
    let stats = RegionStats::new();
    let mut clocks = vec![0u64; threads];
    let mut busy = vec![0u64; threads];
    let mut idle = vec![0u64; threads];

    for inv in 0..workload.num_invocations() {
        stats.add_epoch();
        // Sequential prologue + serial inspection: everyone waits.
        let mut serial = workload.prologue_cost(inv);
        let iterations = workload.num_iterations(inv);
        for iter in 0..iterations {
            serial += workload.sched_cost(inv, iter);
        }
        let start = clocks.iter().max().copied().unwrap_or(0);
        for (t, (clock, i)) in clocks.iter_mut().zip(idle.iter_mut()).enumerate() {
            *i += start - *clock;
            if t == 0 {
                busy[0] += serial; // thread 0 runs the inspector
            } else {
                *i += serial; // everyone else waits it out
            }
            *clock = start + serial;
        }

        // Executor: wavefront by wavefront, barrier after each.
        let fronts = wavefronts(workload, inv);
        let max_front = fronts.iter().copied().max().unwrap_or(0);
        for front in 0..=max_front {
            let mut any = false;
            let mut next = 0usize;
            for (iter, &f) in fronts.iter().enumerate() {
                if f != front {
                    continue;
                }
                any = true;
                let tid = next % threads;
                next += 1;
                let work = cost.task_overhead_ns + workload.iteration_cost(inv, iter);
                clocks[tid] += work;
                busy[tid] += work;
                stats.add_task();
            }
            if any {
                let slowest = *clocks.iter().max().expect("threads > 0");
                for (clock, i) in clocks.iter_mut().zip(idle.iter_mut()) {
                    *i += slowest - *clock;
                    *clock = slowest + cost.barrier_ns(threads);
                }
            }
        }
    }

    SimResult {
        total_ns: clocks.into_iter().max().unwrap_or(0),
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded: false,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domore::domore;
    use crate::seq::sequential;
    use crate::workload::UniformWorkload;
    use crossinvoc_domore::policy::RoundRobin;

    #[test]
    fn independent_iterations_form_one_wavefront() {
        let w = UniformWorkload::independent(2, 16, 100);
        assert!(wavefronts(&w, 0).iter().all(|&f| f == 0));
    }

    #[test]
    fn same_cell_chain_forms_one_wavefront_per_iteration() {
        // Every iteration writes cell `iter`: independent → wavefront 0.
        let w = UniformWorkload::same_cell(1, 8, 100);
        assert!(wavefronts(&w, 0).iter().all(|&f| f == 0));
    }

    /// A serial chain: iteration i writes cell 0 — every iteration depends
    /// on the previous one.
    #[derive(Debug)]
    struct Chain;
    impl SimWorkload for Chain {
        fn num_invocations(&self) -> usize {
            3
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            8
        }
        fn iteration_cost(&self, _inv: usize, _iter: usize) -> u64 {
            1_000
        }
        fn accesses(&self, _inv: usize, _iter: usize, out: &mut Vec<(usize, AccessKind)>) {
            out.push((0, AccessKind::Write));
        }
        fn address_space(&self) -> Option<usize> {
            Some(1)
        }
    }

    #[test]
    fn fully_dependent_chain_gets_distinct_wavefronts() {
        let fronts = wavefronts(&Chain, 0);
        assert_eq!(fronts, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn executor_matches_task_counts_and_pays_wavefront_barriers() {
        let w = UniformWorkload::independent(10, 32, 2_000);
        let r = inspector_executor(&w, 4, &CostModel::default());
        assert_eq!(r.stats.tasks, 320);
        assert_eq!(r.stats.epochs, 10);
        let seq = sequential(&w, &CostModel::default()).total_ns;
        assert!(r.speedup_over(seq) > 1.5);
    }

    /// The §3.5.3 claim: DOMORE overlaps inspection with execution and
    /// crosses invocation boundaries; IE serializes both. On a workload
    /// with many small invocations DOMORE wins.
    #[test]
    fn domore_beats_inspector_executor_on_many_invocations() {
        let w = UniformWorkload::same_cell(300, 24, 2_000).with_sched_cost(120);
        let cost = CostModel::default();
        let seq = sequential(&w, &cost).total_ns;
        let ie = inspector_executor(&w, 8, &cost).speedup_over(seq);
        let dm = domore(&w, 8, &mut RoundRobin, &cost).speedup_over(seq);
        assert!(
            dm > ie,
            "DOMORE {dm:.2}x must beat inspector-executor {ie:.2}x"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        inspector_executor(&Chain, 0, &CostModel::default());
    }
}
