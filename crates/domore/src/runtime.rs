//! The threaded DOMORE runtime (§3.2, Fig. 3.4).
//!
//! One scheduler (the calling thread) plus `num_workers` worker threads.
//! The scheduler executes the sequential prologue of each invocation, runs
//! the `computeAddr` oracle and the pure scheduling logic for every inner
//! iteration, and forwards messages over per-worker SPSC queues:
//! synchronization conditions first, then the iteration itself. Workers obey
//! Alg. 2: stall on each condition until the named predecessor retires (as
//! observed through the `latestFinished` status array), run the iteration,
//! and publish their own progress.
//!
//! # Failure model
//!
//! An iteration that panics (organically or via an injected
//! [`FaultPlan`]) is caught at the `execute_iteration` call site; the worker
//! records [`DomoreError::IterationPanicked`], marks itself *dead* and —
//! crucially — still publishes the iteration number, so workers blocked on
//! a synchronization condition naming it are released. From then on the
//! dead worker *drains*: it keeps consuming messages (publishing, never
//! executing) until its `END_TOKEN`, so the scheduler's queues never jam.
//! The scheduler routes every subsequent assignment around dead workers
//! (next live worker in thread-id order), so the surviving workers finish
//! the region instead of stalling behind a corpse; the recorded error is
//! surfaced exactly once, after the region joins. Only when *every* worker
//! has died does the scheduler raise the shared abort flag and cut the
//! region short. A panicking scheduler body is likewise contained
//! ([`DomoreError::SchedulerPanicked`]) and the end tokens are always sent.
//! A watchdog deadline ([`DomoreConfig::watchdog`]) bounds every
//! condition-wait so a lost predecessor becomes
//! [`DomoreError::WatchdogTimeout`] instead of an unbounded spin.
//!
//! # Waiting discipline
//!
//! Condition waits (the progress board's bounded await) and full
//! queues use the shared spin-then-park policy
//! ([`crossinvoc_runtime::wait`]): a bounded adaptive spin for the common
//! short wait, then timed parks of [`PARK_SLICE`] so abort flags and
//! watchdog deadlines are still observed promptly while a long wait burns
//! no CPU. Publishers skip the wake entirely while no worker is parked, so
//! the hot retire path stays a store plus one relaxed-ish load.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::utils::CachePadded;
use crossinvoc_runtime::fault::{FaultKind, FaultPlan, TaskFault};
use crossinvoc_runtime::metrics::{Metrics, MetricsSummary};
use crossinvoc_runtime::pool::{RegionExecutor, Role, ScopedExecutor};
use crossinvoc_runtime::spsc::{Producer, Queue};
use crossinvoc_runtime::stats::{RegionStats, StatsSummary};
use crossinvoc_runtime::telemetry::RegionTelemetry;
use crossinvoc_runtime::trace::{Event, Trace, TraceCollector, TraceSink, WakeEdge, MANAGER_TID};
use crossinvoc_runtime::wait::{AdaptiveSpin, Parker, PARK_SLICE};
use crossinvoc_runtime::{IterNum, ThreadId};
use parking_lot::Mutex;

use crate::logic::{SchedulerLogic, SyncCondition};
use crate::memo::{ReplayStep, ScheduleMemo};
use crate::policy::{Dispatch, Policy, RoundRobin};
use crate::workload::DomoreWorkload;

/// Messages the scheduler buffers per worker before flushing them to the
/// SPSC queue in one batched enqueue (single tail publication). See the
/// flush-before-`Sync` invariant in [`DomoreRuntime::execute`].
const SCHED_BATCH: usize = 32;

/// Message from the scheduler to a worker.
#[derive(Debug)]
enum Msg {
    /// Wait for a predecessor iteration before proceeding. `inv` is the
    /// invocation the condition guards (trace/metrics attribution only).
    Sync { cond: SyncCondition, inv: u32 },
    /// Execute iteration `iter` of invocation `inv` (combined number
    /// `iter_num`). This doubles as the paper's `(NO_SYNC, iterNum)` token.
    Run {
        inv: usize,
        iter: usize,
        iter_num: IterNum,
    },
    /// No more work (the paper's `END_TOKEN`).
    End,
}

/// The `latestFinished` array of Alg. 2.
///
/// Each slot stores *one past* the last combined iteration number the worker
/// has retired (so the zero initial value means "nothing finished", avoiding
/// a sentinel).
#[derive(Debug)]
pub(crate) struct ProgressBoard {
    finished: Box<[CachePadded<AtomicU64>]>,
    /// One parker per worker; a waiter parks on *its own* slot and every
    /// publisher wakes all registered parkers. Parks are timed
    /// ([`PARK_SLICE`]) so a lost wake costs at most one slice of latency,
    /// never liveness.
    parkers: Box<[Parker]>,
    /// Workers currently inside a park window. Publishers skip the wake
    /// entirely while this is zero — the common case on the retire path.
    waiters: CachePadded<AtomicUsize>,
}

impl ProgressBoard {
    pub(crate) fn new(num_workers: usize) -> Self {
        Self {
            finished: (0..num_workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            parkers: (0..num_workers).map(|_| Parker::new()).collect(),
            waiters: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Marks `iter_num` retired by `tid` and wakes any parked waiters.
    pub(crate) fn publish(&self, tid: ThreadId, iter_num: IterNum) {
        self.finished[tid].store(iter_num + 1, Ordering::Release);
        if self.waiters.load(Ordering::SeqCst) != 0 {
            for parker in self.parkers.iter() {
                parker.unpark();
            }
        }
    }

    /// Whether `cond` is already satisfied.
    pub(crate) fn satisfied(&self, cond: SyncCondition) -> bool {
        self.finished[cond.dep_tid].load(Ordering::Acquire) > cond.dep_iter
    }

    /// Waits (spin, then timed park on `tid`'s slot) until `cond` is
    /// satisfied, the abort flag rises, or `deadline` passes.
    pub(crate) fn await_condition_bounded(
        &self,
        tid: ThreadId,
        cond: SyncCondition,
        abort: &AtomicBool,
        deadline: Option<Instant>,
    ) -> AwaitOutcome {
        let mut spin = AdaptiveSpin::new();
        loop {
            if self.satisfied(cond) {
                return AwaitOutcome::Satisfied;
            }
            if abort.load(Ordering::Acquire) {
                return AwaitOutcome::Aborted;
            }
            if !spin.should_park() {
                continue;
            }
            // Spin budget exhausted: check the deadline once per slice (a
            // slice is 200µs, far below any watchdog resolution we accept),
            // then register as a waiter. The re-check between registration
            // and the park closes the publish race down to one timed slice.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return AwaitOutcome::TimedOut;
            }
            self.waiters.fetch_add(1, Ordering::SeqCst);
            if !self.satisfied(cond) && !abort.load(Ordering::Acquire) {
                self.parkers[tid].park_timeout(PARK_SLICE);
            }
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Outcome of [`ProgressBoard::await_condition_bounded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AwaitOutcome {
    Satisfied,
    Aborted,
    TimedOut,
}

/// Configuration for [`DomoreRuntime`].
#[derive(Debug)]
pub struct DomoreConfig {
    num_workers: usize,
    queue_capacity: usize,
    fault_plan: Option<FaultPlan>,
    watchdog: Option<Duration>,
    trace_capacity: Option<usize>,
    schedule_memo: bool,
    region_id: u64,
    telemetry: Option<Arc<RegionTelemetry>>,
}

impl DomoreConfig {
    /// Configuration with `num_workers` worker threads and default queue
    /// capacity.
    pub fn with_workers(num_workers: usize) -> Self {
        Self {
            num_workers,
            queue_capacity: 1 << 12,
            fault_plan: None,
            watchdog: None,
            trace_capacity: None,
            schedule_memo: true,
            region_id: 0,
            telemetry: None,
        }
    }

    /// Sets the per-worker SPSC queue capacity (in messages). A zero
    /// capacity is rejected with [`DomoreError::InvalidConfig`] at run time.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Installs a deterministic fault schedule (testing). Coordinates map as
    /// epoch = invocation, task = iteration, thread = worker id.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Bounds every synchronization-condition wait by a wall-clock deadline
    /// measured from the start of the execution.
    pub fn watchdog(mut self, limit: Duration) -> Self {
        self.watchdog = Some(limit);
        self
    }

    /// Enables execution tracing with per-thread rings of `capacity`
    /// records (see [`ExecutionReport::trace`]).
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// The configured worker-thread count (the region's pool-slot demand).
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Enables tracing with `capacity` only when tracing is off — the
    /// region server uses this to arm always-on flight-recorder rings
    /// without overriding an explicitly configured capacity.
    pub fn trace_default(mut self, capacity: usize) -> Self {
        self.trace_capacity.get_or_insert(capacity);
        self
    }

    /// Enables or disables cross-invocation schedule memoization
    /// ([`crate::memo::ScheduleMemo`]). On by default; replayed and
    /// recomputed schedules are decision-for-decision identical, so this
    /// switch exists for measurement, not correctness.
    pub fn schedule_memo(mut self, enabled: bool) -> Self {
        self.schedule_memo = enabled;
        self
    }

    /// Attributes the region's trace to a region-server submission id
    /// (the `region_id` JSONL field; default 0 = solo, wire-invisible).
    pub fn region(mut self, region_id: u64) -> Self {
        self.region_id = region_id;
        self
    }

    /// Attaches a live telemetry cell (region-server mode; see
    /// `crossinvoc_runtime::telemetry`). The runtime then writes its
    /// metrics through the cell — live registry snapshots and the final
    /// [`ExecutionReport::metrics`] read the same counters — and drives the
    /// cell's lifecycle. `None` (the default, solo mode) costs nothing.
    pub fn telemetry(mut self, cell: Arc<RegionTelemetry>) -> Self {
        self.telemetry = Some(cell);
        self
    }
}

/// Errors reported by the DOMORE runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomoreError {
    /// The configuration requested zero workers.
    NoWorkers,
    /// The configuration is inconsistent (message says how).
    InvalidConfig(String),
    /// The workload declared its prologue non-replicable but the duplicated
    /// scheduler was requested.
    PrologueNotReplicable,
    /// An iteration body panicked; the runtime aborted the region after
    /// releasing every worker.
    IterationPanicked {
        /// Invocation of the panicking iteration.
        inv: usize,
        /// Iteration index within the invocation.
        iter: usize,
    },
    /// The scheduler body (prologue or scheduling logic) panicked.
    SchedulerPanicked,
    /// The watchdog deadline elapsed while a worker waited on a
    /// synchronization condition.
    WatchdogTimeout,
}

impl fmt::Display for DomoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomoreError::NoWorkers => write!(f, "at least one worker thread is required"),
            DomoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DomoreError::PrologueNotReplicable => write!(
                f,
                "workload prologue has side effects; duplicated scheduler is unsound"
            ),
            DomoreError::IterationPanicked { inv, iter } => {
                write!(f, "iteration {iter} of invocation {inv} panicked")
            }
            DomoreError::SchedulerPanicked => write!(f, "scheduler body panicked"),
            DomoreError::WatchdogTimeout => write!(f, "watchdog deadline elapsed"),
        }
    }
}

impl std::error::Error for DomoreError {}

/// Outcome of a DOMORE execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Counter snapshot (tasks, synchronization conditions, stalls, …).
    pub stats: StatsSummary,
    /// Wall-clock time of the parallel region.
    pub elapsed: Duration,
    /// Number of worker threads used.
    pub num_workers: usize,
    /// Counters plus wait-time histograms (exact: snapshotted after the
    /// worker scope joined).
    pub metrics: MetricsSummary,
    /// Merged execution trace when [`DomoreConfig::trace`] was enabled.
    pub trace: Option<Trace>,
}

/// The scheduler/worker DOMORE engine.
///
/// See the crate-level example for end-to-end usage.
pub struct DomoreRuntime {
    config: DomoreConfig,
    policy: Box<dyn Policy>,
}

impl fmt::Debug for DomoreRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DomoreRuntime")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl DomoreRuntime {
    /// Creates a runtime with round-robin scheduling.
    pub fn new(config: DomoreConfig) -> Self {
        Self {
            config,
            policy: Box::new(RoundRobin),
        }
    }

    /// Replaces the scheduling policy.
    pub fn with_policy(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the scheduling policy by name via the [`Dispatch`] enum —
    /// the configuration-friendly surface used by the bench harness.
    pub fn with_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.policy = dispatch.policy();
        self
    }

    /// Executes `workload` to completion: all invocations, in semantic order
    /// where dependences demand it, overlapped otherwise.
    ///
    /// The calling thread acts as the scheduler; `num_workers` additional
    /// threads are spawned for the duration of the call.
    ///
    /// # Errors
    ///
    /// [`DomoreError::NoWorkers`] / [`DomoreError::InvalidConfig`] for a bad
    /// configuration; [`DomoreError::IterationPanicked`],
    /// [`DomoreError::SchedulerPanicked`] and
    /// [`DomoreError::WatchdogTimeout`] when the region failed (all workers
    /// are released and joined before the error is returned — no thread is
    /// leaked and no queue left jammed).
    pub fn execute<W: DomoreWorkload>(
        &mut self,
        workload: &W,
    ) -> Result<ExecutionReport, DomoreError> {
        self.execute_on(workload, &ScopedExecutor)
    }

    /// Like [`DomoreRuntime::execute`], but running the worker gang on the
    /// given executor — a shared [`crossinvoc_runtime::pool::WorkerPool`] in
    /// region-server mode, or [`ScopedExecutor`] for the classic
    /// thread-per-worker behaviour. The calling thread stays the scheduler
    /// either way, and all per-region state (shadow memory, schedule memo,
    /// progress board, metrics, trace sinks, fault budget) lives in this
    /// call frame, so concurrent regions on one pool cannot observe each
    /// other.
    pub fn execute_on<W: DomoreWorkload>(
        &mut self,
        workload: &W,
        exec: &dyn RegionExecutor,
    ) -> Result<ExecutionReport, DomoreError> {
        let num_workers = self.config.num_workers;
        if num_workers == 0 {
            return Err(DomoreError::NoWorkers);
        }
        if self.config.queue_capacity == 0 {
            return Err(DomoreError::InvalidConfig(
                "queue capacity must be positive".to_string(),
            ));
        }
        if let Some(cap) = exec.capacity() {
            // The scheduler runs on the calling thread, so the gang demand
            // is the worker count alone.
            if num_workers > cap {
                return Err(DomoreError::InvalidConfig(format!(
                    "region needs a gang of {num_workers} workers but the executor caps gangs at {cap}"
                )));
            }
        }
        // One shared fault budget for the whole execution (Clone resets it).
        let fault = self.config.fault_plan.clone().unwrap_or_default();
        let deadline = self.config.watchdog.map(|w| Instant::now() + w);

        let mut logic = match workload.address_space() {
            Some(n) => SchedulerLogic::with_dense_shadow(n),
            None => SchedulerLogic::with_sparse_shadow(),
        };
        let mut memo = ScheduleMemo::new();
        let board = ProgressBoard::new(num_workers);
        let telemetry = self.config.telemetry.as_deref();
        if let Some(cell) = telemetry {
            cell.mark_running();
        }
        // In region-server mode the metrics live in the telemetry cell, so
        // live registry snapshots and the final report read the same
        // counters and cannot disagree.
        let owned_metrics;
        let metrics: &Metrics = match telemetry {
            Some(cell) => cell.metrics(),
            None => {
                owned_metrics = Metrics::new();
                &owned_metrics
            }
        };
        let collector = TraceCollector::with_region(
            self.config.trace_capacity.unwrap_or(0),
            self.config.region_id,
        );
        let abort = AtomicBool::new(false);
        // Workers that panicked and now only drain; the scheduler routes
        // new assignments around them.
        let dead: Box<[AtomicBool]> = (0..num_workers).map(|_| AtomicBool::new(false)).collect();
        let error: Mutex<Option<DomoreError>> = Mutex::new(None);
        // First error wins; it is surfaced exactly once, after the join.
        let record = |err: DomoreError| {
            let mut slot = error.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
        };
        // Fatal failures (scheduler panic, watchdog, last worker dead)
        // additionally condemn the whole region.
        let fail = |err: DomoreError| {
            record(err);
            abort.store(true, Ordering::Release);
        };
        let start = Instant::now();

        let queue_capacity = self.config.queue_capacity;
        let schedule_memo = self.config.schedule_memo;
        let policy = self.policy.as_mut();
        {
            let mut producers = Vec::with_capacity(num_workers);
            let mut roles: Vec<Role<'_>> = Vec::with_capacity(num_workers);
            for tid in 0..num_workers {
                let (tx, rx) = Queue::<Msg>::with_capacity(queue_capacity);
                producers.push(tx);
                let board = &board;
                let collector = &collector;
                let (abort, fault) = (&abort, &fault);
                let (dead, record, fail) = (&dead, &record, &fail);
                roles.push(Box::new(move || {
                    let stats = metrics.stats();
                    let mut sink = collector.sink(tid);
                    // Set after a local panic: this worker only drains
                    // (publishes, never executes) from then on.
                    let mut draining = false;
                    loop {
                        match rx.consume() {
                            Msg::Sync { cond, inv } => {
                                // Under abort or local drain the result is
                                // already condemned; skip the wait (the
                                // condition may name an iteration that will
                                // now never execute).
                                if draining
                                    || abort.load(Ordering::Acquire)
                                    || board.satisfied(cond)
                                {
                                    continue;
                                }
                                stats.add_stall();
                                sink.emit(Event::BarrierEnter { epoch: inv });
                                let entered = Instant::now();
                                let outcome =
                                    board.await_condition_bounded(tid, cond, abort, deadline);
                                if outcome == AwaitOutcome::TimedOut {
                                    fail(DomoreError::WatchdogTimeout);
                                }
                                let wait_ns = entered.elapsed().as_nanos() as u64;
                                metrics.record_stall_wait(wait_ns);
                                sink.emit(Event::BarrierLeave {
                                    epoch: inv,
                                    wait_ns,
                                });
                                if outcome == AwaitOutcome::Satisfied {
                                    // The predecessor's retire released this
                                    // condition wait.
                                    sink.emit(Event::Wake {
                                        edge: WakeEdge::Barrier,
                                        src_tid: cond.dep_tid,
                                        seq: cond.dep_iter,
                                    });
                                }
                            }
                            Msg::Run {
                                inv,
                                iter,
                                iter_num,
                            } => {
                                let mut executed = false;
                                if !draining && !abort.load(Ordering::Acquire) {
                                    let inject =
                                        match fault.task_start(inv as u32, iter as u64, tid) {
                                            Some(TaskFault::Delay(d)) => {
                                                sink.emit(Event::FaultInjected {
                                                    kind: FaultKind::Delay(d.as_micros() as u64),
                                                    epoch: inv as u32,
                                                    task: iter as u64,
                                                });
                                                std::thread::sleep(d);
                                                false
                                            }
                                            Some(TaskFault::Panic) => {
                                                sink.emit(Event::FaultInjected {
                                                    kind: FaultKind::WorkerPanic,
                                                    epoch: inv as u32,
                                                    task: iter as u64,
                                                });
                                                true
                                            }
                                            None => false,
                                        };
                                    // SPSC produce → consume: the scheduler's
                                    // enqueue is what this dispatch picks up.
                                    sink.emit(Event::Wake {
                                        edge: WakeEdge::Queue,
                                        src_tid: MANAGER_TID,
                                        seq: iter_num,
                                    });
                                    sink.emit(Event::TaskDispatch {
                                        epoch: inv as u32,
                                        task: iter as u64,
                                    });
                                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                                        if inject {
                                            panic!(
                                                "injected fault: worker panic at invocation {inv}, iteration {iter}"
                                            );
                                        }
                                        workload.execute_iteration(inv, iter, tid);
                                    }));
                                    match outcome {
                                        Ok(()) => executed = true,
                                        Err(_) => {
                                            // Record (don't abort): mark
                                            // this worker dead and let the
                                            // scheduler route around it so
                                            // live workers finish the
                                            // region.
                                            record(DomoreError::IterationPanicked { inv, iter });
                                            dead[tid].store(true, Ordering::Release);
                                            draining = true;
                                        }
                                    }
                                }
                                // Publish even when the iteration was skipped
                                // or panicked: dependents blocked on this
                                // iteration number must be released so the
                                // region drains.
                                board.publish(tid, iter_num);
                                if executed {
                                    stats.add_task();
                                    sink.emit(Event::TaskRetire {
                                        epoch: inv as u32,
                                        task: iter as u64,
                                    });
                                }
                            }
                            Msg::End => break,
                        }
                    }
                    collector.absorb(sink);
                }));
            }

            // ---- Scheduler (this thread, the executor's `local` role) ----
            // The body is contained so a panicking prologue / oracle cannot
            // strand the gang before the end tokens are sent. The sink
            // lives outside the unwind boundary so events emitted before a
            // scheduler panic survive into the trace.
            let mut scheduler = |producers: Vec<Producer<Msg>>| {
                let mut sched_sink = collector.sink(MANAGER_TID);
                let stats = metrics.stats();
                let sched = catch_unwind(AssertUnwindSafe(|| {
                    let mut writes = Vec::new();
                    let mut reads = Vec::new();
                    let mut addrs = Vec::new();
                    let mut conds = Vec::new();
                    // Per-worker message buffers, flushed with one batched
                    // enqueue (single tail publication each). Invariant: before
                    // a `Sync` naming `dep_tid` is buffered anywhere, pending
                    // messages for `dep_tid` are flushed — so by induction on
                    // enqueue order, every condition a worker can block on
                    // names a `Run` that is already in its owner's queue, and
                    // the region cannot deadlock on an unflushed dependency.
                    let mut pending: Vec<Vec<Msg>> = (0..num_workers)
                        .map(|_| Vec::with_capacity(SCHED_BATCH))
                        .collect();
                    // Buffers `conds` then the `Run` for one iteration,
                    // preserving the flush-before-`Sync` invariant above. Both
                    // the replayed and the recomputed path dispatch through
                    // here, so the two are message-for-message identical.
                    #[allow(clippy::too_many_arguments)]
                    fn dispatch(
                        stats: &RegionStats,
                        sink: &mut TraceSink,
                        pending: &mut [Vec<Msg>],
                        producers: &[Producer<Msg>],
                        tid: ThreadId,
                        inv: usize,
                        iter: usize,
                        iter_num: IterNum,
                        conds: &[SyncCondition],
                    ) {
                        sink.emit(Event::TaskAssign {
                            epoch: inv as u32,
                            task: iter as u64,
                            worker: tid,
                        });
                        for &cond in conds {
                            stats.add_sync_condition();
                            if cond.dep_tid != tid && !pending[cond.dep_tid].is_empty() {
                                producers[cond.dep_tid].produce_batch(&mut pending[cond.dep_tid]);
                            }
                            pending[tid].push(Msg::Sync {
                                cond,
                                inv: inv as u32,
                            });
                        }
                        pending[tid].push(Msg::Run {
                            inv,
                            iter,
                            iter_num,
                        });
                        if pending[tid].len() >= SCHED_BATCH {
                            producers[tid].produce_batch(&mut pending[tid]);
                        }
                    }
                    'invocations: for inv in 0..workload.num_invocations() {
                        if abort.load(Ordering::Acquire) {
                            break;
                        }
                        workload.prologue(inv);
                        stats.add_epoch();
                        sched_sink.emit(Event::EpochBegin { epoch: inv as u32 });
                        let iters = workload.num_iterations(inv);
                        let base = logic.next_iter_num();
                        // Memoization stands down while any worker is dead:
                        // rerouted assignments depend on *when* workers died,
                        // which the fingerprint cannot see.
                        let usable =
                            schedule_memo && !dead.iter().any(|d| d.load(Ordering::Acquire));
                        let mut iter = 0;
                        // Worker already assigned (policy consulted, reroute
                        // applied) to the iteration a replay diverged on; the
                        // recompute loop below must not consult the policy
                        // again for it.
                        let mut carried_tid = None;
                        if memo.begin_invocation(iters, base, usable) {
                            while iter < iters {
                                if abort.load(Ordering::Acquire) {
                                    break 'invocations;
                                }
                                writes.clear();
                                reads.clear();
                                workload.touched(inv, iter, &mut writes, &mut reads);
                                addrs.clear();
                                addrs.extend_from_slice(&writes);
                                addrs.extend_from_slice(&reads);
                                // The policy is consulted (and kept in step)
                                // during replay; `logic` is not, so its counter
                                // has not advanced — the preview is derived.
                                let mut tid =
                                    policy.assign(base + iter as u64, &addrs, num_workers);
                                if dead[tid].load(Ordering::Acquire) {
                                    match (1..num_workers)
                                        .map(|k| (tid + k) % num_workers)
                                        .find(|&t| !dead[t].load(Ordering::Acquire))
                                    {
                                        Some(live) => tid = live,
                                        None => {
                                            abort.store(true, Ordering::Release);
                                            break 'invocations;
                                        }
                                    }
                                }
                                match memo.replay_step(iter, &writes, &reads, tid) {
                                    ReplayStep::Match {
                                        tid,
                                        iter_num,
                                        conds,
                                    } => {
                                        dispatch(
                                            stats,
                                            &mut sched_sink,
                                            &mut pending,
                                            &producers,
                                            tid,
                                            inv,
                                            iter,
                                            iter_num,
                                            conds,
                                        );
                                        iter += 1;
                                    }
                                    ReplayStep::Diverged => {
                                        // Bring the shadow up to date for the
                                        // already-dispatched prefix. Its
                                        // conditions were emitted correctly
                                        // during replay (they depend only on
                                        // the start-of-invocation shadow and
                                        // the verified prefix), so they are
                                        // discarded here.
                                        for k in 0..iter {
                                            writes.clear();
                                            reads.clear();
                                            workload.touched(inv, k, &mut writes, &mut reads);
                                            conds.clear();
                                            let _ = logic.schedule_rw(
                                                memo.recorded_tid(k),
                                                &writes,
                                                &reads,
                                                &mut conds,
                                            );
                                        }
                                        carried_tid = Some(tid);
                                        break;
                                    }
                                }
                            }
                        }
                        while iter < iters {
                            if abort.load(Ordering::Acquire) {
                                break 'invocations;
                            }
                            writes.clear();
                            reads.clear();
                            workload.touched(inv, iter, &mut writes, &mut reads);
                            addrs.clear();
                            addrs.extend_from_slice(&writes);
                            addrs.extend_from_slice(&reads);
                            let preview = logic.next_iter_num();
                            let mut tid = match carried_tid.take() {
                                Some(t) => t,
                                None => policy.assign(preview, &addrs, num_workers),
                            };
                            // Route around dead workers: next live thread in id
                            // order. Rerouting happens *before* the scheduling
                            // logic runs, so every synchronization condition
                            // names the worker that will actually execute.
                            if dead[tid].load(Ordering::Acquire) {
                                match (1..num_workers)
                                    .map(|k| (tid + k) % num_workers)
                                    .find(|&t| !dead[t].load(Ordering::Acquire))
                                {
                                    Some(live) => tid = live,
                                    None => {
                                        // Every worker is dead: condemn the
                                        // region (the first panic is already
                                        // recorded) and stop scheduling.
                                        abort.store(true, Ordering::Release);
                                        break 'invocations;
                                    }
                                }
                            }
                            conds.clear();
                            let iter_num = logic.schedule_rw(tid, &writes, &reads, &mut conds);
                            debug_assert_eq!(iter_num, preview);
                            memo.record_step(&writes, &reads, tid, &conds);
                            dispatch(
                                stats,
                                &mut sched_sink,
                                &mut pending,
                                &producers,
                                tid,
                                inv,
                                iter,
                                iter_num,
                                &conds,
                            );
                            iter += 1;
                        }
                        if memo.end_invocation(&mut logic) {
                            stats.add_schedule_cache_hit();
                            sched_sink.emit(Event::ScheduleCacheHit { epoch: inv as u32 });
                        }
                        // Keep the pipeline warm across the (sequential)
                        // prologue of the next invocation.
                        for (tx, buf) in producers.iter().zip(pending.iter_mut()) {
                            if !buf.is_empty() {
                                tx.produce_batch(buf);
                            }
                        }
                        sched_sink.emit(Event::EpochEnd { epoch: inv as u32 });
                    }
                    for (tx, buf) in producers.iter().zip(pending.iter_mut()) {
                        if !buf.is_empty() {
                            tx.produce_batch(buf);
                        }
                    }
                }));
                collector.absorb(sched_sink);
                if sched.is_err() {
                    fail(DomoreError::SchedulerPanicked);
                }
                // Always send the end tokens — workers drain their queues even
                // under abort, so this cannot jam and every worker terminates.
                for tx in &producers {
                    tx.produce(Msg::End);
                }
            };
            let gang_stats = exec.run_gang(roles, Box::new(move || scheduler(producers)));
            if let Some(cell) = telemetry {
                cell.add_queue_wait(gang_stats.queue_wait_ns);
            }
        }

        let elapsed = start.elapsed();
        let trace = collector.finish();
        if let Some(err) = error.into_inner() {
            // Hard failure: deposit the trace with the telemetry cell so
            // the flight recorder can dump the window that led here.
            if let Some(cell) = telemetry {
                cell.fail(trace.as_ref());
            }
            return Err(err);
        }
        // The worker scope has joined: snapshots are exact per the
        // RegionStats ordering contract.
        let metrics = metrics.snapshot();
        if let Some(cell) = telemetry {
            cell.complete(0, false, trace.as_ref());
        }
        Ok(ExecutionReport {
            stats: metrics.stats,
            elapsed,
            num_workers,
            metrics,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LocalWrite;
    use crossinvoc_runtime::SharedSlice;

    /// Invocation k writes cell (i + k) % n for iteration i: shifting
    /// conflicts across invocations, heavy cross-invocation dependences.
    struct Rotating {
        data: SharedSlice<u64>,
        invocations: usize,
    }

    impl Rotating {
        fn new(n: usize, invocations: usize) -> Self {
            Self {
                data: SharedSlice::from_vec(vec![0; n]),
                invocations,
            }
        }
        fn cell(&self, inv: usize, iter: usize) -> usize {
            (iter + inv) % self.data.len()
        }
    }

    impl DomoreWorkload for Rotating {
        fn num_invocations(&self) -> usize {
            self.invocations
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            self.data.len()
        }
        fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
            out.push(self.cell(inv, iter));
        }
        fn execute_iteration(&self, inv: usize, iter: usize, _tid: ThreadId) {
            let cell = self.cell(inv, iter);
            // SAFETY: the runtime serializes conflicting iterations; each
            // iteration touches exactly the reported cell.
            unsafe { self.data.update(cell, |v| *v = v.wrapping_mul(31) + 1) };
        }
        fn address_space(&self) -> Option<usize> {
            Some(self.data.len())
        }
    }

    fn expected_rotating(n: usize, invocations: usize) -> Vec<u64> {
        let mut data = vec![0u64; n];
        for _ in 0..invocations {
            for v in data.iter_mut() {
                *v = v.wrapping_mul(31) + 1;
            }
        }
        data
    }

    #[test]
    fn matches_sequential_result_under_contention() {
        for workers in [1, 2, 3, 5] {
            let mut w = Rotating::new(17, 12);
            let report = DomoreRuntime::new(DomoreConfig::with_workers(workers))
                .execute(&w)
                .unwrap();
            assert_eq!(w.data.snapshot(), expected_rotating(17, 12));
            assert_eq!(report.stats.tasks, 17 * 12);
            assert_eq!(report.stats.epochs, 12);
        }
    }

    #[test]
    fn localwrite_policy_produces_no_sync_conditions_for_owned_cells() {
        // Same cell always maps to the same owner, so every cross-invocation
        // dependence stays within one worker: zero conditions.
        struct Fixed {
            data: SharedSlice<u64>,
        }
        impl DomoreWorkload for Fixed {
            fn num_invocations(&self) -> usize {
                8
            }
            fn num_iterations(&self, _inv: usize) -> usize {
                16
            }
            fn touched_addrs(&self, _inv: usize, iter: usize, out: &mut Vec<usize>) {
                out.push(iter);
            }
            fn execute_iteration(&self, _inv: usize, iter: usize, _tid: ThreadId) {
                unsafe { self.data.update(iter, |v| *v += 1) };
            }
            fn address_space(&self) -> Option<usize> {
                Some(16)
            }
        }
        let w = Fixed {
            data: SharedSlice::from_vec(vec![0; 16]),
        };
        let report = DomoreRuntime::new(DomoreConfig::with_workers(4))
            .with_policy(Box::new(LocalWrite::new(16)))
            .execute(&w)
            .unwrap();
        assert_eq!(report.stats.sync_conditions, 0);
        let mut w = w;
        assert!(w.data.snapshot().iter().all(|&v| v == 8));
    }

    #[test]
    fn round_robin_generates_conditions_for_repeated_cells() {
        let mut w = Rotating::new(8, 4);
        let report = DomoreRuntime::new(DomoreConfig::with_workers(4))
            .execute(&w)
            .unwrap();
        assert!(
            report.stats.sync_conditions > 0,
            "rotating cells across round-robin workers must conflict"
        );
        assert_eq!(w.data.snapshot(), expected_rotating(8, 4));
    }

    #[test]
    fn zero_workers_is_an_error() {
        let w = Rotating::new(4, 1);
        let err = DomoreRuntime::new(DomoreConfig::with_workers(0))
            .execute(&w)
            .unwrap_err();
        assert_eq!(err, DomoreError::NoWorkers);
        assert!(err.to_string().contains("at least one"));
    }

    #[test]
    fn small_queue_capacity_still_completes() {
        let mut w = Rotating::new(9, 6);
        DomoreRuntime::new(DomoreConfig::with_workers(3).queue_capacity(2))
            .execute(&w)
            .unwrap();
        assert_eq!(w.data.snapshot(), expected_rotating(9, 6));
    }

    /// Every invocation touches the identical address stream: iteration i
    /// writes cell i and reads its ring neighbours — the steady-state shape
    /// schedule memoization exists for.
    struct Steady {
        data: SharedSlice<u64>,
        invocations: usize,
    }

    impl DomoreWorkload for Steady {
        fn num_invocations(&self) -> usize {
            self.invocations
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            self.data.len()
        }
        fn touched_addrs(&self, _inv: usize, _iter: usize, _out: &mut Vec<usize>) {
            unreachable!("touched() is overridden");
        }
        fn touched(
            &self,
            _inv: usize,
            iter: usize,
            writes: &mut Vec<usize>,
            reads: &mut Vec<usize>,
        ) {
            let n = self.data.len();
            writes.push(iter);
            reads.push((iter + n - 1) % n);
            reads.push((iter + 1) % n);
        }
        fn execute_iteration(&self, _inv: usize, iter: usize, _tid: ThreadId) {
            unsafe { self.data.update(iter, |v| *v = v.wrapping_mul(31) + 1) };
        }
        fn address_space(&self) -> Option<usize> {
            Some(self.data.len())
        }
    }

    #[test]
    fn steady_invocations_replay_from_the_schedule_memo() {
        // 16 iterations round-robin over 4 workers: assignments are
        // shift-stable, so invocation 0 seeds the hash, 1 records the
        // matching candidate, and 2.. replay.
        let mut w = Steady {
            data: SharedSlice::from_vec(vec![0; 16]),
            invocations: 8,
        };
        let report = DomoreRuntime::new(DomoreConfig::with_workers(4))
            .execute(&w)
            .unwrap();
        assert_eq!(report.stats.schedule_cache_hits, 6);
        assert_eq!(w.data.snapshot(), expected_rotating(16, 8));
        assert_eq!(report.stats.tasks, 16 * 8);
    }

    #[test]
    fn schedule_memo_off_matches_memo_on() {
        let run = |memo: bool| {
            let mut w = Steady {
                data: SharedSlice::from_vec(vec![0; 12]),
                invocations: 6,
            };
            let report = DomoreRuntime::new(DomoreConfig::with_workers(3).schedule_memo(memo))
                .execute(&w)
                .unwrap();
            (w.data.snapshot(), report.stats)
        };
        let (on_data, on_stats) = run(true);
        let (off_data, off_stats) = run(false);
        assert_eq!(on_data, off_data);
        assert_eq!(on_stats.sync_conditions, off_stats.sync_conditions);
        assert_eq!(on_stats.tasks, off_stats.tasks);
        assert!(on_stats.schedule_cache_hits > 0);
        assert_eq!(off_stats.schedule_cache_hits, 0);
    }

    #[test]
    fn rotating_streams_never_hit_the_memo() {
        let mut w = Rotating::new(8, 6);
        let report = DomoreRuntime::new(DomoreConfig::with_workers(4))
            .execute(&w)
            .unwrap();
        assert_eq!(report.stats.schedule_cache_hits, 0);
        assert_eq!(w.data.snapshot(), expected_rotating(8, 6));
    }

    #[test]
    fn progress_board_condition_semantics() {
        let board = ProgressBoard::new(2);
        let cond = SyncCondition {
            dep_tid: 1,
            dep_iter: 3,
        };
        assert!(!board.satisfied(cond));
        board.publish(1, 2);
        assert!(!board.satisfied(cond), "iter 3 not yet finished");
        board.publish(1, 3);
        assert!(board.satisfied(cond));
    }

    #[test]
    fn empty_workload_reports_zero_tasks() {
        struct Empty;
        impl DomoreWorkload for Empty {
            fn num_invocations(&self) -> usize {
                0
            }
            fn num_iterations(&self, _inv: usize) -> usize {
                0
            }
            fn touched_addrs(&self, _inv: usize, _iter: usize, _out: &mut Vec<usize>) {}
            fn execute_iteration(&self, _inv: usize, _iter: usize, _tid: ThreadId) {}
        }
        let report = DomoreRuntime::new(DomoreConfig::with_workers(2))
            .execute(&Empty)
            .unwrap();
        assert_eq!(report.stats.tasks, 0);
        assert_eq!(report.stats.epochs, 0);
    }
}
