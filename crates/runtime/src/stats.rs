//! Execution statistics shared by the runtimes and the simulator.
//!
//! The evaluation chapter reports several derived quantities — number of
//! tasks, epochs and checking requests (Table 5.3), scheduler/worker ratio
//! (Table 5.2), barrier overhead percentage (Fig. 4.3). [`RegionStats`] is
//! the common container those experiments read out of any executor.
//!
//! # Ordering contract
//!
//! Increments use `Ordering::Relaxed`: each counter is independent and the
//! hot path must not pay for inter-counter ordering. That makes mid-run
//! reads ([the per-counter getters](RegionStats::tasks) and
//! [`RegionStats::summary`]) *approximate* — they may observe one counter
//! ahead of a causally-earlier one (e.g. a task counted whose epoch is not
//! yet). They are fine for progress displays and watchdogs, which is all
//! the engines use them for mid-run.
//!
//! Final reporting must instead call [`RegionStats::snapshot`] **after
//! joining every thread that writes the counters**. Thread join establishes
//! a happens-before edge covering all of the joined thread's writes, so the
//! snapshot is exact and mutually consistent; `snapshot()` additionally
//! loads with `Ordering::Acquire` so the contract holds for writers
//! quiesced by any other synchronizing release operation (a channel
//! handoff, an `Arc` drop) rather than a join.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters describing one parallel region's execution.
#[derive(Debug, Default)]
pub struct RegionStats {
    tasks: AtomicU64,
    epochs: AtomicU64,
    check_requests: AtomicU64,
    sync_conditions: AtomicU64,
    misspeculations: AtomicU64,
    checkpoints: AtomicU64,
    stalls: AtomicU64,
    checker_epoch_skips: AtomicU64,
    schedule_cache_hits: AtomicU64,
    elided_signatures: AtomicU64,
    elided_admits: AtomicU64,
    proven_accesses: AtomicU64,
}

macro_rules! counter {
    ($(#[$doc:meta])* $inc:ident, $get:ident, $field:ident) => {
        $(#[$doc])*
        pub fn $inc(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }

        /// Current value of the corresponding counter.
        pub fn $get(&self) -> u64 {
            self.$field.load(Ordering::Relaxed)
        }
    };
}

impl RegionStats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    counter!(
        /// Records completion of one task (inner-loop iteration).
        add_task, tasks, tasks
    );
    counter!(
        /// Records entry into one epoch (loop invocation).
        add_epoch, epochs, epochs
    );
    counter!(
        /// Records one signature-checking request sent to the checker.
        add_check_request, check_requests, check_requests
    );
    counter!(
        /// Records one synchronization condition produced by the scheduler.
        add_sync_condition, sync_conditions, sync_conditions
    );
    counter!(
        /// Records one detected misspeculation (rollback).
        add_misspeculation, misspeculations, misspeculations
    );
    counter!(
        /// Records one checkpoint taken.
        add_checkpoint, checkpoints, checkpoints
    );
    counter!(
        /// Records one worker stall on a synchronization condition or gate.
        add_stall, stalls, stalls
    );
    counter!(
        /// Records one invocation whose schedule was replayed from the
        /// cross-invocation memo instead of recomputed (DOMORE fast path).
        add_schedule_cache_hit, schedule_cache_hits, schedule_cache_hits
    );

    counter!(
        /// Records one task whose signature generation was skipped because
        /// static analysis proved its footprint conflict-free (SPECCROSS
        /// elision).
        add_elided_signature, elided_signatures, elided_signatures
    );
    counter!(
        /// Records one checker admission skipped for a statically-proven
        /// task (SPECCROSS elision).
        add_elided_admit, elided_admits, elided_admits
    );

    /// Records `n` speculative accesses executed under a static
    /// conflict-freedom proof (SPECCROSS elision). Bulk because workers
    /// count per task and fold in once.
    pub fn add_proven_accesses(&self, n: u64) {
        self.proven_accesses.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of the proven-access counter.
    pub fn proven_accesses(&self) -> u64 {
        self.proven_accesses.load(Ordering::Relaxed)
    }

    /// Records `n` whole-epoch log skips taken by the checker's
    /// aggregate-signature fast path (SPECCROSS). Bulk because the checker
    /// accumulates skips locally and folds them in at drain points.
    pub fn add_checker_epoch_skips(&self, n: u64) {
        self.checker_epoch_skips.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of the checker epoch-skip counter.
    pub fn checker_epoch_skips(&self) -> u64 {
        self.checker_epoch_skips.load(Ordering::Relaxed)
    }

    /// Approximate mid-run view of all counters (Relaxed loads).
    ///
    /// Counters may be mutually inconsistent while writer threads are still
    /// running; see the [module docs](self) for the ordering contract. For
    /// final reporting, use [`RegionStats::snapshot`] after join.
    pub fn summary(&self) -> StatsSummary {
        StatsSummary {
            tasks: self.tasks(),
            epochs: self.epochs(),
            check_requests: self.check_requests(),
            sync_conditions: self.sync_conditions(),
            misspeculations: self.misspeculations(),
            checkpoints: self.checkpoints(),
            stalls: self.stalls(),
            checker_epoch_skips: self.checker_epoch_skips(),
            schedule_cache_hits: self.schedule_cache_hits(),
            elided_signatures: self.elided_signatures(),
            elided_admits: self.elided_admits(),
            proven_accesses: self.proven_accesses(),
        }
    }

    /// Exact end-of-run snapshot.
    ///
    /// **Contract:** call only after every thread that increments these
    /// counters has been joined (or otherwise quiesced through a
    /// release-synchronizing operation). Under that contract the returned
    /// values are exact and mutually consistent; the loads use
    /// `Ordering::Acquire` to pair with non-join release edges. See the
    /// [module docs](self).
    pub fn snapshot(&self) -> StatsSummary {
        StatsSummary {
            tasks: self.tasks.load(Ordering::Acquire),
            epochs: self.epochs.load(Ordering::Acquire),
            check_requests: self.check_requests.load(Ordering::Acquire),
            sync_conditions: self.sync_conditions.load(Ordering::Acquire),
            misspeculations: self.misspeculations.load(Ordering::Acquire),
            checkpoints: self.checkpoints.load(Ordering::Acquire),
            stalls: self.stalls.load(Ordering::Acquire),
            checker_epoch_skips: self.checker_epoch_skips.load(Ordering::Acquire),
            schedule_cache_hits: self.schedule_cache_hits.load(Ordering::Acquire),
            elided_signatures: self.elided_signatures.load(Ordering::Acquire),
            elided_admits: self.elided_admits.load(Ordering::Acquire),
            proven_accesses: self.proven_accesses.load(Ordering::Acquire),
        }
    }
}

/// Plain-value snapshot of [`RegionStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSummary {
    /// Tasks (inner-loop iterations) executed.
    pub tasks: u64,
    /// Epochs (loop invocations) entered.
    pub epochs: u64,
    /// Checking requests sent to the checker thread.
    pub check_requests: u64,
    /// Synchronization conditions produced by the DOMORE scheduler.
    pub sync_conditions: u64,
    /// Misspeculations detected.
    pub misspeculations: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Worker stalls.
    pub stalls: u64,
    /// Whole-epoch checker log skips taken by the aggregate-signature fast
    /// path (SPECCROSS).
    pub checker_epoch_skips: u64,
    /// Invocations whose DOMORE schedule was replayed from the
    /// cross-invocation memo instead of recomputed.
    pub schedule_cache_hits: u64,
    /// Tasks whose signature generation was skipped under a static
    /// conflict-freedom proof (SPECCROSS elision).
    pub elided_signatures: u64,
    /// Checker admissions skipped for statically-proven tasks (SPECCROSS
    /// elision).
    pub elided_admits: u64,
    /// Speculative accesses executed under a static conflict-freedom proof
    /// (SPECCROSS elision).
    pub proven_accesses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_independently() {
        let s = RegionStats::new();
        s.add_task();
        s.add_task();
        s.add_epoch();
        s.add_check_request();
        s.add_sync_condition();
        s.add_misspeculation();
        s.add_checkpoint();
        s.add_stall();
        s.add_checker_epoch_skips(3);
        s.add_schedule_cache_hit();
        s.add_elided_signature();
        s.add_elided_admit();
        s.add_proven_accesses(5);
        let sum = s.summary();
        assert_eq!(sum.tasks, 2);
        assert_eq!(sum.epochs, 1);
        assert_eq!(sum.check_requests, 1);
        assert_eq!(sum.sync_conditions, 1);
        assert_eq!(sum.misspeculations, 1);
        assert_eq!(sum.checkpoints, 1);
        assert_eq!(sum.stalls, 1);
        assert_eq!(sum.checker_epoch_skips, 3);
        assert_eq!(sum.schedule_cache_hits, 1);
        assert_eq!(sum.elided_signatures, 1);
        assert_eq!(sum.elided_admits, 1);
        assert_eq!(sum.proven_accesses, 5);
    }

    #[test]
    fn summary_of_fresh_stats_is_zero() {
        assert_eq!(RegionStats::new().summary(), StatsSummary::default());
    }

    #[test]
    fn counters_are_thread_safe() {
        use std::sync::Arc;
        let s = Arc::new(RegionStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.add_task();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All writers joined: snapshot() is exact per the ordering contract.
        assert_eq!(s.snapshot().tasks, 4000);
        assert_eq!(s.tasks(), 4000);
    }

    #[test]
    fn snapshot_matches_summary_when_quiescent() {
        let s = RegionStats::new();
        s.add_task();
        s.add_epoch();
        s.add_stall();
        assert_eq!(s.snapshot(), s.summary());
    }
}
