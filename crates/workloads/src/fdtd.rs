//! FDTD — the PolyBench 2-D finite-difference time-domain kernel
//! (Table 5.1, Fig. 5.2(c)).
//!
//! Each timestep sweeps three field updates in sequence — `ey` from `hz`,
//! `ex` from `hz`, then `hz` from both electric fields — so one timestep
//! contributes *three* epochs, and cross-invocation dependences connect
//! consecutive sweeps through neighbouring rows.

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The FDTD workload model (row-granular addresses over three fields).
#[derive(Debug, Clone)]
pub struct Fdtd {
    rows: usize,
    steps: usize,
    seed: u64,
}

impl Fdtd {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            rows: scale.pick(20, 167),
            steps: scale.pick(12, 400),
            seed,
        }
    }

    fn ey(&self) -> usize {
        0
    }
    fn ex(&self) -> usize {
        self.rows
    }
    fn hz(&self) -> usize {
        2 * self.rows
    }
}

impl SimWorkload for Fdtd {
    fn num_invocations(&self) -> usize {
        3 * self.steps
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.rows
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        3_500 + splitmix64(self.seed ^ ((inv * 17 + iter) as u64)) % 700
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let up = iter.saturating_sub(1);
        match inv % 3 {
            0 => {
                // ey[r] ← hz[r-1], hz[r]
                out.push((self.hz() + up, AccessKind::Read));
                out.push((self.hz() + iter, AccessKind::Read));
                out.push((self.ey() + iter, AccessKind::Write));
            }
            1 => {
                // ex[r] ← hz[r] (column-shifted in the real kernel).
                out.push((self.hz() + iter, AccessKind::Read));
                out.push((self.ex() + iter, AccessKind::Write));
            }
            _ => {
                // hz[r] ← ey[r], ey[r+1], ex[r]
                let down = (iter + 1).min(self.rows - 1);
                out.push((self.ey() + iter, AccessKind::Read));
                out.push((self.ey() + down, AccessKind::Read));
                out.push((self.ex() + iter, AccessKind::Read));
                out.push((self.hz() + iter, AccessKind::Write));
            }
        }
    }

    fn address_space(&self) -> Option<usize> {
        Some(3 * self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_runtime::RangeSignature;
    use crossinvoc_speccross::prelude::*;
    use crossinvoc_speccross::SpecCrossEngine;

    #[test]
    fn three_epochs_per_timestep() {
        let f = Fdtd::new(Scale::Test, 1);
        assert_eq!(f.num_invocations(), 3 * 12);
    }

    #[test]
    fn sweeps_conflict_across_epochs() {
        let f = Fdtd::new(Scale::Test, 1);
        let p = profile_distance(&f, 6);
        let d = p.min_distance.expect("field chains must conflict");
        assert!(d <= 3 * f.rows as u64, "within a timestep, got {d}");
        assert!(p.conflicts > 0);
    }

    #[test]
    fn speccross_execution_matches_sequential() {
        let model = Fdtd::new(Scale::Test, 1);
        let d = profile_distance(&model, 6).min_distance;
        let kernel = AccessKernel::from_model(model);
        let expected = kernel.sequential_checksum();
        let report =
            SpecCrossEngine::<RangeSignature>::new(SpecConfig::with_workers(3).spec_distance(d))
                .execute(&kernel)
                .unwrap();
        assert_eq!(kernel.checksum(), expected);
        assert_eq!(report.stats.misspeculations, 0);
    }
}
