//! The pure DOMORE scheduler algorithm (Alg. 1 of the thesis).
//!
//! Given the accesses of the next iteration and the worker it was assigned
//! to, [`SchedulerLogic`] consults shadow memory and emits the
//! [`SyncCondition`]s the assigned worker must wait on before running the
//! iteration. The logic is deliberately free of threads and clocks: the real
//! runtime drives it from the scheduler thread, the duplicated-scheduler
//! variant replicates it on every worker, and the discrete-event simulator
//! replays it to compute idealized timelines — all three therefore make
//! *identical* synchronization decisions.
//!
//! Shadow entries distinguish the last *writer* from the *readers since
//! that write*: a new write must wait for the previous writer and all of
//! its readers; a new read waits only for the writer. Iterations that
//! merely share read data (the gather patterns of stencils and SPH
//! neighbourhoods) are therefore never serialized. The thesis' shadow
//! (§3.2.1) records a single last-accessor tuple — equivalent to treating
//! every access as a write — which [`SchedulerLogic::schedule`] preserves
//! for callers without read/write information.

use std::collections::HashMap;

use crossinvoc_runtime::{IterNum, ThreadId};

/// "Wait until worker `dep_tid` has finished combined iteration `dep_iter`."
///
/// This is the `(depId, depIterNum)` tuple of §3.2.2, forwarded from the
/// scheduler to a worker ahead of a conflicting iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncCondition {
    /// Worker that must make progress first.
    pub dep_tid: ThreadId,
    /// Combined iteration number that must have retired.
    pub dep_iter: IterNum,
}

/// Last accessor coordinates of one owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Owner {
    tid: ThreadId,
    iter: IterNum,
}

/// Per-address dependence state: the last writer plus every reader since.
#[derive(Debug, Clone, Default)]
struct RwEntry {
    writer: Option<Owner>,
    /// Latest read per worker since the last write (small: bounded by the
    /// worker count).
    readers: Vec<Owner>,
}

impl RwEntry {
    fn record_reader(&mut self, tid: ThreadId, iter: IterNum) {
        match self.readers.iter_mut().find(|r| r.tid == tid) {
            Some(r) => r.iter = r.iter.max(iter),
            None => self.readers.push(Owner { tid, iter }),
        }
    }
}

/// Address-indexed dependence state.
#[derive(Debug)]
enum RwShadow {
    Dense(Vec<RwEntry>),
    Sparse(HashMap<usize, RwEntry>),
}

impl RwShadow {
    fn entry(&mut self, addr: usize) -> &mut RwEntry {
        match self {
            RwShadow::Dense(v) => &mut v[addr],
            RwShadow::Sparse(m) => m.entry(addr).or_default(),
        }
    }

    fn clear(&mut self) {
        match self {
            RwShadow::Dense(v) => v.iter_mut().for_each(|e| *e = RwEntry::default()),
            RwShadow::Sparse(m) => m.clear(),
        }
    }
}

/// Shadow-memory-driven synchronization-condition generator.
///
/// One instance is owned by whichever agent plays the scheduler role. The
/// combined iteration counter (Fig. 3.5's global numbering) lives here so
/// callers cannot desynchronize it from the shadow state.
#[derive(Debug)]
pub struct SchedulerLogic {
    shadow: RwShadow,
    next_iter: IterNum,
}

impl SchedulerLogic {
    /// Creates logic with dense shadow memory covering `0..address_space`.
    pub fn with_dense_shadow(address_space: usize) -> Self {
        Self {
            shadow: RwShadow::Dense(vec![RwEntry::default(); address_space]),
            next_iter: 0,
        }
    }

    /// Creates logic with sparse shadow memory.
    pub fn with_sparse_shadow() -> Self {
        Self {
            shadow: RwShadow::Sparse(HashMap::new()),
            next_iter: 0,
        }
    }

    /// The combined iteration number the next call to
    /// [`schedule`](Self::schedule) will assign.
    pub fn next_iter_num(&self) -> IterNum {
        self.next_iter
    }

    /// Runs Alg. 1 for one iteration without read/write information: every
    /// address is treated as written (the thesis' single-tuple shadow).
    ///
    /// Returns the combined iteration number assigned to this iteration.
    pub fn schedule(
        &mut self,
        tid: ThreadId,
        addrs: &[usize],
        conditions: &mut Vec<SyncCondition>,
    ) -> IterNum {
        self.schedule_rw(tid, addrs, &[], conditions)
    }

    /// Runs Alg. 1 for one iteration with its write and read address sets.
    ///
    /// Appends to `conditions` one [`SyncCondition`] per dynamic dependence
    /// on a *different* worker — writes wait for the previous writer and
    /// every reader since; reads wait for the previous writer only.
    /// Dependences on the same worker need no condition (program order on
    /// that worker already serializes them, the `depTid != tid` test of
    /// Alg. 1), and duplicate conditions on one predecessor coalesce to the
    /// strongest. Returns the combined iteration number assigned.
    pub fn schedule_rw(
        &mut self,
        tid: ThreadId,
        writes: &[usize],
        reads: &[usize],
        conditions: &mut Vec<SyncCondition>,
    ) -> IterNum {
        let iter = self.next_iter;
        self.next_iter += 1;
        fn add(conditions: &mut Vec<SyncCondition>, tid: ThreadId, dep: Owner) {
            if dep.tid == tid {
                return;
            }
            match conditions.iter_mut().find(|c| c.dep_tid == dep.tid) {
                Some(c) => c.dep_iter = c.dep_iter.max(dep.iter),
                None => conditions.push(SyncCondition {
                    dep_tid: dep.tid,
                    dep_iter: dep.iter,
                }),
            }
        }
        for &addr in writes {
            let entry = self.shadow.entry(addr);
            if let Some(w) = entry.writer {
                add(conditions, tid, w);
            }
            for &r in entry.readers.iter() {
                add(conditions, tid, r);
            }
            entry.writer = Some(Owner { tid, iter });
            entry.readers.clear();
        }
        for &addr in reads {
            let entry = self.shadow.entry(addr);
            match entry.writer {
                // Reading our own write from this very iteration needs no
                // bookkeeping beyond the writer entry.
                Some(w) if w.tid == tid && w.iter == iter => {}
                Some(w) => {
                    add(conditions, tid, w);
                    entry.record_reader(tid, iter);
                }
                None => entry.record_reader(tid, iter),
            }
        }
        iter
    }

    /// Clears all dependence history (used between independent regions).
    pub fn reset(&mut self) {
        self.shadow.clear();
        self.next_iter = 0;
    }

    /// Advances the combined iteration counter by `n` without touching the
    /// shadow. Used by the cross-invocation schedule memo after replaying a
    /// whole invocation whose scheduling was skipped: the shadow is patched
    /// separately via `SchedulerLogic::apply_fresh`.
    pub fn skip_iterations(&mut self, n: u64) {
        self.next_iter += n;
    }

    /// Exports the *fresh* part of `addr`'s shadow entry — the writer and
    /// readers recorded at combined iteration `base` or later — with
    /// iteration numbers stored relative to `base`. Stale parts (set before
    /// `base`) are deliberately excluded: across identical invocations they
    /// do not shift with the iteration numbering, so a memo replay must
    /// leave them untouched.
    pub(crate) fn export_fresh(&mut self, addr: usize, base: IterNum) -> FreshState {
        let entry = self.shadow.entry(addr);
        FreshState {
            writer: entry
                .writer
                .filter(|w| w.iter >= base)
                .map(|w| (w.tid, w.iter - base)),
            readers: entry
                .readers
                .iter()
                .filter(|r| r.iter >= base)
                .map(|r| (r.tid, r.iter - base))
                .collect(),
        }
    }

    /// Applies a state exported by [`SchedulerLogic::export_fresh`] onto
    /// `addr` as if the recorded invocation had been rescheduled starting at
    /// combined iteration `base`: a fresh write replaces the whole entry
    /// (a write clears the reader list, exactly as
    /// [`SchedulerLogic::schedule_rw`] would), fresh reads max-merge over
    /// whatever is present, and stale writer/reader entries survive
    /// untouched.
    pub(crate) fn apply_fresh(&mut self, addr: usize, base: IterNum, fresh: &FreshState) {
        let entry = self.shadow.entry(addr);
        if let Some((tid, off)) = fresh.writer {
            entry.writer = Some(Owner {
                tid,
                iter: base + off,
            });
            entry.readers.clear();
        }
        for &(tid, off) in &fresh.readers {
            entry.record_reader(tid, base + off);
        }
    }
}

/// The fresh (current-invocation) slice of one address's shadow entry, with
/// iteration numbers relative to the invocation's base combined iteration
/// number. Produced and consumed by the schedule memo
/// ([`crate::memo::ScheduleMemo`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct FreshState {
    pub(crate) writer: Option<(ThreadId, u64)>,
    pub(crate) readers: Vec<(ThreadId, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(
        logic: &mut SchedulerLogic,
        tid: ThreadId,
        addrs: &[usize],
    ) -> (IterNum, Vec<SyncCondition>) {
        let mut conds = Vec::new();
        let iter = logic.schedule(tid, addrs, &mut conds);
        (iter, conds)
    }

    fn schedule_rw(
        logic: &mut SchedulerLogic,
        tid: ThreadId,
        writes: &[usize],
        reads: &[usize],
    ) -> (IterNum, Vec<SyncCondition>) {
        let mut conds = Vec::new();
        let iter = logic.schedule_rw(tid, writes, reads, &mut conds);
        (iter, conds)
    }

    #[test]
    fn independent_iterations_need_no_synchronization() {
        let mut logic = SchedulerLogic::with_dense_shadow(16);
        let (i0, c0) = schedule(&mut logic, 0, &[1]);
        let (i1, c1) = schedule(&mut logic, 1, &[2]);
        assert_eq!((i0, i1), (0, 1));
        assert!(c0.is_empty() && c1.is_empty());
    }

    #[test]
    fn cross_worker_conflict_yields_condition() {
        let mut logic = SchedulerLogic::with_dense_shadow(16);
        let _ = schedule(&mut logic, 0, &[5]);
        let (_, c) = schedule(&mut logic, 1, &[5]);
        assert_eq!(
            c,
            vec![SyncCondition {
                dep_tid: 0,
                dep_iter: 0
            }]
        );
    }

    #[test]
    fn same_worker_conflict_needs_no_condition() {
        let mut logic = SchedulerLogic::with_dense_shadow(16);
        let _ = schedule(&mut logic, 0, &[5]);
        let (_, c) = schedule(&mut logic, 0, &[5]);
        assert!(c.is_empty(), "program order already serializes");
    }

    #[test]
    fn conditions_coalesce_to_strongest_per_worker() {
        let mut logic = SchedulerLogic::with_dense_shadow(16);
        schedule(&mut logic, 0, &[1]); // iter 0 on worker 0
        schedule(&mut logic, 0, &[2]); // iter 1 on worker 0
                                       // Worker 1 touches both: must wait for worker 0's iter 1 only.
        let (_, c) = schedule(&mut logic, 1, &[1, 2]);
        assert_eq!(
            c,
            vec![SyncCondition {
                dep_tid: 0,
                dep_iter: 1
            }]
        );
    }

    #[test]
    fn condition_names_most_recent_writer_only() {
        let mut logic = SchedulerLogic::with_dense_shadow(16);
        schedule(&mut logic, 0, &[3]); // iter 0
        schedule(&mut logic, 1, &[3]); // iter 1 waits on worker 0
        let (_, c) = schedule(&mut logic, 2, &[3]); // iter 2
                                                    // Transitivity: waiting on worker 1/iter 1 implies worker 0/iter 0
                                                    // already retired (worker 1 waited for it).
        assert_eq!(
            c,
            vec![SyncCondition {
                dep_tid: 1,
                dep_iter: 1
            }]
        );
    }

    /// The walkthrough of Fig. 3.5 / §3.2.4: accesses A1, A3, A3, A2
    /// round-robin on two workers. The third iteration (worker 0, second
    /// invocation) must wait for worker 1's iteration 1; everything else is
    /// free.
    #[test]
    fn cg_walkthrough_matches_figure_3_5() {
        let mut logic = SchedulerLogic::with_dense_shadow(4);
        // Original invocation 1, iterations accessing A1 then A3.
        let (i, c) = schedule(&mut logic, 0, &[1]);
        assert_eq!((i, c.len()), (0, 0));
        let (i, c) = schedule(&mut logic, 1, &[3]);
        assert_eq!((i, c.len()), (1, 0));
        // Invocation 2, iteration accessing A3 again → depends on (T2, I2)
        // which in our zero-based numbering is (tid 1, iter 1).
        let (i, c) = schedule(&mut logic, 0, &[3]);
        assert_eq!(i, 2);
        assert_eq!(
            c,
            vec![SyncCondition {
                dep_tid: 1,
                dep_iter: 1
            }]
        );
        // Invocation 2, iteration accessing A2: independent.
        let (i, c) = schedule(&mut logic, 1, &[2]);
        assert_eq!((i, c.len()), (3, 0));
    }

    #[test]
    fn reset_clears_history_and_numbering() {
        let mut logic = SchedulerLogic::with_sparse_shadow();
        schedule(&mut logic, 0, &[7]);
        logic.reset();
        assert_eq!(logic.next_iter_num(), 0);
        let (_, c) = schedule(&mut logic, 1, &[7]);
        assert!(c.is_empty(), "history cleared");
    }

    #[test]
    fn empty_address_set_is_always_independent() {
        let mut logic = SchedulerLogic::with_dense_shadow(4);
        let (_, c) = schedule(&mut logic, 0, &[]);
        assert!(c.is_empty());
    }

    // ---- read/write-aware behaviour ----

    #[test]
    fn shared_reads_never_synchronize() {
        // The gather pattern: many workers read one cell; no conditions.
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        for tid in 0..4 {
            let (_, c) = schedule_rw(&mut logic, tid, &[], &[3]);
            assert!(c.is_empty(), "read-read must not serialize");
        }
    }

    #[test]
    fn read_waits_for_previous_writer() {
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        schedule_rw(&mut logic, 0, &[3], &[]);
        let (_, c) = schedule_rw(&mut logic, 1, &[], &[3]);
        assert_eq!(
            c,
            vec![SyncCondition {
                dep_tid: 0,
                dep_iter: 0
            }]
        );
    }

    #[test]
    fn write_waits_for_every_reader_since_the_last_write() {
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        schedule_rw(&mut logic, 0, &[3], &[]); // iter 0 writes
        schedule_rw(&mut logic, 1, &[], &[3]); // iter 1 reads
        schedule_rw(&mut logic, 2, &[], &[3]); // iter 2 reads
        let (_, mut c) = schedule_rw(&mut logic, 3, &[3], &[]); // iter 3 writes
        c.sort_by_key(|x| x.dep_tid);
        // Must wait for both readers (plus, conservatively, the writer they
        // are already ordered behind).
        assert_eq!(
            c,
            vec![
                SyncCondition {
                    dep_tid: 0,
                    dep_iter: 0
                },
                SyncCondition {
                    dep_tid: 1,
                    dep_iter: 1
                },
                SyncCondition {
                    dep_tid: 2,
                    dep_iter: 2
                },
            ]
        );
    }

    #[test]
    fn second_reader_still_waits_for_the_writer() {
        // W(t0) → R1(t1) → R2(t2): R2 must order against W even though R1
        // slid into the entry meanwhile.
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        schedule_rw(&mut logic, 0, &[3], &[]);
        schedule_rw(&mut logic, 1, &[], &[3]);
        let (_, c) = schedule_rw(&mut logic, 2, &[], &[3]);
        assert_eq!(
            c,
            vec![SyncCondition {
                dep_tid: 0,
                dep_iter: 0
            }]
        );
    }

    #[test]
    fn own_write_then_read_needs_nothing() {
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        let (_, c) = schedule_rw(&mut logic, 0, &[3], &[3]);
        assert!(c.is_empty());
        // A later writer on another worker waits only for the writer entry.
        let (_, c) = schedule_rw(&mut logic, 1, &[3], &[]);
        assert_eq!(
            c,
            vec![SyncCondition {
                dep_tid: 0,
                dep_iter: 0
            }]
        );
    }

    #[test]
    fn schedule_treats_everything_as_writes() {
        // Back-compat: the kind-less entry point reproduces the thesis'
        // conservative single-tuple shadow.
        let mut a = SchedulerLogic::with_dense_shadow(8);
        let mut b = SchedulerLogic::with_dense_shadow(8);
        let stream: &[(usize, &[usize])] = &[(0, &[1, 2]), (1, &[2]), (2, &[1])];
        for &(tid, addrs) in stream {
            let (_, ca) = schedule(&mut a, tid, addrs);
            let (_, cb) = schedule_rw(&mut b, tid, addrs, &[]);
            assert_eq!(ca, cb);
        }
    }
}
