//! `bench-suite`: the machine-readable scheduling-policy regression
//! harness behind `target/figures/BENCH_3.json`.
//!
//! For every DOMORE-evaluated Table 5.1 kernel the suite runs three
//! configurations — `seq`, `round_robin` dispatch, and `adaptive`
//! dispatch — and reports, per kernel:
//!
//! * **simulated speedups** from the discrete-event model (virtual time,
//!   deterministic: the models carry fixed seeds), which is what the
//!   acceptance criteria are evaluated against — this container has one
//!   core, so parallel wall-clock would measure noise, not scheduling;
//! * **median wall time** of real-thread executions of the same kernels
//!   through [`AccessKernel`] (checksum-validated against the sequential
//!   image every repetition);
//! * **queue-wait histograms** from the runtime's [`Metrics`] — the
//!   stall-wait distribution each policy produced.
//!
//! Full mode additionally gates the regression criteria: adaptive must
//! beat round-robin by ≥1.15× (virtual time) on at least one imbalanced
//! kernel at the configured worker count and may not regress any balanced
//! kernel by more than 5%. `--smoke` keeps every run at test scale and
//! skips the criteria (they are calibrated at figure scale) so CI stays
//! under its time budget; the JSON is still written and validated.
//!
//! With `--fastpath` the suite instead produces
//! `target/figures/BENCH_5.json`, the regression gate for the two
//! serial-bottleneck fast paths this codebase layers on the thesis
//! runtimes:
//!
//! * **checker epoch-summary pruning** — a clustered-access SPECCROSS
//!   workload is simulated with the per-epoch aggregate fast path on and
//!   off; full mode requires the per-admitted-task signature-comparison
//!   count to drop by ≥5× and the critical path's checker-latency share
//!   to shrink strictly;
//! * **cross-invocation schedule memoization** — the periodic DOMORE
//!   kernels (JACOBI's ping-pong grids, FDTD's three-sweep cycle) are
//!   simulated with the schedule memo; full mode requires a ≥90%
//!   schedule-cache hit rate on each.
//!
//! With `--shards` the suite produces `target/figures/BENCH_7.json`, the
//! regression gate for the sharded checker: the same clustered SPECCROSS
//! workload is simulated with the checker partitioned into 1, 2, 4 and 8
//! address-range shards. Every shard count must report the verdict stream
//! of the single checker (misspeculations, admitted tasks, check
//! requests), and in full mode the best sharded configuration must cut
//! the checker-wait critical-path share below `0.9738×` the single-shard
//! (BENCH_5 baseline) share.
//!
//! With `--regions` the suite produces `target/figures/BENCH_8.json`, the
//! region-server saturation gate: a mixed batch of independent SPECCROSS
//! and DOMORE regions is pushed through one shared
//! [`WorkerPool`](crossinvoc_runtime::pool::WorkerPool) via the
//! [`RegionServer`]. Three criteria, all
//! deterministic and therefore evaluated in smoke mode too:
//!
//! * **identity** — every region's result digest (tasks, epochs, verdict
//!   stream, final cells) through the shared pool is byte-identical to its
//!   solo region-at-a-time run;
//! * **throughput** — the pooled makespan, replayed in virtual time by the
//!   FIFO gang-admission model ([`crossinvoc_sim::server`]; this container
//!   has one core, so wall clock would measure noise), must be strictly
//!   below region-at-a-time execution;
//! * **isolation** — rerunning the batch with region 0 under a worker-panic
//!   fault plan leaves every neighbour's digest (including its verdict
//!   stream) byte-identical to solo, while region 0 itself still completes
//!   with the fault contained.
//!
//! With `--telemetry` the suite produces `target/figures/BENCH_9.json`,
//! the live-telemetry-plane gate over the BENCH_8 region batch (see
//! `docs/OBSERVABILITY.md`). Four criteria, all evaluated in smoke mode:
//!
//! * **overhead** — the batch rerun on CPU-heavy spin regions with the
//!   registry attached must keep ≥ `0.97×` the telemetry-off throughput
//!   (best-of-N wall time, arms interleaved so frequency drift cancels);
//! * **consistency** — after the joins, each region's registry snapshot row
//!   must equal the engine report's final `MetricsSummary` exactly (the
//!   engines alias the registry cell's counters, so live snapshots and the
//!   final report read the same memory);
//! * **flight** — a worker-panic fault plan on region 1 must produce
//!   exactly one flight-recorder dump, trigger `fault`, whose JSONL
//!   round-trips through the trace parser with exact drop accounting;
//! * **identity** — telemetry-on region digests (verdict streams included)
//!   must be byte-identical to telemetry-off.
//!
//! The run also writes `BENCH_9.snapshots.jsonl` (wire-schema snapshots
//! for `server-stats`) and `BENCH_9.prom` (Prometheus text exposition).
//!
//! With `--elide` the suite produces `target/figures/BENCH_10.json`, the
//! static-check-elision gate (see `docs/CHECKER.md` § Static elision).
//! Three criteria:
//!
//! * **transparency** — every Table 5.1 registry kernel, wrapped in the
//!   bench-side disjointness oracle (an invocation is proven iff no
//!   address it touches is written by a different invocation — the same
//!   conservative pair-conflict rule `pir::elide` applies to affine
//!   programs), must leave a memory digest on real threads with elision
//!   on that is byte-identical to elision off and to the sequential
//!   image, and an identical simulated verdict stream (misspeculations,
//!   tasks, degraded) with check requests only ever shrinking; evaluated
//!   in smoke mode too (the sweep is deterministic at test scale);
//! * **pruning** — on the mixed proven/unproven workload (even epochs the
//!   clustered shape static analysis proves, odd epochs scattered inside
//!   a private block — disjoint in fact, indirect in form), the combined
//!   summaries+elision comparisons-per-admit reduction over the bare
//!   checker must beat the `9.19×` epoch-summary baseline BENCH_5
//!   measured (full mode);
//! * **critical path** — elision must cut the mixed workload's
//!   checker-wait critical-path share below `0.8545×` the elide-off
//!   share — the factor the best BENCH_7 shard sweep achieved (full
//!   mode). The fully-proven clustered workload must additionally file
//!   **zero** check requests with elision on.
//!
//! ```text
//! bench-suite [--smoke] [--out PATH] [--workers N] [--reps N]
//! bench-suite --fastpath [--smoke] [--out PATH] [--workers N]
//! bench-suite --shards [--smoke] [--out PATH]
//! bench-suite --regions [--smoke] [--out PATH]
//! bench-suite --telemetry [--smoke] [--out PATH]
//! bench-suite --elide [--smoke] [--out PATH]
//! bench-suite --validate PATH   # parse an existing BENCH_3/5/7/8/9/10 report
//! ```
//!
//! `--validate` dispatches on the report's `schema` field, so one CI step
//! checks any artifact. Exit status is nonzero on panic, checksum
//! mismatch, malformed JSON, or failed criteria.
//!
//! [`AccessKernel`]: crossinvoc_workloads::AccessKernel
//! [`Metrics`]: crossinvoc_runtime::metrics::Metrics

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossinvoc::server::{RegionReport, RegionServer};
use crossinvoc_bench::json::{self, Json};
use crossinvoc_bench::{domore_policy, out_dir};
use crossinvoc_domore::prelude::*;
use crossinvoc_domore::runtime::ExecutionReport;
use crossinvoc_runtime::fault::FaultPlan;
use crossinvoc_runtime::metrics::HistogramSummary;
use crossinvoc_runtime::signature::{AccessKind, RangeSignature};
use crossinvoc_runtime::telemetry::{
    FlightRecorder, RegionState, RegistrySnapshot, ServerRegistry,
};
use crossinvoc_runtime::trace::Trace;
use crossinvoc_runtime::ThreadId;
use crossinvoc_runtime::{critical_path, what_if, PathCategory, TraceReport, WakeEdge};
use crossinvoc_sim::prelude::*;
use crossinvoc_speccross::engine::{SpecConfig, SpecCrossEngine, SpecReport};
use crossinvoc_speccross::workload::{AccessRecorder, SpecWorkload};
use crossinvoc_workloads::{registry, AccessKernel, BenchmarkInfo, Scale};

/// Minimum virtual-time win adaptive must show over round-robin on at
/// least one imbalanced kernel (full mode).
const WIN_THRESHOLD: f64 = 1.15;
/// Maximum virtual-time regression tolerated on each balanced kernel.
const BALANCED_TOLERANCE: f64 = 0.95;
/// Minimum reduction of signature comparisons per admitted task the
/// epoch-summary fast path must show on the clustered workload (BENCH_5,
/// full mode).
const PRUNING_THRESHOLD: f64 = 5.0;
/// Minimum schedule-cache hit rate on each periodic DOMORE kernel
/// (BENCH_5, full mode).
const HIT_RATE_THRESHOLD: f64 = 0.90;
/// Maximum checker-wait critical-path share the best sharded checker may
/// report, as a fraction of the single-shard share (BENCH_7, full mode).
const SHARD_SHARE_FACTOR: f64 = 0.9738;
/// Shard counts the BENCH_7 suite sweeps; the leading 1 is the baseline.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// BENCH_5's measured epoch-summary pruning ratio; the combined
/// summaries+elision comparisons-per-admit reduction on the mixed
/// workload must beat it (BENCH_10, full mode).
const ELIDE_PRUNING_BASELINE: f64 = 9.19;
/// The checker-wait share factor the best BENCH_7 shard sweep achieved;
/// elision's share factor on the mixed workload must land strictly below
/// it (BENCH_10, full mode).
const ELIDE_SHARE_FACTOR: f64 = 0.8545;

struct Args {
    smoke: bool,
    fastpath: bool,
    shards: bool,
    regions: bool,
    telemetry: bool,
    elide: bool,
    out: PathBuf,
    workers: usize,
    reps: usize,
    validate: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        fastpath: false,
        shards: false,
        regions: false,
        telemetry: false,
        elide: false,
        out: PathBuf::new(), // resolved after the mode flags are known
        workers: 8,
        reps: 0, // resolved after --smoke is known
        validate: None,
    };
    let mut reps: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--fastpath" => args.fastpath = true,
            "--shards" => args.shards = true,
            "--regions" => args.regions = true,
            "--telemetry" => args.telemetry = true,
            "--elide" => args.elide = true,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--reps" => {
                reps = Some(
                    value("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?,
                )
            }
            "--validate" => args.validate = Some(PathBuf::from(value("--validate")?)),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    args.reps = reps.unwrap_or(if args.smoke { 1 } else { 5 });
    if [
        args.fastpath,
        args.shards,
        args.regions,
        args.telemetry,
        args.elide,
    ]
    .iter()
    .filter(|&&f| f)
    .count()
        > 1
    {
        return Err(
            "--fastpath, --shards, --regions, --telemetry and --elide are mutually exclusive"
                .into(),
        );
    }
    let default_name = if args.elide {
        "BENCH_10.json"
    } else if args.telemetry {
        "BENCH_9.json"
    } else if args.regions {
        "BENCH_8.json"
    } else if args.shards {
        "BENCH_7.json"
    } else if args.fastpath {
        "BENCH_5.json"
    } else {
        "BENCH_3.json"
    };
    args.out = out.unwrap_or_else(|| out_dir().join(default_name));
    if args.workers == 0 || args.reps == 0 {
        return Err("--workers and --reps must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.validate {
        return match std::fs::read_to_string(path) {
            Ok(text) => match validate_report(&text) {
                Ok(desc) => {
                    println!("{}: {desc}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{}: invalid: {e}", path.display());
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }
    if args.elide {
        run_elide(&args)
    } else if args.telemetry {
        run_telemetry(&args)
    } else if args.regions {
        run_regions(&args)
    } else if args.shards {
        run_shards(&args)
    } else if args.fastpath {
        run_fastpath(&args)
    } else {
        run_suite(&args)
    }
}

/// One kernel's simulated timings for one dispatch policy.
struct SimRow {
    dispatch: Dispatch,
    total_ns: u64,
    speedup_vs_seq: f64,
    sync_conditions: u64,
    stalls: u64,
}

/// One kernel's real-thread timings for one configuration.
struct RealRow {
    name: &'static str,
    wall_ns: Vec<u64>,
    speedup_vs_seq: f64,
    stall_wait: Option<HistogramSummary>,
}

struct KernelReport {
    name: &'static str,
    imbalanced: bool,
    sim_scale: Scale,
    sim_seq_ns: u64,
    sim: Vec<SimRow>,
    real: Vec<RealRow>,
}

impl KernelReport {
    fn sim_ratio(&self) -> f64 {
        let rr = self.sim.iter().find(|r| r.dispatch == Dispatch::RoundRobin);
        let ad = self.sim.iter().find(|r| r.dispatch == Dispatch::Adaptive);
        match (rr, ad) {
            (Some(rr), Some(ad)) => rr.total_ns as f64 / ad.total_ns as f64,
            _ => 1.0,
        }
    }
}

fn median(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

fn run_suite(args: &Args) -> ExitCode {
    let sim_scale = if args.smoke {
        Scale::Test
    } else {
        Scale::Figure
    };
    let cost = CostModel::default();
    let kernels: Vec<BenchmarkInfo> = registry().into_iter().filter(|b| b.domore).collect();
    let mut reports = Vec::new();
    let suite_start = Instant::now();

    for info in &kernels {
        println!("[{}] simulating at {sim_scale:?} scale", info.name);
        let model = info.model(sim_scale);
        let seq_ns = sequential(model.as_ref(), &cost).total_ns;
        let mut sim = Vec::new();
        for dispatch in [Dispatch::RoundRobin, Dispatch::Adaptive] {
            let mut policy = dispatch.policy();
            let r = crossinvoc_sim::domore(model.as_ref(), args.workers, policy.as_mut(), &cost);
            sim.push(SimRow {
                dispatch,
                total_ns: r.total_ns,
                speedup_vs_seq: r.speedup_over(seq_ns),
                sync_conditions: r.stats.sync_conditions,
                stalls: r.stats.stalls,
            });
        }

        // Real threads always run the test-scale kernel: wall time on this
        // host measures harness overhead, not parallel speedup, so small
        // checksum-validated runs are the honest configuration.
        println!(
            "[{}] executing on real threads ({} reps)",
            info.name, args.reps
        );
        let kernel = AccessKernel::from_model(info.model(Scale::Test));
        let expected = kernel.sequential_checksum();
        let mut real = Vec::new();

        let mut seq_walls = Vec::with_capacity(args.reps);
        for _ in 0..args.reps {
            kernel.reset();
            let t = Instant::now();
            for inv in 0..DomoreWorkload::num_invocations(&kernel) {
                for iter in 0..DomoreWorkload::num_iterations(&kernel, inv) {
                    kernel.execute_iteration(inv, iter, 0);
                }
            }
            seq_walls.push(t.elapsed().as_nanos() as u64);
            if kernel.checksum() != expected {
                eprintln!("[{}] sequential checksum mismatch", info.name);
                return ExitCode::FAILURE;
            }
        }
        let seq_median = median(&seq_walls).max(1);
        real.push(RealRow {
            name: "seq",
            wall_ns: seq_walls,
            speedup_vs_seq: 1.0,
            stall_wait: None,
        });

        for dispatch in [Dispatch::RoundRobin, Dispatch::Adaptive] {
            let mut walls = Vec::with_capacity(args.reps);
            let mut stall_wait = None;
            for _ in 0..args.reps {
                kernel.reset();
                let t = Instant::now();
                let report = DomoreRuntime::new(DomoreConfig::with_workers(args.workers))
                    .with_dispatch(dispatch)
                    .execute(&kernel);
                walls.push(t.elapsed().as_nanos() as u64);
                let report = match report {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("[{}] {} run failed: {e}", info.name, dispatch.name());
                        return ExitCode::FAILURE;
                    }
                };
                if kernel.checksum() != expected {
                    eprintln!(
                        "[{}] checksum mismatch under {} dispatch",
                        info.name,
                        dispatch.name()
                    );
                    return ExitCode::FAILURE;
                }
                stall_wait = Some(report.metrics.stall_wait);
            }
            real.push(RealRow {
                name: dispatch.name(),
                speedup_vs_seq: seq_median as f64 / median(&walls).max(1) as f64,
                wall_ns: walls,
                stall_wait,
            });
        }
        kernel.reset();

        reports.push(KernelReport {
            name: info.name,
            imbalanced: info.imbalanced(),
            sim_scale,
            sim_seq_ns: seq_ns,
            sim,
            real,
        });
    }

    // Criteria (full mode only: smoke runs at test scale, where the models
    // are too small for the calibrated thresholds).
    let best_win = reports
        .iter()
        .filter(|r| r.imbalanced)
        .map(|r| (r.name, r.sim_ratio()))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    let worst_balanced = reports
        .iter()
        .filter(|r| !r.imbalanced)
        .map(|r| (r.name, r.sim_ratio()))
        .min_by(|a, b| a.1.total_cmp(&b.1));
    let pass = !args.smoke
        && best_win.is_some_and(|(_, w)| w >= WIN_THRESHOLD)
        && worst_balanced.is_none_or(|(_, w)| w >= BALANCED_TOLERANCE);

    let json = render_json(args, &reports, best_win, worst_balanced, pass);
    if let Err(e) = std::fs::create_dir_all(args.out.parent().unwrap_or(&args.out)) {
        eprintln!("bench-suite: creating output directory: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("bench-suite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    // Self-check: the file we just wrote must parse. A malformed report is
    // a bug in this harness and must fail the run (and the CI step).
    if let Err(e) = validate_report(&json) {
        eprintln!("bench-suite: produced malformed JSON: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "[wrote {}] {} kernels in {:.1}s",
        args.out.display(),
        reports.len(),
        suite_start.elapsed().as_secs_f64()
    );
    for r in &reports {
        println!(
            "  {:<16} adaptive/round_robin (virtual) = {:.3}{}",
            r.name,
            r.sim_ratio(),
            if r.imbalanced { "  [imbalanced]" } else { "" }
        );
    }
    if args.smoke {
        println!("smoke mode: criteria not evaluated (test-scale models)");
        return ExitCode::SUCCESS;
    }
    if let Some((name, win)) = best_win {
        println!("best imbalanced win: {win:.3} on {name} (need ≥ {WIN_THRESHOLD})");
    }
    if let Some((name, worst)) = worst_balanced {
        println!("worst balanced ratio: {worst:.3} on {name} (need ≥ {BALANCED_TOLERANCE})");
    }
    if pass {
        println!("criteria: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("criteria: FAIL");
        ExitCode::FAILURE
    }
}

// ---- BENCH_5: the fast-path regression suite ----

/// The clustered-access SPECCROSS workload of the BENCH_5 pruning
/// criterion: task `t` of epoch `e` writes cell `e * tasks + t`, so every
/// epoch's signature aggregate is disjoint from every other epoch's — the
/// shape the per-epoch aggregate test prunes best — while task costs are
/// staggered (`500 + (iter % 5) * 1000` ns) so admissions from many
/// epochs are in flight at once and the checker actually faces deep logs.
struct Clustered {
    epochs: usize,
    tasks: usize,
    /// Whether every invocation carries the static conflict-freedom
    /// verdict. The cluster shape is exactly the `E[trip·t + i]` family
    /// `pir::elide` proves, so BENCH_10 runs this workload proven; the
    /// BENCH_5/7 suites keep it on the full check path.
    proven: bool,
}

impl SimWorkload for Clustered {
    fn num_invocations(&self) -> usize {
        self.epochs
    }
    fn num_iterations(&self, _inv: usize) -> usize {
        self.tasks
    }
    fn iteration_cost(&self, _inv: usize, iter: usize) -> u64 {
        500 + (iter % 5) as u64 * 1000
    }
    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        out.push((inv * self.tasks + iter, AccessKind::Write));
    }
    fn address_space(&self) -> Option<usize> {
        Some(self.epochs * self.tasks)
    }
    fn invocation_is_proven(&self, _inv: usize) -> bool {
        self.proven
    }
}

/// The mixed proven/unproven workload of the BENCH_10 elision criteria:
/// most epochs are the clustered shape static analysis proves (task `t`
/// of epoch `e` writes cell `e·tasks + t`); every `unproven_every`-th
/// epoch scatters its writes through a coprime permutation of the same
/// epoch-private block — disjoint in fact, indirect in form, so a sound
/// static analysis must keep it on the full admission path. Task costs
/// carry the BENCH_5 stagger so admissions from many epochs are in
/// flight at once.
struct MixedElide {
    epochs: usize,
    tasks: usize,
    /// Period of the unproven epochs (`inv % unproven_every == 0` stays
    /// on the full check path; everything else is proven).
    unproven_every: usize,
}

impl MixedElide {
    fn proven(&self, inv: usize) -> bool {
        inv % self.unproven_every != 0
    }
}

impl SimWorkload for MixedElide {
    fn num_invocations(&self) -> usize {
        self.epochs
    }
    fn num_iterations(&self, _inv: usize) -> usize {
        self.tasks
    }
    fn iteration_cost(&self, _inv: usize, iter: usize) -> u64 {
        500 + (iter % 5) as u64 * 1000
    }
    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let slot = if self.proven(inv) {
            iter
        } else {
            (iter * 7 + inv) % self.tasks
        };
        out.push((inv * self.tasks + slot, AccessKind::Write));
    }
    fn address_space(&self) -> Option<usize> {
        Some(self.epochs * self.tasks)
    }
    fn invocation_is_proven(&self, inv: usize) -> bool {
        self.proven(inv)
    }
}

/// One traced clustered run's checker-side measurements.
struct CheckerSide {
    total_ns: u64,
    check_requests: u64,
    comparisons: u64,
    epoch_skips: u64,
    /// Admissions the static-elision fast path skipped (zero unless the
    /// run enabled elision on a workload with proven invocations).
    elided_admits: u64,
    /// Verdict stream of the run: misspeculation count and admitted
    /// tasks. BENCH_7 requires these to be shard-count-invariant.
    misspeculations: u64,
    tasks: u64,
    /// Fraction of the critical path spent waiting on the checker: the
    /// checkpoint-drain/verdict categories plus the SPSC stalls, which on
    /// this trace are exclusively workers' check requests sitting in the
    /// ring while the checker scans signatures (the speccross simulator
    /// emits queue wakes only at checker pickups).
    checker_share: f64,
    /// `what_if` speedup from zeroing the checker's pickup and verdict
    /// wake edges — how much faster the run would finish were signature
    /// checking free.
    zero_checker_speedup: f64,
}

fn checker_side<W: SimWorkload>(
    w: &W,
    threads: usize,
    checkpoint_every: usize,
    summaries: bool,
    shards: usize,
    elide: bool,
    cost: &CostModel,
) -> CheckerSide {
    let params = SpecSimParams::with_threads(threads)
        .trace(1 << 17)
        .checkpoint_every(checkpoint_every)
        .epoch_summaries(summaries)
        .checker_shards(shards)
        .elide(elide);
    let r = crossinvoc_sim::speccross(w, &params, cost);
    let trace = r.trace.as_ref().expect("tracing was requested");
    let report = TraceReport::from_trace(trace);
    let crit = critical_path(trace);
    let total = crit.attribution.total().max(1);
    let waiting_on_checker = crit.attribution.get(PathCategory::CheckerLatency)
        + crit.attribution.get(PathCategory::SpscStall);
    CheckerSide {
        total_ns: r.total_ns,
        check_requests: r.stats.check_requests,
        comparisons: report.checker_comparisons,
        epoch_skips: report.checker_epoch_skips,
        elided_admits: r.stats.elided_admits,
        misspeculations: r.stats.misspeculations,
        tasks: r.stats.tasks,
        checker_share: waiting_on_checker as f64 / total as f64,
        zero_checker_speedup: what_if(trace, &[WakeEdge::Queue, WakeEdge::Checker])
            .predicted_speedup(),
    }
}

impl CheckerSide {
    fn comparisons_per_admit(&self) -> f64 {
        self.comparisons as f64 / self.check_requests.max(1) as f64
    }
}

/// One periodic kernel's schedule-memo measurements.
struct MemoRow {
    name: &'static str,
    invocations: u64,
    cache_hits: u64,
    memo_ns: u64,
    no_memo_ns: u64,
}

impl MemoRow {
    fn hit_rate(&self) -> f64 {
        self.cache_hits as f64 / self.invocations.max(1) as f64
    }
}

fn memo_row(name: &'static str, scale: Scale, workers: usize, cost: &CostModel) -> MemoRow {
    let info = crossinvoc_workloads::registry::by_name(name);
    let model = info.model(scale);
    let run = |memo: bool| {
        let mut policy = domore_policy(&info, scale);
        domore_configured(model.as_ref(), workers, policy.as_mut(), cost, None, memo)
    };
    let with_memo = run(true);
    let without = run(false);
    MemoRow {
        name,
        invocations: model.num_invocations() as u64,
        cache_hits: with_memo.stats.schedule_cache_hits,
        memo_ns: with_memo.total_ns,
        no_memo_ns: without.total_ns,
    }
}

fn run_fastpath(args: &Args) -> ExitCode {
    let scale = if args.smoke {
        Scale::Test
    } else {
        Scale::Figure
    };
    let cost = CostModel::default();
    let suite_start = Instant::now();

    // The pruning shape needs enough concurrent cross-epoch candidates for
    // aggregates to matter: thread count, not --workers, sets that, so the
    // clustered run has its own (documented) configuration.
    // Checkpoint rendezvous drain the checker, which is how its service
    // time (summaries on vs off) reaches the critical path.
    let (epochs, tasks, threads, ckpt) = if args.smoke {
        (12, 8, 8, 4)
    } else {
        (60, 32, 32, 10)
    };
    let w = Clustered {
        epochs,
        tasks,
        proven: false,
    };
    println!(
        "[clustered] {epochs} epochs x {tasks} tasks on {threads} threads, checkpoint every {ckpt}"
    );
    let on = checker_side(&w, threads, ckpt, true, 1, false, &cost);
    let off = checker_side(&w, threads, ckpt, false, 1, false, &cost);
    let pruning_ratio =
        off.comparisons_per_admit() / on.comparisons_per_admit().max(f64::MIN_POSITIVE);

    println!(
        "[memo] JACOBI + FDTD at {scale:?} scale, {} workers",
        args.workers
    );
    let memo_rows = [
        memo_row("JACOBI", scale, args.workers, &cost),
        memo_row("FDTD", scale, args.workers, &cost),
    ];
    let worst_hit_rate = memo_rows
        .iter()
        .map(MemoRow::hit_rate)
        .fold(f64::INFINITY, f64::min);

    let pass = !args.smoke
        && pruning_ratio >= PRUNING_THRESHOLD
        && worst_hit_rate >= HIT_RATE_THRESHOLD
        && on.checker_share < off.checker_share;

    let json = render_fastpath_json(
        args,
        &on,
        &off,
        pruning_ratio,
        &memo_rows,
        epochs,
        tasks,
        threads,
        pass,
    );
    if let Err(e) = std::fs::create_dir_all(args.out.parent().unwrap_or(&args.out)) {
        eprintln!("bench-suite: creating output directory: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("bench-suite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate_report(&json) {
        eprintln!("bench-suite: produced malformed JSON: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "[wrote {}] in {:.1}s",
        args.out.display(),
        suite_start.elapsed().as_secs_f64()
    );
    println!(
        "  comparisons/admit: {:.2} with summaries, {:.2} without  (ratio {:.2})",
        on.comparisons_per_admit(),
        off.comparisons_per_admit(),
        pruning_ratio
    );
    println!(
        "  checker-wait critical-path share: {:.4} with summaries, {:.4} without \
         (what-if free checks: {:.3}x vs {:.3}x)",
        on.checker_share, off.checker_share, on.zero_checker_speedup, off.zero_checker_speedup
    );
    for row in &memo_rows {
        println!(
            "  {:<8} schedule-cache hit rate {:.3} ({}/{} invocations), {} -> {} ns",
            row.name,
            row.hit_rate(),
            row.cache_hits,
            row.invocations,
            row.no_memo_ns,
            row.memo_ns
        );
    }
    if args.smoke {
        println!("smoke mode: criteria not evaluated (test-scale models)");
        return ExitCode::SUCCESS;
    }
    println!(
        "pruning ratio {pruning_ratio:.2} (need >= {PRUNING_THRESHOLD}), worst hit rate \
         {worst_hit_rate:.3} (need >= {HIT_RATE_THRESHOLD}), checker share shrank: {}",
        on.checker_share < off.checker_share
    );
    if pass {
        println!("criteria: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("criteria: FAIL");
        ExitCode::FAILURE
    }
}

// ---- BENCH_7: the sharded-checker regression suite ----

fn run_shards(args: &Args) -> ExitCode {
    let cost = CostModel::default();
    let suite_start = Instant::now();

    // Same clustered shape and configuration as the BENCH_5 pruning
    // criterion, summaries on — the single-shard row below IS that
    // baseline, so the share factor reads directly against BENCH_5.
    let (epochs, tasks, threads, ckpt) = if args.smoke {
        (12, 8, 8, 4)
    } else {
        (60, 32, 32, 10)
    };
    let w = Clustered {
        epochs,
        tasks,
        proven: false,
    };
    println!(
        "[clustered] {epochs} epochs x {tasks} tasks on {threads} threads, \
         checkpoint every {ckpt}, shard sweep {SHARD_COUNTS:?}"
    );
    let rows: Vec<(usize, CheckerSide)> = SHARD_COUNTS
        .iter()
        .map(|&n| (n, checker_side(&w, threads, ckpt, true, n, false, &cost)))
        .collect();
    let baseline = &rows[0].1;
    let verdicts_identical = rows.iter().all(|(_, c)| {
        c.misspeculations == baseline.misspeculations
            && c.tasks == baseline.tasks
            && c.check_requests == baseline.check_requests
    });
    let (best_shards, best_share) = rows
        .iter()
        .skip(1)
        .map(|(n, c)| (*n, c.checker_share))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("the sweep has sharded rows");
    let share_factor = best_share / baseline.checker_share.max(f64::MIN_POSITIVE);

    let pass = !args.smoke && verdicts_identical && share_factor < SHARD_SHARE_FACTOR;

    let json = render_shards_json(
        args,
        &rows,
        epochs,
        tasks,
        threads,
        ckpt,
        verdicts_identical,
        share_factor,
        pass,
    );
    if let Err(e) = std::fs::create_dir_all(args.out.parent().unwrap_or(&args.out)) {
        eprintln!("bench-suite: creating output directory: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("bench-suite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate_report(&json) {
        eprintln!("bench-suite: produced malformed JSON: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "[wrote {}] in {:.1}s",
        args.out.display(),
        suite_start.elapsed().as_secs_f64()
    );
    for (n, c) in &rows {
        println!(
            "  {n} shard(s): checker-wait share {:.4}, total {} ns, \
             {} misspec / {} tasks / {} checks (what-if free checks: {:.3}x)",
            c.checker_share,
            c.total_ns,
            c.misspeculations,
            c.tasks,
            c.check_requests,
            c.zero_checker_speedup
        );
    }
    if args.smoke {
        println!("smoke mode: criteria not evaluated (test-scale workload)");
        return ExitCode::SUCCESS;
    }
    println!(
        "best sharded share {best_share:.4} on {best_shards} shards = {share_factor:.4} of the \
         single-shard share (need < {SHARD_SHARE_FACTOR}), verdicts identical: {verdicts_identical}"
    );
    if pass {
        println!("criteria: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("criteria: FAIL");
        ExitCode::FAILURE
    }
}

#[allow(clippy::too_many_arguments)]
fn render_shards_json(
    args: &Args,
    rows: &[(usize, CheckerSide)],
    epochs: usize,
    tasks: usize,
    threads: usize,
    ckpt: usize,
    verdicts_identical: bool,
    share_factor: f64,
    pass: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"crossinvoc-bench-7\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"smoke\": {},", args.smoke);
    s.push_str("  \"checker\": {\n");
    let _ = writeln!(s, "    \"workload\": \"clustered\",");
    let _ = writeln!(s, "    \"epochs\": {epochs},");
    let _ = writeln!(s, "    \"tasks\": {tasks},");
    let _ = writeln!(s, "    \"threads\": {threads},");
    let _ = writeln!(s, "    \"checkpoint_every\": {ckpt},");
    s.push_str("    \"shards\": [\n");
    for (i, (n, c)) in rows.iter().enumerate() {
        s.push_str("      {\n");
        let _ = writeln!(s, "        \"shards\": {n},");
        let _ = writeln!(s, "        \"total_ns\": {},", c.total_ns);
        let _ = writeln!(s, "        \"check_requests\": {},", c.check_requests);
        let _ = writeln!(s, "        \"comparisons\": {},", c.comparisons);
        let _ = writeln!(s, "        \"misspeculations\": {},", c.misspeculations);
        let _ = writeln!(s, "        \"tasks\": {},", c.tasks);
        let _ = writeln!(s, "        \"checker_wait_share\": {:.6},", c.checker_share);
        let _ = writeln!(
            s,
            "        \"what_if_zero_checker_wait_speedup\": {:.4}",
            c.zero_checker_speedup
        );
        s.push_str("      }");
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"criteria\": {\n");
    let _ = writeln!(s, "    \"evaluated\": {},", !args.smoke);
    let _ = writeln!(s, "    \"max_share_factor\": {SHARD_SHARE_FACTOR},");
    let _ = writeln!(s, "    \"share_factor\": {share_factor:.6},");
    let _ = writeln!(s, "    \"verdicts_identical\": {verdicts_identical},");
    let _ = writeln!(s, "    \"pass\": {pass}");
    s.push_str("  }\n}\n");
    s
}

#[allow(clippy::too_many_arguments)]
fn render_fastpath_json(
    args: &Args,
    on: &CheckerSide,
    off: &CheckerSide,
    pruning_ratio: f64,
    memo_rows: &[MemoRow],
    epochs: usize,
    tasks: usize,
    threads: usize,
    pass: bool,
) -> String {
    let side = |s: &mut String, label: &str, c: &CheckerSide, comma: bool| {
        let _ = writeln!(s, "    \"{label}\": {{");
        let _ = writeln!(s, "      \"total_ns\": {},", c.total_ns);
        let _ = writeln!(s, "      \"check_requests\": {},", c.check_requests);
        let _ = writeln!(s, "      \"comparisons\": {},", c.comparisons);
        let _ = writeln!(s, "      \"epoch_skips\": {},", c.epoch_skips);
        let _ = writeln!(
            s,
            "      \"comparisons_per_admit\": {:.4},",
            c.comparisons_per_admit()
        );
        let _ = writeln!(s, "      \"checker_wait_share\": {:.6},", c.checker_share);
        let _ = writeln!(
            s,
            "      \"what_if_zero_checker_wait_speedup\": {:.4}",
            c.zero_checker_speedup
        );
        s.push_str(if comma { "    },\n" } else { "    }\n" });
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"crossinvoc-bench-5\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"workers\": {},", args.workers);
    let _ = writeln!(s, "  \"smoke\": {},", args.smoke);
    s.push_str("  \"checker\": {\n");
    let _ = writeln!(s, "    \"workload\": \"clustered\",");
    let _ = writeln!(s, "    \"epochs\": {epochs},");
    let _ = writeln!(s, "    \"tasks\": {tasks},");
    let _ = writeln!(s, "    \"threads\": {threads},");
    let _ = writeln!(s, "    \"pruning_ratio\": {pruning_ratio:.4},");
    side(&mut s, "summaries_on", on, true);
    side(&mut s, "summaries_off", off, false);
    s.push_str("  },\n");
    s.push_str("  \"memo\": {\n");
    let _ = writeln!(
        s,
        "    \"scale\": \"{}\",",
        if args.smoke { "test" } else { "figure" }
    );
    s.push_str("    \"kernels\": [\n");
    for (i, row) in memo_rows.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"name\": \"{}\", \"invocations\": {}, \"cache_hits\": {}, \
             \"hit_rate\": {:.4}, \"memo_total_ns\": {}, \"no_memo_total_ns\": {}}}",
            row.name,
            row.invocations,
            row.cache_hits,
            row.hit_rate(),
            row.memo_ns,
            row.no_memo_ns
        );
        s.push_str(if i + 1 < memo_rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"criteria\": {\n");
    let _ = writeln!(s, "    \"evaluated\": {},", !args.smoke);
    let _ = writeln!(s, "    \"min_pruning_ratio\": {PRUNING_THRESHOLD},");
    let _ = writeln!(s, "    \"min_hit_rate\": {HIT_RATE_THRESHOLD},");
    let _ = writeln!(s, "    \"pruning_ratio\": {pruning_ratio:.4},");
    let worst = memo_rows
        .iter()
        .map(MemoRow::hit_rate)
        .fold(f64::INFINITY, f64::min);
    let _ = writeln!(s, "    \"worst_hit_rate\": {worst:.4},");
    let _ = writeln!(s, "    \"checker_share_on\": {:.6},", on.checker_share);
    let _ = writeln!(s, "    \"checker_share_off\": {:.6},", off.checker_share);
    let _ = writeln!(s, "    \"pass\": {pass}");
    s.push_str("  }\n}\n");
    s
}

// ---- BENCH_10: the static-check-elision regression suite ----

/// Wraps a registry model with the bench-side disjointness oracle: an
/// invocation is proven iff no address it touches is also written by a
/// different invocation — the conservative pair-conflict rule
/// `pir::elide` applies to affine programs, computed here from the
/// model's declared accesses (exact, hence sound by construction).
struct ProvenMask {
    model: Box<dyn SimWorkload + Send + Sync>,
    proven: Vec<bool>,
}

impl ProvenMask {
    fn new(model: Box<dyn SimWorkload + Send + Sync>) -> Self {
        let proven = disjoint_invocations(model.as_ref());
        Self { model, proven }
    }
}

impl SimWorkload for ProvenMask {
    fn num_invocations(&self) -> usize {
        self.model.num_invocations()
    }
    fn num_iterations(&self, inv: usize) -> usize {
        self.model.num_iterations(inv)
    }
    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        self.model.iteration_cost(inv, iter)
    }
    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        self.model.accesses(inv, iter, out);
    }
    fn prologue_cost(&self, inv: usize) -> u64 {
        self.model.prologue_cost(inv)
    }
    fn sched_cost(&self, inv: usize, iter: usize) -> u64 {
        self.model.sched_cost(inv, iter)
    }
    fn address_space(&self) -> Option<usize> {
        self.model.address_space()
    }
    fn invocation_is_proven(&self, inv: usize) -> bool {
        self.proven.get(inv).copied().unwrap_or(false)
    }
}

/// The oracle behind [`ProvenMask`]: collects, per address, the
/// invocations touching it and whether any access to it writes. Any
/// address written somewhere and touched from more than one invocation
/// poisons every invocation on it — the checker never compares same-epoch
/// tasks, so intra-invocation overlap is irrelevant, exactly as in the
/// static pair-conflict model.
fn disjoint_invocations(model: &dyn SimWorkload) -> Vec<bool> {
    let invs = model.num_invocations();
    let mut proven = vec![true; invs];
    let mut by_addr: HashMap<usize, (Vec<usize>, bool)> = HashMap::new();
    let mut pairs = Vec::new();
    for inv in 0..invs {
        for iter in 0..model.num_iterations(inv) {
            pairs.clear();
            model.accesses(inv, iter, &mut pairs);
            for &(addr, kind) in &pairs {
                let entry = by_addr.entry(addr).or_default();
                if entry.0.last() != Some(&inv) {
                    entry.0.push(inv);
                }
                entry.1 |= kind == AccessKind::Write;
            }
        }
    }
    for (touching, any_write) in by_addr.into_values() {
        if touching.len() > 1 && any_write {
            for inv in touching {
                proven[inv] = false;
            }
        }
    }
    proven
}

/// One registry kernel's elision-transparency measurements.
struct ElideRegistryRow {
    name: &'static str,
    epochs: usize,
    proven: usize,
    /// Whether the kernel ran on real threads. Rows whose inner loops are
    /// not DOALL-parallelizable (`speccross: false` in the registry — they
    /// need Spec-DOALL/LOCALWRITE intra-epoch ordering the SPECCROSS
    /// engine does not provide) are checked in simulation only.
    realized: bool,
    /// Real-thread digests: elide-on == elide-off == sequential image.
    /// Vacuously true when `realized` is false.
    digest_identical: bool,
    /// Simulated verdict stream: misspeculations, tasks and degrade state
    /// identical elide-on vs elide-off, check requests never more.
    verdicts_identical: bool,
    /// Admissions the real elide-on run skipped.
    elided_admits: u64,
}

fn run_elide(args: &Args) -> ExitCode {
    let cost = CostModel::default();
    let suite_start = Instant::now();

    // Transparency sweep: every Table 5.1 kernel, real threads at test
    // scale (checksum-validated — same rationale as BENCH_3: this
    // container has one core, so wall time would measure noise) plus the
    // deterministic simulated verdict stream.
    println!("[registry] elision transparency sweep at Test scale");
    let mut rows: Vec<ElideRegistryRow> = Vec::new();
    for info in &registry() {
        let masked = ProvenMask::new(info.model(Scale::Test));
        let epochs = masked.proven.len();
        let proven = masked.proven.iter().filter(|&&p| p).count();

        let sim_params = |elide: bool| {
            SpecSimParams::with_threads(4)
                .checkpoint_every(4)
                .elide(elide)
        };
        let sim_off = crossinvoc_sim::speccross(&masked, &sim_params(false), &cost);
        let sim_on = crossinvoc_sim::speccross(&masked, &sim_params(true), &cost);
        let verdicts_identical = sim_on.stats.misspeculations == sim_off.stats.misspeculations
            && sim_on.stats.tasks == sim_off.stats.tasks
            && sim_on.degraded == sim_off.degraded
            && sim_on.stats.check_requests <= sim_off.stats.check_requests;

        // Real threads only where the registry says the inner loop is
        // DOALL-parallelizable: SPECCROSS orders cross-epoch conflicts
        // only, so Spec-DOALL/LOCALWRITE rows (intra-epoch dependences)
        // would race under the real engine regardless of elision. Those
        // keep the simulated verdict check above.
        let mut digest_identical = true;
        let mut elided_admits = 0;
        if info.speccross {
            let kernel = AccessKernel::from_model(masked);
            let expected = kernel.sequential_checksum();
            let config = |elide: bool| {
                SpecConfig::with_workers(4)
                    .checkpoint_every(4)
                    .elide(elide)
                    .watchdog(std::time::Duration::from_secs(60))
            };
            for elide in [false, true] {
                kernel.reset();
                match SpecCrossEngine::<RangeSignature>::new(config(elide)).execute(&kernel) {
                    Ok(report) => {
                        if elide {
                            elided_admits = report.stats.elided_admits;
                        }
                        digest_identical &= kernel.checksum() == expected;
                    }
                    Err(e) => {
                        eprintln!("[{}] elide={elide} run failed: {e}", info.name);
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        println!(
            "  {:<16} {proven:>3}/{epochs} proven epochs, digests identical: {}, \
             sim verdicts identical: {verdicts_identical}, {elided_admits} admits elided",
            info.name,
            if info.speccross {
                if digest_identical {
                    "true"
                } else {
                    "false"
                }
            } else {
                "n/a (sim only)"
            }
        );
        rows.push(ElideRegistryRow {
            name: info.name,
            epochs,
            proven,
            realized: info.speccross,
            digest_identical,
            verdicts_identical,
            elided_admits,
        });
    }
    let registry_identical = rows
        .iter()
        .all(|r| r.digest_identical && r.verdicts_identical);

    // The checker-side criteria reuse the BENCH_5/7 clustered
    // configuration so the numbers read directly against those baselines.
    let (epochs, tasks, threads, ckpt) = if args.smoke {
        (12, 8, 8, 4)
    } else {
        (60, 32, 32, 10)
    };

    // Fully-proven clustered workload: elision must remove the checker
    // from the picture entirely.
    let clustered = Clustered {
        epochs,
        tasks,
        proven: true,
    };
    println!("[clustered] {epochs} epochs x {tasks} tasks on {threads} threads, fully proven");
    let clu_off = checker_side(&clustered, threads, ckpt, true, 1, false, &cost);
    let clu_on = checker_side(&clustered, threads, ckpt, true, 1, true, &cost);
    // (The simulator bills a check request only when a task's window
    // overlaps retained cross-epoch state, so elided_admits need not
    // equal the baseline's request count — only the zero is exact.)
    let clustered_zero_checks =
        clu_on.check_requests == 0 && clu_on.stats_match(&clu_off) && clu_on.elided_admits > 0;

    // Mixed proven/unproven workload: the pruning and critical-path
    // criteria are evaluated where elision has to coexist with real
    // admissions.
    // Every 6th epoch stays on the full admission path: enough retained
    // admissions that the pruning/critical-path criteria are measured
    // against live checker traffic, few enough that elision can pull the
    // checker off the critical path (at 1/2 retained the checker stays
    // saturated and the wait share barely moves).
    let mixed = MixedElide {
        epochs,
        tasks,
        unproven_every: 6,
    };
    let mixed_proven = (0..epochs).filter(|&e| mixed.proven(e)).count();
    println!(
        "[mixed] {epochs} epochs x {tasks} tasks on {threads} threads, {mixed_proven}/{epochs} proven"
    );
    let base_off = checker_side(&mixed, threads, ckpt, false, 1, false, &cost);
    let sum_on = checker_side(&mixed, threads, ckpt, true, 1, false, &cost);
    let elide_on = checker_side(&mixed, threads, ckpt, true, 1, true, &cost);
    // Test-scale runs can elide their way to zero comparisons; cap the
    // ratio so the report stays a finite, readable number.
    let combined_ratio =
        (base_off.comparisons_per_admit() / elide_on.comparisons_per_admit().max(1e-9)).min(1e9);
    let share_factor = elide_on.checker_share / sum_on.checker_share.max(f64::MIN_POSITIVE);
    let mixed_verdicts = elide_on.stats_match(&sum_on) && base_off.stats_match(&sum_on);

    let pass = !args.smoke
        && registry_identical
        && clustered_zero_checks
        && mixed_verdicts
        && combined_ratio > ELIDE_PRUNING_BASELINE
        && share_factor < ELIDE_SHARE_FACTOR;

    let json = render_elide_json(
        args,
        &rows,
        registry_identical,
        &clu_off,
        &clu_on,
        clustered_zero_checks,
        &base_off,
        &sum_on,
        &elide_on,
        mixed_verdicts,
        combined_ratio,
        share_factor,
        epochs,
        tasks,
        threads,
        ckpt,
        pass,
    );
    if let Err(e) = std::fs::create_dir_all(args.out.parent().unwrap_or(&args.out)) {
        eprintln!("bench-suite: creating output directory: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("bench-suite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate_report(&json) {
        eprintln!("bench-suite: produced malformed JSON: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "[wrote {}] in {:.1}s",
        args.out.display(),
        suite_start.elapsed().as_secs_f64()
    );
    println!(
        "  clustered: {} -> {} check requests with elision ({} admits elided)",
        clu_off.check_requests, clu_on.check_requests, clu_on.elided_admits
    );
    println!(
        "  mixed comparisons/admit: {:.2} bare, {:.2} summaries, {:.2} summaries+elision \
         (combined ratio {combined_ratio:.2})",
        base_off.comparisons_per_admit(),
        sum_on.comparisons_per_admit(),
        elide_on.comparisons_per_admit()
    );
    println!(
        "  mixed checker-wait share: {:.4} -> {:.4} (factor {share_factor:.4}; \
         what-if free checks: {:.3}x -> {:.3}x)",
        sum_on.checker_share,
        elide_on.checker_share,
        sum_on.zero_checker_speedup,
        elide_on.zero_checker_speedup
    );
    if args.smoke {
        println!("smoke mode: criteria not evaluated (test-scale workload)");
        return ExitCode::SUCCESS;
    }
    println!(
        "combined pruning ratio {combined_ratio:.2} (need > {ELIDE_PRUNING_BASELINE}), \
         share factor {share_factor:.4} (need < {ELIDE_SHARE_FACTOR}), registry identical: \
         {registry_identical}, clustered zero checks: {clustered_zero_checks}"
    );
    if pass {
        println!("criteria: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("criteria: FAIL");
        ExitCode::FAILURE
    }
}

impl CheckerSide {
    /// Verdict-stream equality of two runs of the same workload:
    /// misspeculation and admitted-task counts match (the simulated
    /// replay is deterministic, so elision and the summary fast path must
    /// not move either).
    fn stats_match(&self, other: &CheckerSide) -> bool {
        self.misspeculations == other.misspeculations && self.tasks == other.tasks
    }
}

#[allow(clippy::too_many_arguments)]
fn render_elide_json(
    args: &Args,
    rows: &[ElideRegistryRow],
    registry_identical: bool,
    clu_off: &CheckerSide,
    clu_on: &CheckerSide,
    clustered_zero_checks: bool,
    base_off: &CheckerSide,
    sum_on: &CheckerSide,
    elide_on: &CheckerSide,
    mixed_verdicts: bool,
    combined_ratio: f64,
    share_factor: f64,
    epochs: usize,
    tasks: usize,
    threads: usize,
    ckpt: usize,
    pass: bool,
) -> String {
    let side = |s: &mut String, label: &str, c: &CheckerSide, comma: bool| {
        let _ = writeln!(s, "      \"{label}\": {{");
        let _ = writeln!(s, "        \"total_ns\": {},", c.total_ns);
        let _ = writeln!(s, "        \"check_requests\": {},", c.check_requests);
        let _ = writeln!(s, "        \"comparisons\": {},", c.comparisons);
        let _ = writeln!(s, "        \"elided_admits\": {},", c.elided_admits);
        let _ = writeln!(s, "        \"misspeculations\": {},", c.misspeculations);
        let _ = writeln!(s, "        \"tasks\": {},", c.tasks);
        let _ = writeln!(
            s,
            "        \"comparisons_per_admit\": {:.4},",
            c.comparisons_per_admit()
        );
        let _ = writeln!(s, "        \"checker_wait_share\": {:.6},", c.checker_share);
        let _ = writeln!(
            s,
            "        \"what_if_zero_checker_wait_speedup\": {:.4}",
            c.zero_checker_speedup
        );
        s.push_str(if comma { "      },\n" } else { "      }\n" });
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"crossinvoc-bench-10\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"smoke\": {},", args.smoke);
    s.push_str("  \"registry\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"epochs\": {}, \"proven_epochs\": {}, \
             \"realized\": {}, \"digest_identical\": {}, \"verdicts_identical\": {}, \
             \"elided_admits\": {}}}",
            row.name,
            row.epochs,
            row.proven,
            row.realized,
            row.digest_identical,
            row.verdicts_identical,
            row.elided_admits
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"checker\": {\n");
    let _ = writeln!(s, "    \"epochs\": {epochs},");
    let _ = writeln!(s, "    \"tasks\": {tasks},");
    let _ = writeln!(s, "    \"threads\": {threads},");
    let _ = writeln!(s, "    \"checkpoint_every\": {ckpt},");
    s.push_str("    \"clustered\": {\n");
    side(&mut s, "elide_off", clu_off, true);
    side(&mut s, "elide_on", clu_on, false);
    s.push_str("    },\n");
    s.push_str("    \"mixed\": {\n");
    side(&mut s, "bare", base_off, true);
    side(&mut s, "summaries", sum_on, true);
    side(&mut s, "summaries_elide", elide_on, false);
    s.push_str("    }\n  },\n");
    s.push_str("  \"criteria\": {\n");
    let _ = writeln!(s, "    \"evaluated\": {},", !args.smoke);
    let _ = writeln!(s, "    \"min_combined_ratio\": {ELIDE_PRUNING_BASELINE},");
    let _ = writeln!(s, "    \"max_share_factor\": {ELIDE_SHARE_FACTOR},");
    let _ = writeln!(s, "    \"combined_ratio\": {combined_ratio:.4},");
    let _ = writeln!(s, "    \"share_factor\": {share_factor:.6},");
    let _ = writeln!(s, "    \"registry_identical\": {registry_identical},");
    let _ = writeln!(s, "    \"clustered_zero_checks\": {clustered_zero_checks},");
    let _ = writeln!(s, "    \"mixed_verdicts_identical\": {mixed_verdicts},");
    let _ = writeln!(s, "    \"pass\": {pass}");
    s.push_str("  }\n}\n");
    s
}

// ---- BENCH_8: the region-server saturation suite ----

/// Which engine a BENCH_8 region runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    Spec,
    Domore,
}

/// One region of the BENCH_8 batch.
#[derive(Debug, Clone, Copy)]
struct RegionDef {
    kind: RegionKind,
    workers: usize,
    shards: usize,
    epochs: usize,
    tasks: usize,
}

impl RegionDef {
    /// Pool slots the region's gang occupies (the DOMORE scheduler rides
    /// the submitting manager thread, so only its workers count).
    fn gang(&self) -> usize {
        match self.kind {
            RegionKind::Spec => self.workers + self.shards,
            RegionKind::Domore => self.workers,
        }
    }

    fn kind_name(&self) -> &'static str {
        match self.kind {
            RegionKind::Spec => "speccross",
            RegionKind::Domore => "domore",
        }
    }
}

/// Conflict-free SPECCROSS grid: task `t` of every epoch increments cell
/// `t`, so clean runs never misspeculate and the digest is deterministic.
/// Atomic cells survive an injected task panic without lock poisoning.
struct RegionIncGrid {
    cells: Vec<AtomicU64>,
    epochs: usize,
}

impl RegionIncGrid {
    fn new(tasks: usize, epochs: usize) -> Self {
        Self {
            cells: (0..tasks).map(|_| AtomicU64::new(0)).collect(),
            epochs,
        }
    }
}

impl SpecWorkload for RegionIncGrid {
    type State = Vec<u64>;

    fn num_epochs(&self) -> usize {
        self.epochs
    }

    fn num_tasks(&self, _epoch: usize) -> usize {
        self.cells.len()
    }

    fn execute_task(
        &self,
        _epoch: usize,
        task: usize,
        _tid: ThreadId,
        recorder: &mut dyn AccessRecorder,
    ) {
        recorder.record(task, AccessKind::Write);
        self.cells[task].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    fn restore(&self, state: &Vec<u64>) {
        for (cell, v) in self.cells.iter().zip(state) {
            cell.store(*v, Ordering::Relaxed);
        }
    }
}

/// The DOMORE analogue: iteration `i` of every invocation owns cell `i`.
struct RegionDomGrid {
    cells: Vec<AtomicU64>,
    invocations: usize,
}

impl RegionDomGrid {
    fn new(iterations: usize, invocations: usize) -> Self {
        Self {
            cells: (0..iterations).map(|_| AtomicU64::new(0)).collect(),
            invocations,
        }
    }
}

impl DomoreWorkload for RegionDomGrid {
    fn num_invocations(&self) -> usize {
        self.invocations
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.cells.len()
    }

    fn touched_addrs(&self, _inv: usize, iter: usize, out: &mut Vec<usize>) {
        out.push(iter);
    }

    fn execute_iteration(&self, _inv: usize, iter: usize, _tid: ThreadId) {
        self.cells[iter].fetch_add(1, Ordering::Relaxed);
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.cells.len())
    }
}

fn cells_of(cells: &[AtomicU64]) -> Vec<u64> {
    cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

/// Canonical result digest of a SPECCROSS region: every deterministic
/// observable, including the verdict stream (conflicts in detection order,
/// misspeculation count) and the final memory image. Timing-dependent
/// fields (wall clock, stalls, comparison counts) are deliberately absent.
fn spec_digest(report: &SpecReport, cells: &[AtomicU64]) -> String {
    format!(
        "spec tasks={} epochs={} misspec={} conflicts={:?} degraded={} contained={} cells={:?}",
        report.stats.tasks,
        report.stats.epochs,
        report.stats.misspeculations,
        report.conflicts,
        report.degraded,
        report.contained_faults.len(),
        cells_of(cells),
    )
}

/// Canonical result digest of a DOMORE region (scheduling decisions are
/// deterministic, so the synchronization-condition count is too).
fn dom_digest(report: &ExecutionReport, cells: &[AtomicU64]) -> String {
    format!(
        "domore tasks={} epochs={} sync={} cells={:?}",
        report.stats.tasks,
        report.stats.epochs,
        report.stats.sync_conditions,
        cells_of(cells),
    )
}

fn spec_region_config(def: &RegionDef) -> SpecConfig {
    SpecConfig::with_workers(def.workers)
        .checker_shards(def.shards)
        .checkpoint_every(4)
}

/// Runs one region alone, the pre-region-server way: a fresh scoped gang
/// on dedicated threads. This is the baseline every pooled digest must
/// reproduce byte-for-byte.
fn run_region_solo(def: &RegionDef) -> Result<String, String> {
    match def.kind {
        RegionKind::Spec => {
            let w = RegionIncGrid::new(def.tasks, def.epochs);
            let report = SpecCrossEngine::<RangeSignature>::new(spec_region_config(def))
                .execute(&w)
                .map_err(|e| format!("solo speccross region: {e}"))?;
            Ok(spec_digest(&report, &w.cells))
        }
        RegionKind::Domore => {
            let w = RegionDomGrid::new(def.tasks, def.epochs);
            let report = DomoreRuntime::new(DomoreConfig::with_workers(def.workers))
                .execute(&w)
                .map_err(|e| format!("solo domore region: {e}"))?;
            Ok(dom_digest(&report, &w.cells))
        }
    }
}

/// Workload handles kept across a pooled run so digests can read the final
/// cells after the joins.
enum LoadRef {
    Spec(Arc<RegionIncGrid>),
    Dom(Arc<RegionDomGrid>),
}

/// What a telemetry-attached pooled run observed, for the BENCH_9 gates.
struct TelemetryOutcome {
    /// Every region's snapshot row equals the engine report's final
    /// `MetricsSummary` (the aliasing contract), with state `done`.
    consistent: bool,
    /// Gang admissions the pool hooks recorded.
    admissions: u64,
    /// Flight dumps taken: `(region_id, trigger, records, dropped, jsonl)`.
    dumps: Vec<(u64, String, usize, u64, String)>,
    /// The post-join registry snapshot.
    snapshot: RegistrySnapshot,
}

/// Submits the whole batch to one shared-pool [`RegionServer`] and joins
/// every region. With `fault_region0` the first region (SPECCROSS by
/// construction) runs under a worker-panic fault plan; its own digest is
/// timing-dependent (how far the other workers ran before the rollback
/// varies), so the returned bool instead reports whether the fault was
/// contained *and* the region's final cells are still exact — the
/// neighbours' digests remain byte-comparable either way.
///
/// With `telemetry`, the server carries a live registry plus a
/// flight recorder, and the returned [`TelemetryOutcome`] reports what the
/// telemetry plane observed. Digests are computed identically either way —
/// BENCH_9's identity criterion diffs them across the two settings.
fn run_regions_pooled(
    defs: &[RegionDef],
    pool_threads: usize,
    fault_region0: bool,
    telemetry: bool,
) -> Result<(Vec<String>, bool, Option<TelemetryOutcome>), String> {
    let server = if telemetry {
        RegionServer::with_telemetry(
            pool_threads,
            ServerRegistry::new(pool_threads).with_recorder(FlightRecorder::new(512)),
        )
    } else {
        RegionServer::new(pool_threads)
    };
    let mut loads = Vec::new();
    let mut handles = Vec::new();
    for (i, def) in defs.iter().enumerate() {
        let region_id = (i + 1) as u64;
        match def.kind {
            RegionKind::Spec => {
                let w = Arc::new(RegionIncGrid::new(def.tasks, def.epochs));
                let mut config = spec_region_config(def);
                if fault_region0 && i == 0 {
                    config = config.fault_plan(FaultPlan::new().worker_panic_at(1, 0));
                }
                handles.push(server.submit_spec::<RangeSignature, _>(
                    region_id,
                    config,
                    Arc::clone(&w),
                ));
                loads.push(LoadRef::Spec(w));
            }
            RegionKind::Domore => {
                let w = Arc::new(RegionDomGrid::new(def.tasks, def.epochs));
                handles.push(server.submit_domore(
                    region_id,
                    DomoreConfig::with_workers(def.workers),
                    Arc::clone(&w),
                ));
                loads.push(LoadRef::Dom(w));
            }
        }
    }
    let mut digests = Vec::new();
    let mut final_metrics = Vec::new();
    let mut region0_ok = true;
    for (i, (handle, load)) in handles.into_iter().zip(&loads).enumerate() {
        let report = handle
            .join()
            .map_err(|e| format!("pooled region {}: {e}", i + 1))?;
        final_metrics.push(match &report {
            RegionReport::Spec(r) => r.metrics,
            RegionReport::Domore(r) => r.metrics,
        });
        if fault_region0 && i == 0 {
            region0_ok = match (&report, load) {
                (RegionReport::Spec(r), LoadRef::Spec(w)) => {
                    !r.contained_faults.is_empty()
                        && cells_of(&w.cells)
                            .iter()
                            .all(|&c| c == defs[0].epochs as u64)
                }
                _ => false,
            };
            digests.push(String::new());
            continue;
        }
        let digest = match (&report, load) {
            (RegionReport::Spec(r), LoadRef::Spec(w)) => spec_digest(r, &w.cells),
            (RegionReport::Domore(r), LoadRef::Dom(w)) => dom_digest(r, &w.cells),
            _ => return Err(format!("region {} returned the wrong report kind", i + 1)),
        };
        digests.push(digest);
    }
    let outcome = server.registry().map(|registry| {
        let snapshot = registry.snapshot();
        // Structural equality covers every counter (including the elision
        // ones); the wire check below additionally pins the JSON
        // exposition, so a row silently dropping `elided_admits` from the
        // live view fails here, not in a dashboard.
        let wire_elided = json::parse(&snapshot.to_json()).ok().is_some_and(|j| {
            j.get("regions").and_then(Json::as_arr).is_some_and(|rows| {
                rows.len() == final_metrics.len()
                    && rows.iter().zip(&final_metrics).all(|(row, m)| {
                        row.get("elided_admits").and_then(Json::as_f64)
                            == Some(m.stats.elided_admits as f64)
                    })
            })
        });
        let consistent = snapshot.regions.len() == defs.len()
            && wire_elided
            && snapshot.regions.iter().zip(&final_metrics).all(|(row, m)| {
                row.metrics == *m && matches!(row.state, RegionState::Done | RegionState::Faulted)
            });
        let dumps = registry
            .flight_recorder()
            .map(|rec| {
                rec.dumps()
                    .iter()
                    .map(|d| {
                        (
                            d.region_id,
                            d.trigger.to_string(),
                            d.records,
                            d.dropped,
                            d.jsonl.clone(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        TelemetryOutcome {
            consistent,
            admissions: snapshot.pool.admissions,
            dumps,
            snapshot,
        }
    });
    Ok((digests, region0_ok, outcome))
}

/// Solo virtual-time duration of one region, for the throughput replay
/// (the container is single-core; wall clock would measure noise).
fn region_sim_duration(def: &RegionDef, cost: &CostModel) -> u64 {
    let w = UniformWorkload::independent(def.epochs, def.tasks, 10_000);
    match def.kind {
        RegionKind::Spec => {
            let params = SpecSimParams::with_threads(def.workers).checker_shards(def.shards);
            crossinvoc_sim::speccross::speccross(&w, &params, cost).total_ns
        }
        RegionKind::Domore => domore(&w, def.workers, &mut RoundRobin, cost).total_ns,
    }
}

/// The BENCH_8 batch shapes, shared with the BENCH_9 telemetry gate.
///
/// Gangs are sized so the pool can overlap at least two regions
/// (throughput must beat region-at-a-time strictly); region 0 is
/// SPECCROSS because the isolation/flight legs fault it via the spec fault
/// plan. Shapes are conflict-free grids, so every digest field is
/// deterministic and the criteria hold at either scale.
fn regions_batch(smoke: bool) -> (usize, Vec<RegionDef>) {
    if smoke {
        let spec = RegionDef {
            kind: RegionKind::Spec,
            workers: 2,
            shards: 1,
            epochs: 8,
            tasks: 8,
        };
        let dom = RegionDef {
            kind: RegionKind::Domore,
            workers: 2,
            shards: 0,
            epochs: 8,
            tasks: 8,
        };
        (6, vec![spec, dom, spec, dom])
    } else {
        let spec = RegionDef {
            kind: RegionKind::Spec,
            workers: 3,
            shards: 1,
            epochs: 24,
            tasks: 16,
        };
        let dom = RegionDef {
            kind: RegionKind::Domore,
            workers: 4,
            shards: 0,
            epochs: 24,
            tasks: 16,
        };
        (8, vec![spec, dom, spec, dom, spec, dom])
    }
}

fn run_regions(args: &Args) -> ExitCode {
    let suite_start = Instant::now();
    let (pool_threads, defs) = regions_batch(args.smoke);
    println!(
        "[regions] {} regions through a {pool_threads}-thread pool (gangs {:?})",
        defs.len(),
        defs.iter().map(RegionDef::gang).collect::<Vec<_>>()
    );

    // Criterion 1: pooled digests byte-identical to solo digests.
    let solo: Vec<String> = match defs.iter().map(run_region_solo).collect() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench-suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (pooled, _, _) = match run_regions_pooled(&defs, pool_threads, false, false) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench-suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let identical: Vec<bool> = solo.iter().zip(&pooled).map(|(s, p)| s == p).collect();
    let all_identical = identical.iter().all(|&b| b);

    // Criterion 2: pooled throughput strictly beats region-at-a-time in
    // the FIFO gang-admission virtual-time replay.
    let cost = CostModel::default();
    let durations: Vec<u64> = defs.iter().map(|d| region_sim_duration(d, &cost)).collect();
    let sim = region_server(
        pool_threads,
        &defs
            .iter()
            .zip(&durations)
            .map(|(d, &duration)| RegionSpec {
                gang: d.gang(),
                duration,
            })
            .collect::<Vec<_>>(),
    );
    let ratio = sim.throughput_ratio();

    // Criterion 3: a faulted region 0 leaves every neighbour's digest —
    // verdict stream included — byte-identical to its solo run.
    let (faulted, region0_contained, _) = match run_regions_pooled(&defs, pool_threads, true, false)
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench-suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let isolated: Vec<bool> = solo
        .iter()
        .zip(&faulted)
        .enumerate()
        .map(|(i, (s, f))| if i == 0 { region0_contained } else { s == f })
        .collect();
    let isolation = isolated.iter().all(|&b| b);

    let pass = all_identical && ratio > 1.0 && isolation;
    let json = render_regions_json(
        args,
        pool_threads,
        &defs,
        &durations,
        &identical,
        &isolated,
        &sim,
        region0_contained,
        pass,
    );
    if let Err(e) = std::fs::create_dir_all(args.out.parent().unwrap_or(&args.out)) {
        eprintln!("bench-suite: creating output directory: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("bench-suite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate_report(&json) {
        eprintln!("bench-suite: produced malformed JSON: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "[wrote {}] in {:.1}s",
        args.out.display(),
        suite_start.elapsed().as_secs_f64()
    );
    for (i, def) in defs.iter().enumerate() {
        println!(
            "  region {} ({}, gang {}): identical={} isolated={} sim {} ns",
            i + 1,
            def.kind_name(),
            def.gang(),
            identical[i],
            isolated[i],
            durations[i],
        );
    }
    println!(
        "pooled makespan {} ns vs region-at-a-time {} ns = {ratio:.3}x (need > 1.0), \
         fault contained: {region0_contained}",
        sim.makespan, sim.sequential
    );
    // The criteria are deterministic (digest equality, virtual time), so
    // unlike the timing-calibrated suites they gate smoke mode too.
    if pass {
        println!("criteria: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("criteria: FAIL");
        ExitCode::FAILURE
    }
}

#[allow(clippy::too_many_arguments)]
fn render_regions_json(
    args: &Args,
    pool_threads: usize,
    defs: &[RegionDef],
    durations: &[u64],
    identical: &[bool],
    isolated: &[bool],
    sim: &ServerSimResult,
    region0_contained: bool,
    pass: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"crossinvoc-bench-8\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(s, "  \"pool\": {{ \"threads\": {pool_threads} }},");
    s.push_str("  \"regions\": [\n");
    for (i, def) in defs.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"region_id\": {},", i + 1);
        let _ = writeln!(s, "      \"kind\": \"{}\",", def.kind_name());
        let _ = writeln!(s, "      \"gang\": {},", def.gang());
        let _ = writeln!(s, "      \"epochs\": {},", def.epochs);
        let _ = writeln!(s, "      \"tasks\": {},", def.tasks);
        let _ = writeln!(s, "      \"sim_duration_ns\": {},", durations[i]);
        let _ = writeln!(s, "      \"identical\": {},", identical[i]);
        let _ = writeln!(s, "      \"isolated\": {}", isolated[i]);
        s.push_str("    }");
        s.push_str(if i + 1 < defs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"throughput\": {\n");
    let _ = writeln!(s, "    \"makespan_ns\": {},", sim.makespan);
    let _ = writeln!(s, "    \"region_at_a_time_ns\": {},", sim.sequential);
    let _ = writeln!(s, "    \"ratio\": {:.4}", sim.throughput_ratio());
    s.push_str("  },\n");
    s.push_str("  \"isolation\": {\n");
    let _ = writeln!(s, "    \"faulted_region\": 1,");
    let _ = writeln!(s, "    \"contained\": {region0_contained}");
    s.push_str("  },\n");
    s.push_str("  \"criteria\": {\n");
    let _ = writeln!(s, "    \"evaluated\": true,");
    let _ = writeln!(s, "    \"identical\": {},", identical.iter().all(|&b| b));
    let _ = writeln!(s, "    \"min_ratio\": 1.0,");
    let _ = writeln!(s, "    \"ratio\": {:.4},", sim.throughput_ratio());
    let _ = writeln!(s, "    \"isolation\": {},", isolated.iter().all(|&b| b));
    let _ = writeln!(s, "    \"pass\": {pass}");
    s.push_str("  }\n}\n");
    s
}

// ---- BENCH_9: the live-telemetry-plane suite ----

/// Minimum telemetry-on / telemetry-off throughput the registry must keep
/// on the saturated spin batch (BENCH_9; best-of-N wall time either arm).
const TELEMETRY_MIN_RATIO: f64 = 0.97;

/// Busy-spins for `ns` nanoseconds — CPU-heavy task bodies for the
/// overhead arm, so per-task telemetry cost is measured against real work
/// rather than against an empty increment.
fn spin_for(ns: u64) {
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// [`RegionIncGrid`] with a busy-spin task body.
struct SpinIncGrid {
    inner: RegionIncGrid,
    spin_ns: u64,
}

impl SpecWorkload for SpinIncGrid {
    type State = Vec<u64>;

    fn num_epochs(&self) -> usize {
        self.inner.num_epochs()
    }

    fn num_tasks(&self, epoch: usize) -> usize {
        self.inner.num_tasks(epoch)
    }

    fn execute_task(
        &self,
        epoch: usize,
        task: usize,
        tid: ThreadId,
        recorder: &mut dyn AccessRecorder,
    ) {
        spin_for(self.spin_ns);
        self.inner.execute_task(epoch, task, tid, recorder);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.inner.snapshot()
    }

    fn restore(&self, state: &Vec<u64>) {
        self.inner.restore(state);
    }
}

/// [`RegionDomGrid`] with a busy-spin iteration body.
struct SpinDomGrid {
    inner: RegionDomGrid,
    spin_ns: u64,
}

impl DomoreWorkload for SpinDomGrid {
    fn num_invocations(&self) -> usize {
        self.inner.num_invocations()
    }

    fn num_iterations(&self, inv: usize) -> usize {
        self.inner.num_iterations(inv)
    }

    fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
        self.inner.touched_addrs(inv, iter, out);
    }

    fn execute_iteration(&self, inv: usize, iter: usize, tid: ThreadId) {
        spin_for(self.spin_ns);
        self.inner.execute_iteration(inv, iter, tid);
    }

    fn address_space(&self) -> Option<usize> {
        self.inner.address_space()
    }
}

/// Wall time of one spin batch through the shared pool, submit to last
/// join, with or without the telemetry plane attached.
fn telemetry_batch_wall(
    defs: &[RegionDef],
    pool_threads: usize,
    spin_ns: u64,
    telemetry: bool,
) -> Result<u64, String> {
    let server = if telemetry {
        RegionServer::with_telemetry(
            pool_threads,
            ServerRegistry::new(pool_threads).with_recorder(FlightRecorder::new(512)),
        )
    } else {
        RegionServer::new(pool_threads)
    };
    let start = Instant::now();
    let mut handles = Vec::new();
    for (i, def) in defs.iter().enumerate() {
        let region_id = (i + 1) as u64;
        match def.kind {
            RegionKind::Spec => {
                let w = Arc::new(SpinIncGrid {
                    inner: RegionIncGrid::new(def.tasks, def.epochs),
                    spin_ns,
                });
                handles.push(server.submit_spec::<RangeSignature, _>(
                    region_id,
                    spec_region_config(def),
                    w,
                ));
            }
            RegionKind::Domore => {
                let w = Arc::new(SpinDomGrid {
                    inner: RegionDomGrid::new(def.tasks, def.epochs),
                    spin_ns,
                });
                handles.push(server.submit_domore(
                    region_id,
                    DomoreConfig::with_workers(def.workers),
                    w,
                ));
            }
        }
    }
    for (i, handle) in handles.into_iter().enumerate() {
        handle
            .join()
            .map_err(|e| format!("spin region {}: {e}", i + 1))?;
    }
    Ok(start.elapsed().as_nanos() as u64)
}

/// What the flight-recorder leg observed, for rendering and the criteria.
struct FlightCheck {
    dumps: usize,
    region_id: u64,
    trigger: String,
    records: usize,
    dropped: u64,
    roundtrip: bool,
    ok: bool,
}

/// Checks the fault run's dumps: exactly one, on region 1, trigger
/// `fault`, non-empty, and its JSONL must round-trip through the trace
/// parser with record and drop counts intact.
fn check_flight(outcome: &TelemetryOutcome, contained: bool) -> FlightCheck {
    let (region_id, trigger, records, dropped, roundtrip) = match outcome.dumps.as_slice() {
        [(region_id, trigger, records, dropped, jsonl)] => {
            let roundtrip = match Trace::from_jsonl_region(jsonl, *region_id) {
                Ok(trace) => trace.records().len() == *records && trace.dropped() == *dropped,
                Err(_) => false,
            };
            (*region_id, trigger.clone(), *records, *dropped, roundtrip)
        }
        _ => (0, String::new(), 0, 0, false),
    };
    let ok = contained
        && outcome.dumps.len() == 1
        && region_id == 1
        && trigger == "fault"
        && records > 0
        && roundtrip;
    FlightCheck {
        dumps: outcome.dumps.len(),
        region_id,
        trigger,
        records,
        dropped,
        roundtrip,
        ok,
    }
}

fn run_telemetry(args: &Args) -> ExitCode {
    let suite_start = Instant::now();
    let (pool_threads, defs) = regions_batch(args.smoke);
    println!(
        "[telemetry] {} regions through a {pool_threads}-thread pool, registry attached",
        defs.len(),
    );

    // Criterion 1: identity — telemetry-on digests byte-identical to
    // telemetry-off (verdict streams included).
    let (off_digests, _, _) = match run_regions_pooled(&defs, pool_threads, false, false) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench-suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (on_digests, _, on_outcome) = match run_regions_pooled(&defs, pool_threads, false, true) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench-suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = on_outcome.expect("telemetry-attached run reports an outcome");
    let identical = off_digests == on_digests;

    // Criterion 2: consistency — every region's snapshot row equals its
    // report's final MetricsSummary, the pool saw every admission, and a
    // healthy batch takes no flight dumps.
    let consistency =
        outcome.consistent && outcome.admissions >= defs.len() as u64 && outcome.dumps.is_empty();

    // Criterion 3: flight — rerun with region 1 under a worker panic; the
    // recorder must dump exactly that region's armed ring.
    let (_, contained, fault_outcome) = match run_regions_pooled(&defs, pool_threads, true, true) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench-suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fault_outcome = fault_outcome.expect("telemetry-attached run reports an outcome");
    let flight = check_flight(&fault_outcome, contained);

    // Criterion 4: overhead — best-of-N wall time over CPU-heavy spin
    // regions, arms interleaved so clock drift hits both equally.
    let spin_ns: u64 = if args.smoke { 200_000 } else { 100_000 };
    let reps = if args.smoke { 3 } else { 5 };
    let (mut best_off, mut best_on) = (u64::MAX, u64::MAX);
    for _ in 0..reps {
        match (
            telemetry_batch_wall(&defs, pool_threads, spin_ns, false),
            telemetry_batch_wall(&defs, pool_threads, spin_ns, true),
        ) {
            (Ok(off), Ok(on)) => {
                best_off = best_off.min(off);
                best_on = best_on.min(on);
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench-suite: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let ratio = best_off as f64 / best_on as f64;
    let overhead = ratio >= TELEMETRY_MIN_RATIO;

    let pass = identical && consistency && flight.ok && overhead;
    let json = render_telemetry_json(
        args,
        pool_threads,
        defs.len(),
        &outcome,
        &flight,
        (spin_ns, reps, best_off, best_on, ratio),
        (identical, consistency, overhead, pass),
    );
    if let Err(e) = std::fs::create_dir_all(args.out.parent().unwrap_or(&args.out)) {
        eprintln!("bench-suite: creating output directory: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("bench-suite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate_report(&json) {
        eprintln!("bench-suite: produced malformed JSON: {e}");
        return ExitCode::FAILURE;
    }
    // Exposition artifacts: wire-schema snapshots for `server-stats`
    // (healthy batch, then the faulted batch) and Prometheus text format.
    let snapshots = args.out.with_file_name("BENCH_9.snapshots.jsonl");
    let prom = args.out.with_file_name("BENCH_9.prom");
    let jsonl = format!(
        "{}\n{}\n",
        outcome.snapshot.to_json(),
        fault_outcome.snapshot.to_json()
    );
    for (path, text) in [
        (&snapshots, jsonl),
        (&prom, fault_outcome.snapshot.to_prometheus()),
    ] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("bench-suite: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "[wrote {} + snapshots.jsonl + prom] in {:.1}s",
        args.out.display(),
        suite_start.elapsed().as_secs_f64()
    );
    println!(
        "  identity: telemetry-on digests identical to off = {identical}\n  \
         consistency: snapshot rows == final MetricsSummary = {} (admissions {})\n  \
         flight: {} dump(s), region {}, trigger {:?}, {} records, roundtrip={}\n  \
         overhead: best off {} ns vs on {} ns = {ratio:.4}x (need >= {TELEMETRY_MIN_RATIO})",
        outcome.consistent,
        outcome.admissions,
        flight.dumps,
        flight.region_id,
        flight.trigger,
        flight.records,
        flight.roundtrip,
        best_off,
        best_on,
    );
    if pass {
        println!("criteria: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("criteria: FAIL");
        ExitCode::FAILURE
    }
}

fn render_telemetry_json(
    args: &Args,
    pool_threads: usize,
    num_regions: usize,
    outcome: &TelemetryOutcome,
    flight: &FlightCheck,
    (spin_ns, reps, best_off, best_on, ratio): (u64, usize, u64, u64, f64),
    (identical, consistency, overhead, pass): (bool, bool, bool, bool),
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"crossinvoc-bench-9\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(
        s,
        "  \"pool\": {{ \"threads\": {pool_threads}, \"regions\": {num_regions} }},"
    );
    s.push_str("  \"overhead\": {\n");
    let _ = writeln!(s, "    \"spin_ns\": {spin_ns},");
    let _ = writeln!(s, "    \"reps\": {reps},");
    let _ = writeln!(s, "    \"best_off_ns\": {best_off},");
    let _ = writeln!(s, "    \"best_on_ns\": {best_on},");
    let _ = writeln!(s, "    \"throughput_ratio\": {ratio:.4},");
    let _ = writeln!(s, "    \"min_ratio\": {TELEMETRY_MIN_RATIO}");
    s.push_str("  },\n");
    s.push_str("  \"consistency\": {\n");
    let _ = writeln!(s, "    \"regions\": {num_regions},");
    let _ = writeln!(s, "    \"snapshot_matches_final\": {},", outcome.consistent);
    let _ = writeln!(s, "    \"admissions\": {},", outcome.admissions);
    let _ = writeln!(s, "    \"clean_run_dumps\": {}", outcome.dumps.len());
    s.push_str("  },\n");
    s.push_str("  \"flight\": {\n");
    let _ = writeln!(s, "    \"dumps\": {},", flight.dumps);
    let _ = writeln!(s, "    \"region_id\": {},", flight.region_id);
    let _ = writeln!(s, "    \"trigger\": \"{}\",", flight.trigger);
    let _ = writeln!(s, "    \"records\": {},", flight.records);
    let _ = writeln!(s, "    \"dropped\": {},", flight.dropped);
    let _ = writeln!(s, "    \"roundtrip\": {}", flight.roundtrip);
    s.push_str("  },\n");
    s.push_str("  \"criteria\": {\n");
    let _ = writeln!(s, "    \"evaluated\": true,");
    let _ = writeln!(s, "    \"identical\": {identical},");
    let _ = writeln!(s, "    \"consistency\": {consistency},");
    let _ = writeln!(s, "    \"flight\": {},", flight.ok);
    let _ = writeln!(s, "    \"overhead\": {overhead},");
    let _ = writeln!(s, "    \"pass\": {pass}");
    s.push_str("  }\n}\n");
    s
}

// ---- JSON rendering (hand-rolled: the workspace carries no serde) ----

fn render_json(
    args: &Args,
    reports: &[KernelReport],
    best_win: Option<(&str, f64)>,
    worst_balanced: Option<(&str, f64)>,
    pass: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"crossinvoc-bench-3\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"workers\": {},", args.workers);
    let _ = writeln!(s, "  \"reps\": {},", args.reps);
    let _ = writeln!(s, "  \"smoke\": {},", args.smoke);
    s.push_str("  \"criteria\": {\n");
    let _ = writeln!(s, "    \"evaluated\": {},", !args.smoke);
    let _ = writeln!(s, "    \"adaptive_min_win\": {WIN_THRESHOLD},");
    let _ = writeln!(s, "    \"balanced_min_ratio\": {BALANCED_TOLERANCE},");
    match best_win {
        Some((name, win)) => {
            let _ = writeln!(s, "    \"best_imbalanced_win\": {win:.4},");
            let _ = writeln!(s, "    \"best_imbalanced_kernel\": \"{name}\",");
        }
        None => {
            s.push_str("    \"best_imbalanced_win\": null,\n");
            s.push_str("    \"best_imbalanced_kernel\": null,\n");
        }
    }
    match worst_balanced {
        Some((name, w)) => {
            let _ = writeln!(s, "    \"worst_balanced_ratio\": {w:.4},");
            let _ = writeln!(s, "    \"worst_balanced_kernel\": \"{name}\",");
        }
        None => {
            s.push_str("    \"worst_balanced_ratio\": null,\n");
            s.push_str("    \"worst_balanced_kernel\": null,\n");
        }
    }
    let _ = writeln!(s, "    \"pass\": {pass}");
    s.push_str("  },\n");
    s.push_str("  \"kernels\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"imbalanced\": {},", r.imbalanced);
        s.push_str("      \"sim\": {\n");
        let _ = writeln!(
            s,
            "        \"scale\": \"{}\",",
            match r.sim_scale {
                Scale::Test => "test",
                Scale::Figure => "figure",
            }
        );
        let _ = writeln!(s, "        \"seq_ns\": {},", r.sim_seq_ns);
        let _ = writeln!(
            s,
            "        \"adaptive_over_round_robin\": {:.4},",
            r.sim_ratio()
        );
        s.push_str("        \"configs\": [\n");
        for (j, row) in r.sim.iter().enumerate() {
            let _ = write!(
                s,
                "          {{\"dispatch\": \"{}\", \"total_ns\": {}, \
                 \"speedup_vs_seq\": {:.4}, \"sync_conditions\": {}, \"stalls\": {}}}",
                row.dispatch.name(),
                row.total_ns,
                row.speedup_vs_seq,
                row.sync_conditions,
                row.stalls
            );
            s.push_str(if j + 1 < r.sim.len() { ",\n" } else { "\n" });
        }
        s.push_str("        ]\n      },\n");
        s.push_str("      \"real\": {\n");
        s.push_str("        \"scale\": \"test\",\n");
        s.push_str("        \"configs\": [\n");
        for (j, row) in r.real.iter().enumerate() {
            s.push_str("          {\n");
            let _ = writeln!(s, "            \"config\": \"{}\",", row.name);
            let _ = writeln!(
                s,
                "            \"median_wall_ns\": {},",
                median(&row.wall_ns)
            );
            let _ = writeln!(
                s,
                "            \"speedup_vs_seq\": {:.4},",
                row.speedup_vs_seq
            );
            let walls: Vec<String> = row.wall_ns.iter().map(|w| w.to_string()).collect();
            let _ = writeln!(s, "            \"wall_ns\": [{}],", walls.join(", "));
            match &row.stall_wait {
                Some(h) => {
                    s.push_str("            \"stall_wait\": {\n");
                    let _ = writeln!(s, "              \"count\": {},", h.count);
                    let _ = writeln!(s, "              \"sum_ns\": {},", h.sum_ns);
                    let _ = writeln!(s, "              \"mean_ns\": {:.1},", h.mean_ns());
                    let _ = writeln!(
                        s,
                        "              \"p50_ns\": {},",
                        h.quantile_upper_bound(0.50)
                    );
                    let _ = writeln!(
                        s,
                        "              \"p90_ns\": {},",
                        h.quantile_upper_bound(0.90)
                    );
                    let _ = writeln!(
                        s,
                        "              \"p99_ns\": {},",
                        h.quantile_upper_bound(0.99)
                    );
                    let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
                    let _ = writeln!(
                        s,
                        "              \"log2_buckets\": [{}]",
                        buckets.join(", ")
                    );
                    s.push_str("            }\n");
                }
                None => s.push_str("            \"stall_wait\": null\n"),
            }
            s.push_str("          }");
            s.push_str(if j + 1 < r.real.len() { ",\n" } else { "\n" });
        }
        s.push_str("        ]\n      }\n    }");
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

// ---- JSON validation ----
//
// Parsing is the shared `crossinvoc_bench::json` reader (the workspace
// vendors no JSON library); this file only checks the report structures,
// dispatching on the `schema` field.

/// Parses `text`, dispatches on its `schema` field and checks the
/// corresponding structural contract. Returns a one-line description.
fn validate_report(text: &str) -> Result<String, String> {
    let root = json::parse(text)?;
    match root.get("schema") {
        Some(Json::Str(s)) if s == "crossinvoc-bench-3" => validate_bench3(&root),
        Some(Json::Str(s)) if s == "crossinvoc-bench-5" => validate_bench5(&root),
        Some(Json::Str(s)) if s == "crossinvoc-bench-7" => validate_bench7(&root),
        Some(Json::Str(s)) if s == "crossinvoc-bench-8" => validate_bench8(&root),
        Some(Json::Str(s)) if s == "crossinvoc-bench-9" => validate_bench9(&root),
        Some(Json::Str(s)) if s == "crossinvoc-bench-10" => validate_bench10(&root),
        other => Err(format!("bad schema field: {other:?}")),
    }
}

fn validate_bench10(root: &Json) -> Result<String, String> {
    let criteria = root.get("criteria").ok_or("missing criteria")?;
    for field in [
        "pass",
        "registry_identical",
        "clustered_zero_checks",
        "mixed_verdicts_identical",
    ] {
        if !matches!(criteria.get(field), Some(Json::Bool(_))) {
            return Err(format!("criteria.{field} must be a bool"));
        }
    }
    for field in ["combined_ratio", "share_factor"] {
        if !matches!(criteria.get(field), Some(Json::Num(_))) {
            return Err(format!("criteria.{field} must be a number"));
        }
    }
    let rows = match root.get("registry") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        _ => return Err("registry must be a non-empty array".into()),
    };
    for row in rows {
        if !matches!(row.get("name"), Some(Json::Str(_))) {
            return Err("registry row missing name".into());
        }
        for field in ["realized", "digest_identical", "verdicts_identical"] {
            if !matches!(row.get(field), Some(Json::Bool(_))) {
                return Err(format!("registry row field {field} must be a bool"));
            }
        }
        for field in ["proven_epochs", "elided_admits"] {
            if !matches!(row.get(field), Some(Json::Num(_))) {
                return Err(format!("registry row field {field} must be a number"));
            }
        }
    }
    let checker = root.get("checker").ok_or("missing checker section")?;
    for (section, sides) in [
        ("clustered", &["elide_off", "elide_on"][..]),
        ("mixed", &["bare", "summaries", "summaries_elide"][..]),
    ] {
        let sec = checker
            .get(section)
            .ok_or_else(|| format!("checker missing {section}"))?;
        for side in sides {
            let c = sec
                .get(side)
                .ok_or_else(|| format!("checker.{section} missing {side}"))?;
            for field in ["check_requests", "comparisons", "elided_admits"] {
                if !matches!(c.get(field), Some(Json::Num(_))) {
                    return Err(format!("checker.{section}.{side}.{field} must be a number"));
                }
            }
        }
    }
    Ok(format!(
        "valid BENCH_10 report, {} registry kernels",
        rows.len()
    ))
}

fn validate_bench3(root: &Json) -> Result<String, String> {
    let criteria = root.get("criteria").ok_or("missing criteria")?;
    if !matches!(criteria.get("pass"), Some(Json::Bool(_))) {
        return Err("criteria.pass must be a bool".into());
    }
    let kernels = match root.get("kernels") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        _ => return Err("kernels must be a non-empty array".into()),
    };
    for kernel in kernels {
        let name = match kernel.get("name") {
            Some(Json::Str(n)) => n.clone(),
            _ => return Err("kernel missing name".into()),
        };
        for section in ["sim", "real"] {
            let configs = kernel
                .get(section)
                .and_then(|s| s.get("configs"))
                .ok_or_else(|| format!("{name}: missing {section}.configs"))?;
            match configs {
                Json::Arr(items) if !items.is_empty() => {}
                _ => return Err(format!("{name}: {section}.configs empty")),
            }
        }
    }
    Ok(format!("valid BENCH_3 report, {} kernels", kernels.len()))
}

fn validate_bench5(root: &Json) -> Result<String, String> {
    let criteria = root.get("criteria").ok_or("missing criteria")?;
    if !matches!(criteria.get("pass"), Some(Json::Bool(_))) {
        return Err("criteria.pass must be a bool".into());
    }
    let checker = root.get("checker").ok_or("missing checker section")?;
    for side in ["summaries_on", "summaries_off"] {
        let c = checker
            .get(side)
            .ok_or_else(|| format!("checker missing {side}"))?;
        for field in ["comparisons", "check_requests"] {
            if !matches!(c.get(field), Some(Json::Num(_))) {
                return Err(format!("checker.{side}.{field} must be a number"));
            }
        }
    }
    if !matches!(checker.get("pruning_ratio"), Some(Json::Num(_))) {
        return Err("checker.pruning_ratio must be a number".into());
    }
    let kernels = match root.get("memo").and_then(|m| m.get("kernels")) {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        _ => return Err("memo.kernels must be a non-empty array".into()),
    };
    for kernel in kernels {
        if !matches!(kernel.get("name"), Some(Json::Str(_)))
            || !matches!(kernel.get("hit_rate"), Some(Json::Num(_)))
        {
            return Err("memo kernel needs name and hit_rate".into());
        }
    }
    Ok(format!(
        "valid BENCH_5 report, {} memo kernels",
        kernels.len()
    ))
}

fn validate_bench7(root: &Json) -> Result<String, String> {
    let criteria = root.get("criteria").ok_or("missing criteria")?;
    if !matches!(criteria.get("pass"), Some(Json::Bool(_))) {
        return Err("criteria.pass must be a bool".into());
    }
    if !matches!(criteria.get("verdicts_identical"), Some(Json::Bool(_))) {
        return Err("criteria.verdicts_identical must be a bool".into());
    }
    if !matches!(criteria.get("share_factor"), Some(Json::Num(_))) {
        return Err("criteria.share_factor must be a number".into());
    }
    let rows = match root.get("checker").and_then(|c| c.get("shards")) {
        Some(Json::Arr(items)) if items.len() >= 2 => items,
        _ => return Err("checker.shards needs the baseline and ≥1 sharded row".into()),
    };
    for row in rows {
        for field in ["shards", "checker_wait_share", "misspeculations", "tasks"] {
            if !matches!(row.get(field), Some(Json::Num(_))) {
                return Err(format!("shard row field {field} must be a number"));
            }
        }
    }
    Ok(format!("valid BENCH_7 report, {} shard rows", rows.len()))
}

fn validate_bench8(root: &Json) -> Result<String, String> {
    let criteria = root.get("criteria").ok_or("missing criteria")?;
    for field in ["pass", "identical", "isolation"] {
        if !matches!(criteria.get(field), Some(Json::Bool(_))) {
            return Err(format!("criteria.{field} must be a bool"));
        }
    }
    if !matches!(criteria.get("ratio"), Some(Json::Num(_))) {
        return Err("criteria.ratio must be a number".into());
    }
    let throughput = root.get("throughput").ok_or("missing throughput")?;
    for field in ["makespan_ns", "region_at_a_time_ns", "ratio"] {
        if !matches!(throughput.get(field), Some(Json::Num(_))) {
            return Err(format!("throughput.{field} must be a number"));
        }
    }
    let isolation = root.get("isolation").ok_or("missing isolation")?;
    if !matches!(isolation.get("contained"), Some(Json::Bool(_))) {
        return Err("isolation.contained must be a bool".into());
    }
    let regions = match root.get("regions") {
        Some(Json::Arr(items)) if items.len() >= 2 => items,
        _ => return Err("regions needs at least two concurrent rows".into()),
    };
    for row in regions {
        if !matches!(row.get("region_id"), Some(Json::Num(_)))
            || !matches!(row.get("gang"), Some(Json::Num(_)))
            || !matches!(row.get("kind"), Some(Json::Str(_)))
        {
            return Err("region row needs region_id, gang and kind".into());
        }
        for field in ["identical", "isolated"] {
            if !matches!(row.get(field), Some(Json::Bool(_))) {
                return Err(format!("region row field {field} must be a bool"));
            }
        }
    }
    Ok(format!("valid BENCH_8 report, {} regions", regions.len()))
}

fn validate_bench9(root: &Json) -> Result<String, String> {
    let criteria = root.get("criteria").ok_or("missing criteria")?;
    for field in ["pass", "identical", "consistency", "flight", "overhead"] {
        if !matches!(criteria.get(field), Some(Json::Bool(_))) {
            return Err(format!("criteria.{field} must be a bool"));
        }
    }
    let overhead = root.get("overhead").ok_or("missing overhead")?;
    for field in ["best_off_ns", "best_on_ns", "throughput_ratio", "min_ratio"] {
        if !matches!(overhead.get(field), Some(Json::Num(_))) {
            return Err(format!("overhead.{field} must be a number"));
        }
    }
    let consistency = root.get("consistency").ok_or("missing consistency")?;
    if !matches!(
        consistency.get("snapshot_matches_final"),
        Some(Json::Bool(_))
    ) {
        return Err("consistency.snapshot_matches_final must be a bool".into());
    }
    let flight = root.get("flight").ok_or("missing flight")?;
    for field in ["dumps", "region_id", "records", "dropped"] {
        if !matches!(flight.get(field), Some(Json::Num(_))) {
            return Err(format!("flight.{field} must be a number"));
        }
    }
    if !matches!(flight.get("roundtrip"), Some(Json::Bool(_))) {
        return Err("flight.roundtrip must be a bool".into());
    }
    let ratio = overhead
        .get("throughput_ratio")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    Ok(format!("valid BENCH_9 report, throughput ratio {ratio:.4}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["{", "[1,]", "{\"a\": }", "{} trailing", "{\"a\"; 1}"] {
            assert!(validate_report(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn structural_contract_is_enforced() {
        // Parses fine, but violates the report shape.
        let err =
            validate_report(r#"{"schema": "crossinvoc-bench-3", "kernels": []}"#).unwrap_err();
        assert!(err.contains("criteria"), "{err}");
    }

    #[test]
    fn bench5_contract_is_enforced() {
        let err =
            validate_report(r#"{"schema": "crossinvoc-bench-5", "criteria": {"pass": true}}"#)
                .unwrap_err();
        assert!(err.contains("checker"), "{err}");

        let ok = r#"{
          "schema": "crossinvoc-bench-5",
          "criteria": {"pass": false},
          "checker": {
            "pruning_ratio": 6.5,
            "summaries_on": {"comparisons": 10, "check_requests": 5},
            "summaries_off": {"comparisons": 65, "check_requests": 5}
          },
          "memo": {"kernels": [{"name": "JACOBI", "hit_rate": 0.99}]}
        }"#;
        let desc = validate_report(ok).unwrap();
        assert!(desc.contains("BENCH_5"), "{desc}");

        let no_rate = ok.replace("\"hit_rate\": 0.99", "\"hit_rate\": \"high\"");
        assert!(validate_report(&no_rate).is_err());
    }

    #[test]
    fn bench7_contract_is_enforced() {
        let err =
            validate_report(r#"{"schema": "crossinvoc-bench-7", "criteria": {"pass": true}}"#)
                .unwrap_err();
        assert!(err.contains("verdicts_identical"), "{err}");

        let ok = r#"{
          "schema": "crossinvoc-bench-7",
          "criteria": {"pass": true, "verdicts_identical": true, "share_factor": 0.82},
          "checker": {"shards": [
            {"shards": 1, "checker_wait_share": 0.3, "misspeculations": 0, "tasks": 1920},
            {"shards": 4, "checker_wait_share": 0.246, "misspeculations": 0, "tasks": 1920}
          ]}
        }"#;
        let desc = validate_report(ok).unwrap();
        assert!(desc.contains("BENCH_7"), "{desc}");

        // The baseline row alone is not a sweep.
        let one_row = ok.replace(
            ",\n            {\"shards\": 4, \"checker_wait_share\": 0.246, \
             \"misspeculations\": 0, \"tasks\": 1920}",
            "",
        );
        assert!(validate_report(&one_row).is_err());
    }

    #[test]
    fn bench8_contract_is_enforced() {
        let err =
            validate_report(r#"{"schema": "crossinvoc-bench-8", "criteria": {"pass": true}}"#)
                .unwrap_err();
        assert!(err.contains("identical"), "{err}");

        let ok = r#"{
          "schema": "crossinvoc-bench-8",
          "criteria": {"pass": true, "identical": true, "isolation": true, "ratio": 1.9},
          "throughput": {"makespan_ns": 100, "region_at_a_time_ns": 190, "ratio": 1.9},
          "isolation": {"faulted_region": 1, "contained": true},
          "regions": [
            {"region_id": 1, "kind": "speccross", "gang": 3, "identical": true, "isolated": true},
            {"region_id": 2, "kind": "domore", "gang": 2, "identical": true, "isolated": true}
          ]
        }"#;
        let desc = validate_report(ok).unwrap();
        assert!(desc.contains("BENCH_8"), "{desc}");

        // One region is not a saturation batch.
        let one_region = ok.replace(
            ",\n            {\"region_id\": 2, \"kind\": \"domore\", \"gang\": 2, \
             \"identical\": true, \"isolated\": true}",
            "",
        );
        assert!(validate_report(&one_region).is_err());

        let bad_iso = ok.replace("\"contained\": true", "\"contained\": \"yes\"");
        assert!(validate_report(&bad_iso).is_err());
    }

    #[test]
    fn bench10_contract_is_enforced() {
        let err =
            validate_report(r#"{"schema": "crossinvoc-bench-10", "criteria": {"pass": true}}"#)
                .unwrap_err();
        assert!(err.contains("registry_identical"), "{err}");

        let ok = r#"{
          "schema": "crossinvoc-bench-10",
          "criteria": {"pass": true, "registry_identical": true,
                       "clustered_zero_checks": true, "mixed_verdicts_identical": true,
                       "combined_ratio": 14.2, "share_factor": 0.41},
          "registry": [
            {"name": "FDTD", "epochs": 8, "proven_epochs": 0, "realized": true,
             "digest_identical": true, "verdicts_identical": true, "elided_admits": 0}
          ],
          "checker": {
            "clustered": {
              "elide_off": {"check_requests": 90, "comparisons": 200, "elided_admits": 0},
              "elide_on": {"check_requests": 0, "comparisons": 0, "elided_admits": 96}
            },
            "mixed": {
              "bare": {"check_requests": 90, "comparisons": 900, "elided_admits": 0},
              "summaries": {"check_requests": 90, "comparisons": 120, "elided_admits": 0},
              "summaries_elide": {"check_requests": 45, "comparisons": 40, "elided_admits": 48}
            }
          }
        }"#;
        let desc = validate_report(ok).unwrap();
        assert!(desc.contains("BENCH_10"), "{desc}");

        // A registry sweep with no rows is no transparency evidence.
        let empty = ok.replace(
            "{\"name\": \"FDTD\", \"epochs\": 8, \"proven_epochs\": 0, \"realized\": true,\n             \
             \"digest_identical\": true, \"verdicts_identical\": true, \"elided_admits\": 0}",
            "",
        );
        assert!(validate_report(&empty).is_err());

        let no_realized = ok.replace("\"realized\": true", "\"realized\": 1");
        assert!(validate_report(&no_realized).is_err());

        let bad_digest = ok.replace("\"digest_identical\": true", "\"digest_identical\": 1");
        assert!(validate_report(&bad_digest).is_err());

        let no_side = ok.replace("\"summaries_elide\"", "\"other\"");
        assert!(validate_report(&no_side).is_err());
    }

    #[test]
    fn bench9_contract_is_enforced() {
        let err =
            validate_report(r#"{"schema": "crossinvoc-bench-9", "criteria": {"pass": true}}"#)
                .unwrap_err();
        assert!(err.contains("identical"), "{err}");

        let ok = r#"{
          "schema": "crossinvoc-bench-9",
          "criteria": {"pass": true, "identical": true, "consistency": true,
                       "flight": true, "overhead": true},
          "overhead": {"spin_ns": 200000, "reps": 3, "best_off_ns": 51000000,
                       "best_on_ns": 51200000, "throughput_ratio": 0.9961, "min_ratio": 0.97},
          "consistency": {"regions": 4, "snapshot_matches_final": true,
                          "admissions": 9, "clean_run_dumps": 0},
          "flight": {"dumps": 1, "region_id": 1, "trigger": "fault",
                     "records": 120, "dropped": 0, "roundtrip": true}
        }"#;
        let desc = validate_report(ok).unwrap();
        assert!(desc.contains("BENCH_9"), "{desc}");

        // The overhead gate cannot be reported without its measurement.
        let no_ratio = ok.replace("\"throughput_ratio\": 0.9961, ", "");
        assert!(validate_report(&no_ratio).is_err());

        let bad_roundtrip = ok.replace("\"roundtrip\": true", "\"roundtrip\": \"yes\"");
        assert!(validate_report(&bad_roundtrip).is_err());
    }
}
