//! EQUAKE — the SPECfp earthquake ground-motion simulation (Table 5.1,
//! Fig. 5.2(b)).
//!
//! Each timestep performs a sparse matrix–vector product over the finite
//! element mesh followed by velocity and displacement integrations — three
//! epochs per step. Tasks are node *chunks* (Table 5.3's 22 tasks per
//! epoch). The integration is leapfrog-style: the SMVP reads the
//! displacement written two steps earlier (double-buffered), so the
//! closest cross-invocation dependences sit a couple of epochs away and
//! speculation pays off (Table 5.3 profiles no near conflict for EQUAKE).

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The EQUAKE workload model.
#[derive(Debug, Clone)]
pub struct Equake {
    /// Node chunks per phase (tasks per epoch).
    chunks: usize,
    /// Timesteps (epochs = 3 × steps).
    steps: usize,
    /// Sparse neighbours each chunk reaches into, per side.
    reach: usize,
    seed: u64,
}

impl Equake {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            chunks: scale.pick(10, 22),
            steps: scale.pick(12, 1000),
            reach: 2,
            seed,
        }
    }

    /// Double-buffered displacement (leapfrog integration).
    fn disp(&self, parity: usize) -> usize {
        parity * self.chunks
    }
    fn force(&self) -> usize {
        2 * self.chunks
    }
    fn vel(&self) -> usize {
        3 * self.chunks
    }
}

impl SimWorkload for Equake {
    fn num_invocations(&self) -> usize {
        3 * self.steps
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.chunks
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        // Sparse rows have very uneven lengths: strong imbalance, which is
        // what makes EQUAKE's barriers expensive (Fig. 4.3).
        4_000 + splitmix64(self.seed ^ ((inv * 269 + iter) as u64)) % 6_000
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let step = inv / 3;
        match inv % 3 {
            0 => {
                // smvp: force[c] ← disp_old[c ± mesh neighbours], where
                // disp_old was written two steps earlier (leapfrog).
                let old = self.disp(step % 2);
                for k in 0..=self.reach {
                    let n = (iter + self.chunks - self.reach / 2 + k) % self.chunks;
                    out.push((old + n, AccessKind::Read));
                }
                out.push((self.force() + iter, AccessKind::Write));
            }
            1 => {
                // velocity integration: vel[c] ← force[c]
                out.push((self.force() + iter, AccessKind::Read));
                out.push((self.vel() + iter, AccessKind::Write));
            }
            _ => {
                // displacement integration: disp_cur[c] ← vel[c]
                out.push((self.vel() + iter, AccessKind::Read));
                out.push((self.disp(step % 2) + iter, AccessKind::Write));
            }
        }
    }

    fn address_space(&self) -> Option<usize> {
        Some(4 * self.chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_runtime::RangeSignature;
    use crossinvoc_speccross::prelude::*;
    use crossinvoc_speccross::SpecCrossEngine;

    #[test]
    fn leapfrog_keeps_conflicts_at_least_an_epoch_away() {
        let e = Equake::new(Scale::Test, 4);
        let p = profile_distance(&e, 8);
        let d = p.min_distance.expect("force/vel chains must conflict");
        assert!(
            d >= e.chunks as u64 / 2,
            "double buffering pushes conflicts out, got {d}"
        );
    }

    #[test]
    fn task_costs_are_uneven() {
        let e = Equake::new(Scale::Test, 4);
        let costs: Vec<u64> = (0..e.chunks).map(|c| e.iteration_cost(0, c)).collect();
        let (min, max) = (costs.iter().min().unwrap(), costs.iter().max().unwrap());
        assert!(max > &(min + 1_000), "sparse rows are imbalanced");
    }

    #[test]
    fn speccross_execution_matches_sequential() {
        let model = Equake::new(Scale::Test, 4);
        let d = profile_distance(&model, 6).min_distance;
        let kernel = AccessKernel::from_model(model);
        let expected = kernel.sequential_checksum();
        let report =
            SpecCrossEngine::<RangeSignature>::new(SpecConfig::with_workers(2).spec_distance(d))
                .execute(&kernel)
                .unwrap();
        assert_eq!(kernel.checksum(), expected);
        assert_eq!(report.stats.misspeculations, 0);
    }
}
