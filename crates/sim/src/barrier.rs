//! Barrier-synchronized parallel executor (the `pthread barrier` baseline).
//!
//! The conventional plan of Fig. 1.3(b): the inner loop's iterations are
//! distributed round-robin over the workers; after every invocation all
//! workers meet at a global barrier; the sequential prologue is executed
//! redundantly by every worker (as the thesis' generated `par_f` does).
//! Per-thread idle time — the gap between a thread's arrival at the barrier
//! and the slowest thread's — is what Fig. 4.3 reports as barrier overhead.

use crossinvoc_runtime::stats::RegionStats;
use crossinvoc_runtime::trace::{Event, WakeEdge};

use crate::cost::CostModel;
use crate::result::SimResult;
use crate::tracing::SimSinks;
use crate::workload::SimWorkload;

/// Simulates barrier-synchronized parallel execution on `threads` workers.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn barrier<W: SimWorkload + ?Sized>(
    workload: &W,
    threads: usize,
    cost: &CostModel,
) -> SimResult {
    barrier_traced(workload, threads, cost, None)
}

/// Like [`barrier`], but optionally records a virtual-time execution trace
/// with `trace_capacity` records per thread — the same JSONL schema the
/// engines emit (see `docs/OBSERVABILITY.md`), so the barrier-idle
/// breakdown of Fig. 4.3 can be reconstructed from the trace alone.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn barrier_traced<W: SimWorkload + ?Sized>(
    workload: &W,
    threads: usize,
    cost: &CostModel,
    trace_capacity: Option<usize>,
) -> SimResult {
    barrier_in_region(workload, threads, cost, trace_capacity, 0)
}

/// [`barrier_traced`] with the trace attributed to a region-server
/// submission id (`region_id = 0` keeps the solo wire format; see
/// `docs/OBSERVABILITY.md`).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn barrier_in_region<W: SimWorkload + ?Sized>(
    workload: &W,
    threads: usize,
    cost: &CostModel,
    trace_capacity: Option<usize>,
    region_id: u64,
) -> SimResult {
    assert!(threads > 0, "at least one thread is required");
    let stats = RegionStats::new();
    let mut sinks = SimSinks::new(threads, 0, trace_capacity.unwrap_or(0)).region(region_id);
    let mut clocks = vec![0u64; threads];
    let mut busy = vec![0u64; threads];
    let mut idle = vec![0u64; threads];

    for inv in 0..workload.num_invocations() {
        stats.add_epoch();
        let prologue = workload.prologue_cost(inv);
        for (clock, b) in clocks.iter_mut().zip(busy.iter_mut()) {
            *clock += prologue;
            *b += prologue;
        }
        sinks.workers[0].emit_at(clocks[0], Event::EpochBegin { epoch: inv as u32 });
        let iterations = workload.num_iterations(inv);
        for iter in 0..iterations {
            let tid = iter % threads;
            let work = workload.iteration_cost(inv, iter);
            sinks.workers[tid].emit_at(
                clocks[tid],
                Event::TaskDispatch {
                    epoch: inv as u32,
                    task: iter as u64,
                },
            );
            clocks[tid] += work;
            busy[tid] += work;
            sinks.workers[tid].emit_at(
                clocks[tid],
                Event::TaskRetire {
                    epoch: inv as u32,
                    task: iter as u64,
                },
            );
            stats.add_task();
        }
        // Global synchronization: everyone waits for the slowest, then pays
        // the barrier release cost.
        let slowest = *clocks.iter().max().expect("threads > 0");
        // The slowest arrival (smallest tid on ties, deterministically) is
        // the release's causal source.
        let releaser = clocks.iter().position(|&c| c == slowest).expect("nonempty");
        for (tid, (clock, i)) in clocks.iter_mut().zip(idle.iter_mut()).enumerate() {
            let wait = slowest - *clock;
            sinks.workers[tid].emit_at(*clock, Event::BarrierEnter { epoch: inv as u32 });
            *i += wait;
            *clock = slowest + cost.barrier_ns(threads);
            sinks.workers[tid].emit_at(
                *clock,
                Event::BarrierLeave {
                    epoch: inv as u32,
                    wait_ns: wait,
                },
            );
            if wait > 0 {
                sinks.workers[tid].emit_at(
                    *clock,
                    Event::Wake {
                        edge: WakeEdge::Barrier,
                        src_tid: releaser,
                        seq: inv as u64,
                    },
                );
            }
        }
        sinks.workers[0].emit_at(clocks[0], Event::EpochEnd { epoch: inv as u32 });
    }

    SimResult {
        total_ns: clocks.into_iter().max().unwrap_or(0),
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded: false,
        trace: sinks.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::sequential;
    use crate::workload::{SimWorkload, UniformWorkload};
    use crossinvoc_runtime::signature::AccessKind;

    #[test]
    fn balanced_work_scales_nearly_linearly() {
        let w = UniformWorkload::independent(10, 64, 10_000);
        let seq = sequential(&w, &CostModel::free());
        let par = barrier(&w, 8, &CostModel::free());
        let speedup = par.speedup_over(seq.total_ns);
        assert!((speedup - 8.0).abs() < 1e-9, "frictionless: {speedup}");
    }

    #[test]
    fn barrier_cost_caps_scaling_for_many_invocations() {
        // Tiny invocations: barrier cost dominates, so 24 threads are no
        // better than 8 — the motivating observation of Chapter 1.
        let w = UniformWorkload::independent(1_000, 24, 500);
        let seq = sequential(&w, &CostModel::default());
        let s8 = barrier(&w, 8, &CostModel::default()).speedup_over(seq.total_ns);
        let s24 = barrier(&w, 24, &CostModel::default()).speedup_over(seq.total_ns);
        assert!(
            s24 < s8 * 2.0,
            "tripling threads must not triple speedup: {s8} vs {s24}"
        );
    }

    /// Uneven task costs: one straggler per invocation forces everyone else
    /// to idle at the barrier.
    struct Straggler;
    impl SimWorkload for Straggler {
        fn num_invocations(&self) -> usize {
            20
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            8
        }
        fn iteration_cost(&self, _inv: usize, iter: usize) -> u64 {
            if iter == 0 {
                10_000
            } else {
                1_000
            }
        }
        fn accesses(&self, _inv: usize, _iter: usize, _out: &mut Vec<(usize, AccessKind)>) {}
    }

    #[test]
    fn imbalance_shows_up_as_idle_time() {
        let r = barrier(&Straggler, 8, &CostModel::free());
        assert!(r.idle_fraction() > 0.5, "idle {}", r.idle_fraction());
        // Thread 0 (the straggler owner) never waits.
        assert_eq!(r.idle_ns[0], 0);
    }

    #[test]
    fn traced_barrier_reconstructs_the_idle_fraction() {
        use crossinvoc_runtime::trace::TraceReport;
        let r = barrier_traced(&Straggler, 8, &CostModel::free(), Some(1 << 14));
        let trace = r.trace.as_ref().expect("tracing was requested");
        let report = TraceReport::from_trace(trace);
        // Barrier waits in the trace reproduce the timeline's idle fraction
        // (free cost model: no release cost, so the two accountings agree).
        assert!((report.barrier_idle_fraction() - r.idle_fraction()).abs() < 1e-9);
    }

    #[test]
    fn single_thread_has_no_imbalance_idle() {
        let r = barrier(&Straggler, 1, &CostModel::free());
        assert_eq!(r.idle_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        barrier(&Straggler, 0, &CostModel::free());
    }
}
