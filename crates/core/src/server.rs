//! Region-server mode: one long-lived worker pool serving many concurrent
//! speculative regions.
//!
//! The classic entry points ([`SpecCrossEngine::execute`],
//! [`DomoreRuntime::execute`]) spawn a fresh scoped gang per region — fine
//! for one region at a time, wasteful and oversubscribing when a program has
//! many independent parallelized loop nests in flight. The [`RegionServer`]
//! owns a single [`WorkerPool`] and admits whole regions through a
//! submission front door:
//!
//! ```text
//!   submit_spec ──┐                       ┌─ worker/checker roles ─┐
//!   submit_domore ─┼─► region manager ───►│  shared WorkerPool     │─► Report
//!   submit_spec ──┘   (one thread each)   └─ FIFO gang admission ──┘
//! ```
//!
//! Each submission spawns one cheap *manager* thread that runs the engine's
//! `execute_on` against the shared pool. All per-region state — checker
//! shards, shadow memory, schedule memo, metrics, trace sinks, fault
//! budgets, degradation policy — lives in that manager's call frame, so a
//! panicking, degrading, or misspeculating region cannot poison its
//! neighbours: the pool's job wrapper contains role panics and re-raises
//! them only on the submitting manager, whose [`RegionHandle::join`] turns
//! them into [`RegionError::Panicked`].
//!
//! Fairness comes from the pool's all-or-nothing FIFO ticket admission:
//! gangs are granted in submission order and a wide region cannot be starved
//! by a stream of narrow ones (see [`crossinvoc_runtime::pool`]).
//!
//! Traces are attributed per region: the submitted `region_id` is stamped
//! into the engine config, and every JSONL record of that region's trace
//! carries a `region_id` field (id 0 stays wire-invisible, so solo traces
//! are byte-identical to the pre-region schema).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossinvoc_domore::runtime::{DomoreConfig, DomoreError, DomoreRuntime, ExecutionReport};
use crossinvoc_runtime::pool::WorkerPool;
use crossinvoc_runtime::signature::AccessSignature;
use crossinvoc_runtime::telemetry::{RegionTelemetry, RegistrySnapshot, ServerRegistry};
use crossinvoc_speccross::engine::{SpecConfig, SpecCrossEngine, SpecError, SpecReport};
use crossinvoc_speccross::workload::SpecWorkload;

use crossinvoc_domore::workload::DomoreWorkload;

/// Outcome of a region served by the [`RegionServer`].
#[derive(Debug, Clone)]
pub enum RegionReport {
    /// The region ran on the SPECCROSS engine.
    Spec(SpecReport),
    /// The region ran on the DOMORE runtime.
    Domore(ExecutionReport),
}

impl RegionReport {
    /// The SPECCROSS report, if this was a SPECCROSS region.
    pub fn spec(&self) -> Option<&SpecReport> {
        match self {
            RegionReport::Spec(r) => Some(r),
            RegionReport::Domore(_) => None,
        }
    }

    /// The DOMORE report, if this was a DOMORE region.
    pub fn domore(&self) -> Option<&ExecutionReport> {
        match self {
            RegionReport::Spec(_) => None,
            RegionReport::Domore(r) => Some(r),
        }
    }
}

/// Failure of a region served by the [`RegionServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// The SPECCROSS engine reported an error.
    Spec(SpecError),
    /// The DOMORE runtime reported an error.
    Domore(DomoreError),
    /// The region's manager thread panicked (an uncontained role panic is
    /// re-raised there by the pool). The payload message is preserved when
    /// it was a string.
    Panicked(String),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::Spec(e) => write!(f, "speccross region failed: {e}"),
            RegionError::Domore(e) => write!(f, "domore region failed: {e}"),
            RegionError::Panicked(msg) => write!(f, "region manager panicked: {msg}"),
        }
    }
}

impl std::error::Error for RegionError {}

/// A joinable in-flight region submission.
#[derive(Debug)]
pub struct RegionHandle {
    region_id: u64,
    thread: thread::JoinHandle<Result<RegionReport, RegionError>>,
}

impl RegionHandle {
    /// The id this region's trace records are attributed to.
    pub fn region_id(&self) -> u64 {
        self.region_id
    }

    /// Blocks until the region completes and returns its report.
    ///
    /// # Errors
    ///
    /// [`RegionError::Spec`]/[`RegionError::Domore`] when the engine failed
    /// the region; [`RegionError::Panicked`] when the manager thread died.
    pub fn join(self) -> Result<RegionReport, RegionError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(RegionError::Panicked(msg))
            }
        }
    }
}

/// A long-lived server executing speculative regions on one shared pool.
///
/// See the [module docs](self) for the architecture; `tests/runtime_stress.rs`
/// exercises the fault-isolation matrix and `bench-suite --regions` gates
/// saturation behaviour in CI (BENCH_8).
#[derive(Debug, Clone)]
pub struct RegionServer {
    pool: Arc<WorkerPool>,
    next_region: Arc<std::sync::atomic::AtomicU64>,
    registry: Option<Arc<ServerRegistry>>,
}

impl RegionServer {
    /// Creates a server backed by a pool of `threads` workers.
    ///
    /// `threads` bounds the *sum of concurrently running gangs*, not the
    /// per-region width: a SPECCROSS region needs
    /// `num_workers + checker_shards` slots, a DOMORE region `num_workers`
    /// (its scheduler rides the manager thread). A region demanding more
    /// than `threads` slots is rejected with `InvalidConfig` at submission
    /// execution time rather than deadlocking.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: Arc::new(WorkerPool::new(threads)),
            next_region: Arc::new(std::sync::atomic::AtomicU64::new(1)),
            registry: None,
        }
    }

    /// Creates a telemetry-enabled server: every submission is registered in
    /// `registry`, the pool's admission/busy hot paths feed its pool gauges,
    /// and — when the registry carries a
    /// [`crossinvoc_runtime::telemetry::FlightRecorder`] — regions with
    /// tracing off get their trace rings armed at the recorder's capacity so
    /// a post-mortem dump is always available.
    ///
    /// The registry's `pool_slots` should equal `threads`; the utilization
    /// gauge is computed against it.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_telemetry(threads: usize, registry: ServerRegistry) -> Self {
        let registry = Arc::new(registry);
        let pool = Arc::new(WorkerPool::new(threads));
        pool.attach_telemetry(Arc::clone(&registry));
        Self {
            pool,
            next_region: Arc::new(std::sync::atomic::AtomicU64::new(1)),
            registry: Some(registry),
        }
    }

    /// The live telemetry registry, when this server was built with
    /// [`RegionServer::with_telemetry`].
    pub fn registry(&self) -> Option<&Arc<ServerRegistry>> {
        self.registry.as_ref()
    }

    /// Registers a region cell and stamps the engine config, arming the
    /// flight-recorder trace ring when the caller left tracing off.
    fn register_spec(
        &self,
        region_id: u64,
        kind: &'static str,
        gang: usize,
        mut config: SpecConfig,
    ) -> (SpecConfig, Option<Arc<RegionTelemetry>>) {
        let Some(registry) = &self.registry else {
            return (config, None);
        };
        if let Some(recorder) = registry.flight_recorder() {
            config = config.trace_default(recorder.capacity());
        }
        let cell = registry.register(region_id, kind, gang);
        config = config.telemetry(Arc::clone(&cell));
        (config, Some(cell))
    }

    /// Spawns a snapshot pump: a background thread that snapshots the
    /// registry every `interval`, hands each [`RegistrySnapshot`] to `sink`
    /// (e.g. a JSONL writer feeding `server-stats --follow`), and emits one
    /// final snapshot when stopped. Returns `None` when the server has no
    /// telemetry registry.
    pub fn spawn_snapshot_pump<F>(&self, interval: Duration, mut sink: F) -> Option<TelemetryPump>
    where
        F: FnMut(RegistrySnapshot) + Send + 'static,
    {
        let registry = Arc::clone(self.registry.as_ref()?);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("crossinvoc-telemetry-pump".to_string())
            .spawn(move || loop {
                if stop_flag.load(Ordering::Acquire) {
                    sink(registry.snapshot());
                    return;
                }
                sink(registry.snapshot());
                thread::park_timeout(interval);
            })
            .expect("spawn telemetry pump thread");
        Some(TelemetryPump {
            stop,
            thread: Some(thread),
        })
    }

    /// The shared pool, for callers that want to run `execute_on` inline on
    /// the current thread instead of through a manager.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Allocates a fresh nonzero region id (process-unique per server).
    pub fn next_region_id(&self) -> u64 {
        self.next_region
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Submits a SPECCROSS region (speculative-barrier mode).
    ///
    /// The engine runs `config.region(region_id)`, so the region's trace is
    /// attributed to `region_id`. Returns immediately; the region executes
    /// concurrently with any other in-flight submissions.
    pub fn submit_spec<S, W>(
        &self,
        region_id: u64,
        config: SpecConfig,
        workload: Arc<W>,
    ) -> RegionHandle
    where
        S: AccessSignature + 'static,
        W: SpecWorkload + Send + Sync + 'static,
    {
        let gang = config.num_workers + config.checker_shards;
        let (config, cell) = self.register_spec(region_id, "speccross", gang, config);
        let pool = Arc::clone(&self.pool);
        let thread = thread::Builder::new()
            .name(format!("crossinvoc-region-{region_id}"))
            .spawn(move || {
                let engine = SpecCrossEngine::<S>::new(config.region(region_id));
                let result = engine.execute_on(&*workload, &*pool);
                // Safety net for errors raised before the engine's own
                // lifecycle calls (e.g. config validation); the first
                // complete/fail wins, so this is a no-op on normal paths.
                if let (Err(_), Some(cell)) = (&result, &cell) {
                    cell.fail(None);
                }
                result.map(RegionReport::Spec).map_err(RegionError::Spec)
            })
            .expect("spawn region manager thread");
        RegionHandle { region_id, thread }
    }

    /// Submits a SPECCROSS region in non-speculative barrier mode.
    pub fn submit_spec_barriers<S, W>(
        &self,
        region_id: u64,
        config: SpecConfig,
        workload: Arc<W>,
    ) -> RegionHandle
    where
        S: AccessSignature + 'static,
        W: SpecWorkload + Send + Sync + 'static,
    {
        let gang = config.num_workers;
        let (config, cell) = self.register_spec(region_id, "speccross-barrier", gang, config);
        let pool = Arc::clone(&self.pool);
        let thread = thread::Builder::new()
            .name(format!("crossinvoc-region-{region_id}"))
            .spawn(move || {
                let engine = SpecCrossEngine::<S>::new(config.region(region_id));
                let result = engine.execute_with_barriers_on(&*workload, &*pool);
                if let (Err(_), Some(cell)) = (&result, &cell) {
                    cell.fail(None);
                }
                result.map(RegionReport::Spec).map_err(RegionError::Spec)
            })
            .expect("spawn region manager thread");
        RegionHandle { region_id, thread }
    }

    /// Submits a DOMORE region. The manager thread doubles as the region's
    /// scheduler; only the workers draw from the shared pool.
    pub fn submit_domore<W>(
        &self,
        region_id: u64,
        config: DomoreConfig,
        workload: Arc<W>,
    ) -> RegionHandle
    where
        W: DomoreWorkload + Send + Sync + 'static,
    {
        let (config, cell) = match &self.registry {
            None => (config, None),
            Some(registry) => {
                let mut config = config;
                if let Some(recorder) = registry.flight_recorder() {
                    config = config.trace_default(recorder.capacity());
                }
                let cell = registry.register(region_id, "domore", config.num_workers());
                (config.telemetry(Arc::clone(&cell)), Some(cell))
            }
        };
        let pool = Arc::clone(&self.pool);
        let thread = thread::Builder::new()
            .name(format!("crossinvoc-region-{region_id}"))
            .spawn(move || {
                let mut runtime = DomoreRuntime::new(config.region(region_id));
                let result = runtime.execute_on(&*workload, &*pool);
                if let (Err(_), Some(cell)) = (&result, &cell) {
                    cell.fail(None);
                }
                result
                    .map(RegionReport::Domore)
                    .map_err(RegionError::Domore)
            })
            .expect("spawn region manager thread");
        RegionHandle { region_id, thread }
    }
}

/// Handle to the background snapshot thread spawned by
/// [`RegionServer::spawn_snapshot_pump`].
///
/// Stopping (or dropping) the pump wakes the thread, emits one final
/// snapshot through the sink, and joins — so the last snapshot a consumer
/// sees always reflects every region's terminal state.
#[derive(Debug)]
pub struct TelemetryPump {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl TelemetryPump {
    /// Stops the pump, flushing one final snapshot, and joins the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryPump {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_runtime::signature::RangeSignature;
    use crossinvoc_runtime::ThreadId;
    use crossinvoc_speccross::workload::AccessRecorder;
    use std::sync::Mutex;

    /// Conflict-free grid: task `t` of every epoch increments cell `t`.
    struct IncGrid {
        cells: Vec<Mutex<u64>>,
        epochs: usize,
    }

    impl IncGrid {
        fn new(tasks: usize, epochs: usize) -> Self {
            Self {
                cells: (0..tasks).map(|_| Mutex::new(0)).collect(),
                epochs,
            }
        }
    }

    impl SpecWorkload for IncGrid {
        type State = Vec<u64>;

        fn num_epochs(&self) -> usize {
            self.epochs
        }

        fn num_tasks(&self, _epoch: usize) -> usize {
            self.cells.len()
        }

        fn execute_task(
            &self,
            _epoch: usize,
            task: usize,
            _tid: ThreadId,
            recorder: &mut dyn AccessRecorder,
        ) {
            recorder.record(task, crossinvoc_runtime::signature::AccessKind::Write);
            *self.cells[task].lock().unwrap() += 1;
        }

        fn snapshot(&self) -> Vec<u64> {
            self.cells.iter().map(|c| *c.lock().unwrap()).collect()
        }

        fn restore(&self, state: &Vec<u64>) {
            for (cell, v) in self.cells.iter().zip(state) {
                *cell.lock().unwrap() = *v;
            }
        }
    }

    struct DomoreGrid {
        cells: Vec<Mutex<u64>>,
        invocations: usize,
    }

    impl DomoreWorkload for DomoreGrid {
        fn num_invocations(&self) -> usize {
            self.invocations
        }

        fn num_iterations(&self, _inv: usize) -> usize {
            self.cells.len()
        }

        fn touched_addrs(&self, _inv: usize, iter: usize, out: &mut Vec<usize>) {
            out.push(iter);
        }

        fn execute_iteration(&self, _inv: usize, iter: usize, _tid: ThreadId) {
            *self.cells[iter].lock().unwrap() += 1;
        }

        fn address_space(&self) -> Option<usize> {
            Some(self.cells.len())
        }
    }

    #[test]
    fn concurrent_spec_and_domore_regions_share_one_pool() {
        let server = RegionServer::new(6);
        let spec = Arc::new(IncGrid::new(2, 8));
        let dom = Arc::new(DomoreGrid {
            cells: (0..4).map(|_| Mutex::new(0)).collect(),
            invocations: 5,
        });
        let h1 = server.submit_spec::<RangeSignature, _>(
            1,
            SpecConfig::with_workers(2).checker_shards(1),
            Arc::clone(&spec),
        );
        let h2 = server.submit_domore(2, DomoreConfig::with_workers(2), Arc::clone(&dom));
        let r1 = h1.join().expect("spec region");
        let r2 = h2.join().expect("domore region");
        assert_eq!(r1.spec().unwrap().stats.misspeculations, 0);
        assert!(r2.domore().is_some());
        assert!(spec.cells.iter().all(|c| *c.lock().unwrap() == 8));
        assert!(dom.cells.iter().all(|c| *c.lock().unwrap() == 5));
    }

    #[test]
    fn oversized_region_is_rejected_not_deadlocked() {
        let server = RegionServer::new(2);
        let spec = Arc::new(IncGrid::new(2, 2));
        // Demand = 4 workers + 1 shard = 5 > pool of 2.
        let h = server.submit_spec::<RangeSignature, _>(
            7,
            SpecConfig::with_workers(4).checker_shards(1),
            spec,
        );
        match h.join() {
            Err(RegionError::Spec(SpecError::InvalidConfig(msg))) => {
                assert!(msg.contains("caps gangs at 2"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_server_snapshots_agree_with_reports() {
        use crossinvoc_runtime::telemetry::{FlightRecorder, RegionState, ServerRegistry};

        let registry = ServerRegistry::new(6).with_recorder(FlightRecorder::new(256));
        let server = RegionServer::with_telemetry(6, registry);
        let spec = Arc::new(IncGrid::new(2, 8));
        let dom = Arc::new(DomoreGrid {
            cells: (0..4).map(|_| Mutex::new(0)).collect(),
            invocations: 5,
        });
        let h1 = server.submit_spec::<RangeSignature, _>(
            1,
            SpecConfig::with_workers(2).checker_shards(1),
            Arc::clone(&spec),
        );
        let h2 = server.submit_domore(2, DomoreConfig::with_workers(2), dom);
        let r1 = h1.join().expect("spec region");
        let r2 = h2.join().expect("domore region");

        let snap = server.registry().unwrap().snapshot();
        assert!(snap.pool.admissions >= 2, "{}", snap.pool.admissions);
        assert_eq!(snap.pool.in_flight, 0);
        assert_eq!(snap.regions.len(), 2);

        let spec_row = snap.regions.iter().find(|r| r.region_id == 1).unwrap();
        assert_eq!(spec_row.kind, "speccross");
        assert_eq!(spec_row.state, RegionState::Done);
        // Aliased metrics: the snapshot and the report read the same counters.
        assert_eq!(spec_row.metrics, r1.spec().unwrap().metrics);

        let dom_row = snap.regions.iter().find(|r| r.region_id == 2).unwrap();
        assert_eq!(dom_row.kind, "domore");
        assert_eq!(dom_row.state, RegionState::Done);
        assert_eq!(dom_row.metrics, r2.domore().unwrap().metrics);

        // Healthy regions never trip the flight recorder.
        assert_eq!(
            server
                .registry()
                .unwrap()
                .flight_recorder()
                .unwrap()
                .dumps_taken(),
            0
        );
    }

    #[test]
    fn contained_fault_triggers_flight_dump_with_armed_ring() {
        use crossinvoc_runtime::fault::FaultPlan;
        use crossinvoc_runtime::telemetry::{FlightRecorder, ServerRegistry};

        let registry = ServerRegistry::new(4).with_recorder(FlightRecorder::new(128));
        let server = RegionServer::with_telemetry(4, registry);
        let spec = Arc::new(IncGrid::new(2, 4));
        // Tracing is left off here: the server must arm the ring itself from
        // the recorder's capacity so the dump is non-empty.
        let h = server.submit_spec::<RangeSignature, _>(
            9,
            SpecConfig::with_workers(2)
                .checker_shards(1)
                .checkpoint_every(2)
                .fault_plan(FaultPlan::new().worker_panic_at(1, 0)),
            spec,
        );
        let report = h.join().expect("contained fault still completes");
        assert!(!report.spec().unwrap().contained_faults.is_empty());

        let registry = server.registry().unwrap();
        let recorder = registry.flight_recorder().unwrap();
        assert_eq!(recorder.dumps_taken(), 1);
        let dumps = recorder.dumps();
        assert_eq!(dumps[0].region_id, 9);
        assert_eq!(dumps[0].trigger.as_str(), "fault");
        assert!(dumps[0].records > 0, "armed ring must capture events");

        let snap = registry.snapshot();
        let row = snap.regions.iter().find(|r| r.region_id == 9).unwrap();
        assert!(row.faults > 0);
        assert_eq!(snap.flight_dumps, 1);
    }

    #[test]
    fn snapshot_pump_flushes_final_state_on_stop() {
        use crossinvoc_runtime::telemetry::ServerRegistry;
        use std::sync::mpsc;

        let server = RegionServer::with_telemetry(4, ServerRegistry::new(4));
        let spec = Arc::new(IncGrid::new(2, 4));
        let (tx, rx) = mpsc::channel();
        let pump = server
            .spawn_snapshot_pump(Duration::from_millis(5), move |snap| {
                let _ = tx.send(snap);
            })
            .expect("telemetry server has a pump");
        let h = server.submit_spec::<RangeSignature, _>(
            1,
            SpecConfig::with_workers(2).checker_shards(1),
            spec,
        );
        h.join().expect("region");
        pump.stop();
        let last = rx.iter().last().expect("at least one snapshot");
        assert_eq!(last.regions.len(), 1);
        assert_eq!(last.regions[0].state.as_str(), "done");
    }

    #[test]
    fn untelemetered_server_has_no_registry_or_pump() {
        let server = RegionServer::new(2);
        assert!(server.registry().is_none());
        assert!(server
            .spawn_snapshot_pump(Duration::from_millis(5), |_| {})
            .is_none());
    }

    #[test]
    fn region_trace_is_stamped_with_its_id() {
        let server = RegionServer::new(4);
        let spec = Arc::new(IncGrid::new(2, 3));
        let h = server.submit_spec::<RangeSignature, _>(
            42,
            SpecConfig::with_workers(2).checker_shards(1).trace(256),
            spec,
        );
        let report = h.join().expect("region");
        let trace = report.spec().unwrap().trace.clone().expect("trace");
        assert_eq!(trace.region(), 42);
        assert!(trace.to_jsonl().contains("\"region_id\":42"));
    }
}
