//! SYMM — the PolyBench symmetric rank-update kernel (Table 5.1,
//! Figs. 5.1(f)/5.2(h)).
//!
//! The outer loop sweeps matrix columns; each invocation updates a
//! triangular slice of `C`. Invocations are *tiny* (the thesis measures
//! ≈4000 cycles each, §5.1), so per-invocation parallelization overhead —
//! barriers, thread dispatch, even DOMORE's queues — dominates, which is
//! why SYMM scales poorly for every technique and serves as the suite's
//! overhead-sensitivity probe.

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The SYMM workload model.
#[derive(Debug, Clone)]
pub struct Symm {
    /// Matrix dimension; invocation `j` updates column `j % n`.
    n: usize,
    /// Outer sweeps over the matrix (invocations = sweeps × n).
    sweeps: usize,
    seed: u64,
}

impl Symm {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            n: scale.pick(24, 1000),
            sweeps: 2,
            seed,
        }
    }
}

impl SimWorkload for Symm {
    fn num_invocations(&self) -> usize {
        self.sweeps * self.n
    }

    fn num_iterations(&self, inv: usize) -> usize {
        // Triangular: column j touches rows 0..=j.
        (inv % self.n) + 1
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        // Tiny tasks: the whole invocation is ~4000 cycles in the thesis.
        120 + splitmix64(self.seed ^ ((inv * 7 + iter) as u64)) % 60
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let j = inv % self.n;
        // C[iter, j]: each invocation writes its own column, and the A/B
        // operands are read-only — Table 5.3 profiles *no* cross-invocation
        // conflict for SYMM (`*`); its problem is overhead, not dependences.
        out.push((iter * self.n + j, AccessKind::Write));
        out.push((self.n * self.n + iter, AccessKind::Read)); // A[iter] (read-only)
    }

    fn sched_cost(&self, _inv: usize, _iter: usize) -> u64 {
        // Table 5.2: 1.5% scheduler/worker ratio.
        2
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.n * self.n + self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_domore::prelude::*;

    #[test]
    fn invocations_are_triangular_and_tiny() {
        let s = Symm::new(Scale::Test, 1);
        assert_eq!(s.num_iterations(0), 1);
        assert_eq!(s.num_iterations(23), 24);
        let inv_cost: u64 = (0..s.num_iterations(5))
            .map(|t| s.iteration_cost(5, t))
            .sum();
        assert!(inv_cost < 4_000, "tiny invocations, got {inv_cost}");
    }

    #[test]
    fn no_conflicts_within_the_profiling_window() {
        // Table 5.3 reports `*` for SYMM: columns are disjoint within a
        // sweep, and sweeps sit far beyond any realistic window.
        let s = Symm::new(Scale::Test, 1);
        let p = profile_distance(&s, 8);
        assert_eq!(p.min_distance, None);
    }

    #[test]
    fn domore_execution_matches_sequential() {
        let kernel = AccessKernel::from_model(Symm::new(Scale::Test, 1));
        let expected = kernel.sequential_checksum();
        DomoreRuntime::new(DomoreConfig::with_workers(2))
            .execute(&kernel)
            .unwrap();
        assert_eq!(kernel.checksum(), expected);
    }
}
