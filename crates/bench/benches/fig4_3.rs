//! Fig. 4.3 — barrier synchronization overhead at 8 and 24 threads.
//!
//! For each of the eight SPECCROSS benchmarks, the fraction of aggregate
//! thread time spent idling at barriers when the program runs under the
//! conventional plan. The thesis measures >30% for most programs at 24
//! threads — an Amdahl ceiling of ≈3.3× that motivates barrier removal.

use crossinvoc_bench::{trace_capacity, write_csv, write_trace, FIG4_3_THREADS};
use crossinvoc_sim::prelude::*;
use crossinvoc_workloads::{registry, Scale};

fn main() {
    println!("Fig. 4.3: barrier overhead (% of parallel runtime)");
    println!(
        "{:<16} {:>10} {:>10}",
        "Benchmark", "8 threads", "24 threads"
    );
    let cost = CostModel::default();
    let trace_cap = trace_capacity();
    let mut rows = Vec::new();
    let mut grows = 0usize;
    let mut programs = 0usize;
    for info in registry().into_iter().filter(|b| b.speccross) {
        let model = info.model(Scale::Figure);
        let overheads: Vec<f64> = FIG4_3_THREADS
            .iter()
            .map(|&t| 100.0 * barrier(model.as_ref(), t, &cost).idle_fraction())
            .collect();
        if let Some(cap) = trace_cap {
            // The same 24-thread run, with the per-thread barrier waits
            // recorded: trace-report's "barrier idle" reproduces this row.
            let traced = barrier_traced(model.as_ref(), FIG4_3_THREADS[1], &cost, Some(cap));
            if let Some(trace) = traced.trace {
                write_trace(&format!("fig4_3.{}", info.name.to_lowercase()), &trace);
            }
        }
        println!(
            "{:<16} {:>9.1}% {:>9.1}%",
            info.name, overheads[0], overheads[1]
        );
        rows.push(format!(
            "{},{:.3},{:.3}",
            info.name, overheads[0], overheads[1]
        ));
        programs += 1;
        grows += usize::from(overheads[1] > overheads[0]);
    }
    println!("(overhead grows with thread count for {grows}/{programs} programs)");
    write_csv("fig4_3", "benchmark,overhead_pct_8,overhead_pct_24", &rows);
}
