//! [`AccessKernel`]: executes any simulation model on *real* shared memory
//! through the real runtimes.
//!
//! The kernel gives a [`SimWorkload`]'s declared accesses operational
//! meaning: each task folds the values it reads into an accumulator and
//! writes an order-sensitive mix into each cell it writes. Conflicting
//! accesses executed in the wrong order therefore produce a different final
//! memory image — exactly the signal needed to validate that DOMORE's
//! synchronization conditions and SPECCROSS's speculation/rollback preserve
//! sequential semantics on every benchmark of the suite.

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_runtime::{SharedSlice, ThreadId};
use crossinvoc_sim::SimWorkload;
use crossinvoc_speccross::workload::{AccessRecorder, SpecWorkload};

/// A memory-mutating kernel derived from a workload model.
///
/// Implements both [`crossinvoc_domore::DomoreWorkload`] (invocations =
/// model invocations) and [`SpecWorkload`] (epochs = model invocations), so
/// one construction serves both runtimes.
///
/// # Example
///
/// ```
/// use crossinvoc_workloads::AccessKernel;
/// use crossinvoc_sim::UniformWorkload;
/// use crossinvoc_domore::prelude::*;
///
/// let model = UniformWorkload::same_cell(6, 8, 100);
/// let kernel = AccessKernel::new(model, 8);
/// let expected = kernel.sequential_checksum();
/// DomoreRuntime::new(DomoreConfig::with_workers(2))
///     .execute(&kernel)
///     .unwrap();
/// assert_eq!(kernel.checksum(), expected);
/// ```
pub struct AccessKernel<W> {
    model: W,
    data: SharedSlice<i64>,
}

impl<W: std::fmt::Debug> std::fmt::Debug for AccessKernel<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessKernel")
            .field("model", &self.model)
            .field("cells", &self.data.len())
            .finish()
    }
}

impl<W: SimWorkload> AccessKernel<W> {
    /// Wraps `model` over `cells` memory cells. Addresses the model reports
    /// must be below `cells`.
    pub fn new(model: W, cells: usize) -> Self {
        Self {
            model,
            data: SharedSlice::from_vec(vec![0; cells]),
        }
    }

    /// Wraps `model`, sizing memory from its address space.
    ///
    /// # Panics
    ///
    /// Panics if the model declares no address space.
    pub fn from_model(model: W) -> Self {
        let cells = model
            .address_space()
            .expect("model must declare an address space");
        Self::new(model, cells)
    }

    /// The underlying model.
    pub fn model(&self) -> &W {
        &self.model
    }

    /// Performs one task's declared accesses, reporting them to `recorder`.
    ///
    /// # Safety
    ///
    /// Caller's runtime must order conflicting tasks (the shared-memory
    /// contract of [`SharedSlice`]).
    unsafe fn perform(&self, inv: usize, iter: usize, recorder: &mut dyn AccessRecorder) {
        let mut pairs = Vec::new();
        self.model.accesses(inv, iter, &mut pairs);
        let mut acc = splitmix64((inv as u64) << 32 | iter as u64) as i64;
        for &(addr, kind) in pairs.iter() {
            recorder.record(addr, kind);
            match kind {
                AccessKind::Read => acc ^= self.data.read(addr),
                AccessKind::Write => {
                    let old = self.data.read(addr);
                    self.data
                        .write(addr, splitmix64(acc as u64 ^ old as u64) as i64);
                }
            }
        }
    }

    /// Runs the whole workload sequentially (invocation-major order) and
    /// returns the checksum — the reference value parallel executions must
    /// reproduce.
    pub fn sequential_checksum(&self) -> u64 {
        self.reset();
        let mut sink = crossinvoc_speccross::workload::NullRecorder;
        for inv in 0..self.model.num_invocations() {
            for iter in 0..self.model.num_iterations(inv) {
                // SAFETY: single-threaded here.
                unsafe { self.perform(inv, iter, &mut sink) };
            }
        }
        let sum = self.checksum();
        self.reset();
        sum
    }

    /// Checksum of the current memory image.
    ///
    /// Quiescence contract: no task may be executing.
    pub fn checksum(&self) -> u64 {
        let mut h = 0u64;
        for i in 0..self.data.len() {
            // SAFETY: quiescent per the method contract.
            h = splitmix64(h ^ unsafe { self.data.read(i) } as u64);
        }
        h
    }

    /// Zeroes memory (quiescence contract as for [`Self::checksum`]).
    pub fn reset(&self) {
        for i in 0..self.data.len() {
            // SAFETY: quiescent per the method contract.
            unsafe { self.data.write(i, 0) };
        }
    }
}

impl<W: SimWorkload + Sync> crossinvoc_domore::DomoreWorkload for AccessKernel<W> {
    fn num_invocations(&self) -> usize {
        self.model.num_invocations()
    }

    fn num_iterations(&self, inv: usize) -> usize {
        self.model.num_iterations(inv)
    }

    fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
        let mut pairs = Vec::new();
        self.model.accesses(inv, iter, &mut pairs);
        // Writes first: ownership policies key on the first address.
        out.extend(
            pairs
                .iter()
                .filter(|&&(_, k)| k == AccessKind::Write)
                .map(|&(a, _)| a),
        );
        out.extend(
            pairs
                .iter()
                .filter(|&&(_, k)| k == AccessKind::Read)
                .map(|&(a, _)| a),
        );
    }

    fn touched(&self, inv: usize, iter: usize, writes: &mut Vec<usize>, reads: &mut Vec<usize>) {
        let mut pairs = Vec::new();
        self.model.accesses(inv, iter, &mut pairs);
        for (addr, kind) in pairs {
            match kind {
                AccessKind::Write => writes.push(addr),
                AccessKind::Read => reads.push(addr),
            }
        }
    }

    fn execute_iteration(&self, inv: usize, iter: usize, _tid: ThreadId) {
        // SAFETY: DOMORE orders iterations with intersecting address sets,
        // and `touched_addrs` reports exactly the performed accesses.
        unsafe { self.perform(inv, iter, &mut crossinvoc_speccross::workload::NullRecorder) };
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.data.len())
    }
}

impl<W: SimWorkload + Sync> SpecWorkload for AccessKernel<W> {
    type State = Vec<i64>;

    fn num_epochs(&self) -> usize {
        self.model.num_invocations()
    }

    fn num_tasks(&self, epoch: usize) -> usize {
        self.model.num_iterations(epoch)
    }

    fn epoch_is_proven(&self, epoch: usize) -> bool {
        // Bridge the model's static-analysis verdict to the engine: an
        // invocation the model declares conflict-free may skip signature
        // generation and checker admission entirely.
        self.model.invocation_is_proven(epoch)
    }

    fn execute_task(
        &self,
        epoch: usize,
        task: usize,
        _tid: ThreadId,
        recorder: &mut dyn AccessRecorder,
    ) {
        // SAFETY: same-invocation tasks of the suite's models touch
        // disjoint write sets (their inner loops are DOALL/LOCALWRITE
        // parallelizable); cross-epoch conflicts are SPECCROSS's job.
        unsafe { self.perform(epoch, task, recorder) };
    }

    fn snapshot(&self) -> Vec<i64> {
        (0..self.data.len())
            // SAFETY: the engine quiesces all workers around snapshots.
            .map(|i| unsafe { self.data.read(i) })
            .collect()
    }

    fn restore(&self, state: &Vec<i64>) {
        for (i, &v) in state.iter().enumerate() {
            // SAFETY: the engine quiesces all workers around recovery.
            unsafe { self.data.write(i, v) };
        }
    }
}

/// Profiles the model's minimum cross-epoch dependence distance (the
/// Table 5.3 "Minimum Distance" column) without touching real memory.
pub fn profile_distance<W: SimWorkload + ?Sized>(
    model: &W,
    window_epochs: u32,
) -> crossinvoc_speccross::ProfileReport {
    use crossinvoc_runtime::signature::{AccessSignature, RangeSignature};
    let mut profiler = crossinvoc_speccross::DistanceProfiler::<RangeSignature>::new(window_epochs);
    let mut pairs = Vec::new();
    for inv in 0..model.num_invocations() {
        for iter in 0..model.num_iterations(inv) {
            pairs.clear();
            model.accesses(inv, iter, &mut pairs);
            let mut sig = RangeSignature::empty();
            for &(addr, kind) in &pairs {
                sig.record(addr, kind);
            }
            profiler.record_task(sig);
        }
        profiler.epoch_boundary();
    }
    profiler.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_domore::prelude::*;
    use crossinvoc_sim::UniformWorkload;
    use crossinvoc_speccross::prelude::*;

    #[test]
    fn sequential_checksum_is_deterministic() {
        let k = AccessKernel::from_model(UniformWorkload::rotating(6, 8, 10));
        assert_eq!(k.sequential_checksum(), k.sequential_checksum());
    }

    #[test]
    fn domore_execution_preserves_the_checksum() {
        let k = AccessKernel::from_model(UniformWorkload::rotating(10, 12, 10));
        let expected = k.sequential_checksum();
        for workers in [1, 3] {
            k.reset();
            DomoreRuntime::new(DomoreConfig::with_workers(workers))
                .execute(&k)
                .unwrap();
            assert_eq!(k.checksum(), expected, "{workers} workers");
        }
    }

    #[test]
    fn speccross_execution_preserves_the_checksum() {
        let model = UniformWorkload::rotating(10, 12, 10);
        let d = profile_distance(&model, 4).min_distance;
        let k = AccessKernel::from_model(model);
        let expected = k.sequential_checksum();
        let engine = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
            SpecConfig::with_workers(2).spec_distance(d),
        );
        let report = engine.execute(&k).unwrap();
        assert_eq!(k.checksum(), expected);
        assert_eq!(report.stats.misspeculations, 0, "gated by profile");
    }

    #[test]
    fn profile_distance_sees_rotating_conflicts() {
        let model = UniformWorkload::rotating(6, 16, 10);
        let p = profile_distance(&model, 4);
        assert_eq!(p.min_distance, Some(15), "one epoch minus one task");
        let none = profile_distance(&UniformWorkload::independent(6, 16, 10), 4);
        assert_eq!(none.min_distance, None);
    }

    #[test]
    fn conflicting_order_changes_the_checksum() {
        // Sanity for the mixing function: executing two conflicting tasks
        // in the wrong order must change memory.
        let k = AccessKernel::from_model(UniformWorkload::same_cell(2, 1, 10));
        k.reset();
        let mut sink = crossinvoc_speccross::workload::NullRecorder;
        unsafe {
            k.perform(0, 0, &mut sink);
            k.perform(1, 0, &mut sink);
        }
        let in_order = k.checksum();
        k.reset();
        unsafe {
            k.perform(1, 0, &mut sink);
            k.perform(0, 0, &mut sink);
        }
        assert_ne!(k.checksum(), in_order);
    }
}
