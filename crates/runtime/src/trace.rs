//! Structured execution tracing shared by the runtimes and the simulator.
//!
//! The evaluation chapter's claims — where time goes inside an epoch, why a
//! run degraded, which task pair misspeculated — are *runtime information*,
//! and the counters of [`crate::stats`] compress it beyond recovery. This
//! module is the uncompressed record: a typed [`Event`] stream, stamped with
//! nanosecond timestamps and the emitting thread, buffered per thread in a
//! fixed-capacity ring ([`TraceSink`]) so the hot path never allocates,
//! locks, or touches an atomic, and merged after the region joins into one
//! time-ordered [`Trace`] that serializes to JSONL.
//!
//! Both threaded engines (`crossinvoc-speccross`, `crossinvoc-domore`) and
//! both simulators (`crossinvoc-sim`) emit the *same schema*: a trace of a
//! simulated run and a trace of a real run differ only in their timestamps,
//! so every analysis — the barrier-idle breakdown of Fig. 4.3, the
//! misspeculation ledger of Table 5.3, the per-thread utilization timeline —
//! is written once, in [`TraceReport`], and works on either. The
//! `trace-report` binary (in `crates/bench`) is a thin wrapper around it.
//!
//! See `docs/OBSERVABILITY.md` for the JSONL schema, the overhead budget,
//! and a worked trace-to-figure example.
//!
//! # Example
//!
//! ```
//! use crossinvoc_runtime::trace::{Event, Trace, TraceSink};
//!
//! // A sink with virtual timestamps, as the simulator uses; the threaded
//! // engines use `TraceCollector` sinks that stamp wall-clock time.
//! let mut sink = TraceSink::with_capacity(0, 64);
//! sink.emit_at(10, Event::EpochBegin { epoch: 0 });
//! sink.emit_at(25, Event::TaskRetire { epoch: 0, task: 3 });
//! let trace = Trace::from_sinks([sink]);
//! assert_eq!(trace.records().len(), 2);
//!
//! // JSONL round-trip is lossless.
//! let jsonl = trace.to_jsonl();
//! assert_eq!(Trace::from_jsonl(&jsonl).unwrap(), trace);
//! ```

use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

use crate::fault::FaultKind;
use crate::ThreadId;

/// Pseudo thread-id under which the manager/scheduler thread emits events.
///
/// Worker ids are dense `0..num_workers`; the two service threads use the
/// top of the id space so they can never collide with a worker.
pub const MANAGER_TID: ThreadId = usize::MAX;

/// Pseudo thread-id under which the SPECCROSS checker thread emits events.
///
/// With a sharded checker, shard `k` emits at [`checker_shard_tid`]`(k)`;
/// shard 0 is this classic id, so single-shard traces are unchanged.
pub const CHECKER_TID: ThreadId = usize::MAX - 1;

/// Upper bound on checker shards (the reserved tid band below
/// [`CHECKER_TID`]; also the capacity of the shard bitmask in
/// `crossinvoc-speccross`).
pub const MAX_CHECKER_SHARDS: usize = 64;

/// Pseudo thread-id of checker shard `shard`: `CHECKER_TID - shard`.
pub fn checker_shard_tid(shard: usize) -> ThreadId {
    debug_assert!(shard < MAX_CHECKER_SHARDS);
    CHECKER_TID - shard
}

/// The checker shard a pseudo thread-id belongs to, if it lies in the
/// reserved checker band (`CHECKER_TID` itself is shard 0).
pub fn checker_shard_of_tid(tid: ThreadId) -> Option<usize> {
    (tid <= CHECKER_TID && tid > CHECKER_TID - MAX_CHECKER_SHARDS).then(|| CHECKER_TID - tid)
}

/// Whether `tid` is a service thread (manager or any checker shard) rather
/// than a worker.
pub fn is_service_tid(tid: ThreadId) -> bool {
    tid == MANAGER_TID || checker_shard_of_tid(tid).is_some()
}

/// Which kind of cross-thread causality a [`Event::Wake`] record encodes.
///
/// Each class names the mechanism whose release let the emitting thread
/// resume; together they are the edge set of the happens-before DAG that
/// [`crate::critpath`] walks. The wire names (`"edge"` field) are
/// `barrier` / `queue` / `checkpoint` / `checker`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeEdge {
    /// Barrier (or DOMORE synchronization-condition) release → waiter
    /// resume: the predecessor that released the wait is `src_tid`.
    Barrier,
    /// SPSC produce → consume: the producer (`src_tid`) made the message
    /// available that the emitting thread just picked up.
    Queue,
    /// Checkpoint rendezvous release → resume: the participant that
    /// completed the rendezvous work (checker drain + snapshot) last.
    Checkpoint,
    /// Checker verdict → commit/rollback: the checker's conflict decision
    /// started the recovery the emitting (manager) thread performs.
    Checker,
}

impl WakeEdge {
    /// The edge's wire name (the `"edge"` field of the JSONL schema).
    pub fn name(&self) -> &'static str {
        match self {
            WakeEdge::Barrier => "barrier",
            WakeEdge::Queue => "queue",
            WakeEdge::Checkpoint => "checkpoint",
            WakeEdge::Checker => "checker",
        }
    }

    /// All edge classes, in a fixed order (used by reports and the what-if
    /// sweep in `trace-report`).
    pub const ALL: [WakeEdge; 4] = [
        WakeEdge::Barrier,
        WakeEdge::Queue,
        WakeEdge::Checkpoint,
        WakeEdge::Checker,
    ];

    /// This edge's position in [`WakeEdge::ALL`] (a stable dense index for
    /// per-class arrays).
    pub fn index(self) -> usize {
        match self {
            WakeEdge::Barrier => 0,
            WakeEdge::Queue => 1,
            WakeEdge::Checkpoint => 2,
            WakeEdge::Checker => 3,
        }
    }
}

impl fmt::Display for WakeEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured execution event.
///
/// `epoch` means the SPECCROSS epoch / DOMORE invocation; `task` is the
/// per-epoch task (iteration) index. Both engines and both simulators emit
/// exactly this set, so a trace consumer never needs to know which engine
/// produced the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A parallel-loop invocation (epoch) began.
    EpochBegin {
        /// Epoch number.
        epoch: u32,
    },
    /// The epoch's last task (on the emitting thread's view) retired.
    EpochEnd {
        /// Epoch number.
        epoch: u32,
    },
    /// The scheduler *assigned* a task to a worker (DOMORE: the policy
    /// decision, recorded on the manager's timeline at enqueue time). The
    /// per-worker distribution of these events is the scheduler's load
    /// balance; compare with [`Event::TaskDispatch`], which marks when the
    /// worker actually picked the task up.
    TaskAssign {
        /// Epoch of the task.
        epoch: u32,
        /// Task index within the epoch.
        task: u64,
        /// Worker the task was routed to.
        worker: ThreadId,
    },
    /// A task was handed to a worker (DOMORE: scheduler dispatch; SPECCROSS:
    /// the worker admitted the task past the speculative-range gate).
    TaskDispatch {
        /// Epoch of the task.
        epoch: u32,
        /// Task index within the epoch.
        task: u64,
    },
    /// A task finished executing.
    TaskRetire {
        /// Epoch of the task.
        epoch: u32,
        /// Task index within the epoch.
        task: u64,
    },
    /// The emitting thread arrived at a synchronization point (a barrier, a
    /// checkpoint rendezvous, or a DOMORE synchronization-condition wait).
    BarrierEnter {
        /// Epoch at which the wait happened.
        epoch: u32,
    },
    /// The wait of the matching [`Event::BarrierEnter`] ended; `wait_ns` is
    /// the time the thread spent stalled — the quantity Fig. 4.3 aggregates.
    BarrierLeave {
        /// Epoch at which the wait happened.
        epoch: u32,
        /// Nanoseconds spent waiting.
        wait_ns: u64,
    },
    /// A recovery checkpoint was taken at this epoch.
    Checkpoint {
        /// Epoch of the snapshot.
        epoch: u32,
    },
    /// Aggregate fast-path summary from the SPECCROSS checker, emitted at
    /// retirement (checkpoint/prune) boundaries rather than per admit so the
    /// bounded flight-recorder rings are not flooded: how many whole-epoch
    /// log buckets the aggregate-signature test skipped and how many
    /// signature comparisons ran since the previous summary.
    CheckerSummary {
        /// Retirement epoch the summary was emitted at.
        epoch: u32,
        /// Whole-epoch bucket skips since the last summary.
        skips: u64,
        /// Signature comparisons (aggregate tests included) since the last
        /// summary.
        comparisons: u64,
    },
    /// Per-shard admission totals from a sharded SPECCROSS checker, emitted
    /// once per shard when a speculative pass's checking ends (on the
    /// shard's own [`checker_shard_tid`] timeline). Single-shard runs emit
    /// one row with `shard: 0, shards: 1`, so the row count per pass equals
    /// the shard count and per-shard load imbalance is visible in traces.
    CheckerShard {
        /// This shard's index (`0..shards`).
        shard: u32,
        /// Total shards the checker ran with.
        shards: u32,
        /// Check requests this shard admitted (straddling tasks count once
        /// per touched shard).
        requests: u64,
    },
    /// A worker ran tasks of a statically-proven epoch without signature
    /// generation or checker admission (SPECCROSS static elision). Emitted
    /// once per (worker, epoch) at the epoch boundary rather than per task,
    /// so the bounded flight-recorder rings are not flooded.
    CheckElided {
        /// The proven epoch.
        epoch: u32,
        /// Tasks this worker elided in the epoch (those with at least one
        /// speculative access).
        tasks: u64,
        /// Speculative accesses those tasks executed under the proof —
        /// signature records and admission work that never happened.
        accesses: u64,
    },
    /// The DOMORE scheduler replayed this invocation's schedule from the
    /// cross-invocation memo (one event per memoized invocation, on the
    /// manager's timeline) instead of running the scheduling logic.
    ScheduleCacheHit {
        /// The replayed invocation.
        epoch: u32,
    },
    /// A misspeculation was detected: the signatures of the two recorded
    /// tasks conflicted (for forced/injected conflicts both sides name the
    /// admitted task).
    Misspeculation {
        /// Worker of the earlier-epoch task.
        earlier_tid: ThreadId,
        /// Epoch of the earlier task.
        earlier_epoch: u32,
        /// Per-epoch index of the earlier task.
        earlier_task: u64,
        /// Worker of the later-epoch task.
        later_tid: ThreadId,
        /// Epoch of the later task.
        later_epoch: u32,
        /// Per-epoch index of the later task.
        later_task: u64,
    },
    /// The region abandoned speculation and fell back to non-speculative
    /// barriers from this epoch on.
    Degradation {
        /// First epoch of the degraded (barrier-mode) tail.
        epoch: u32,
    },
    /// An injected fault from a [`crate::fault::FaultPlan`] fired. The
    /// record's thread id is the worker at which it fired (checker-side
    /// faults report the requesting worker's coordinates).
    FaultInjected {
        /// The fault that fired.
        kind: FaultKind,
        /// Epoch coordinate of the firing.
        epoch: u32,
        /// Task coordinate of the firing.
        task: u64,
    },
    /// A cross-thread causality edge: the emitting thread resumed (or
    /// consumed) because `src_tid` released it. Recorded on the *destination*
    /// thread's timeline at resume/consume time, immediately after the
    /// matching [`Event::BarrierLeave`] when the edge ends a recorded wait.
    /// These edges are what turn a per-thread event stream into the
    /// happens-before DAG of [`crate::critpath`].
    Wake {
        /// Which mechanism's release this edge encodes.
        edge: WakeEdge,
        /// The releasing thread ([`MANAGER_TID`] / [`CHECKER_TID`] for the
        /// service threads).
        src_tid: ThreadId,
        /// Disambiguating sequence number: the epoch for barrier and
        /// checkpoint edges, the global task/request number for queue edges,
        /// the misspeculation ordinal for checker edges.
        seq: u64,
    },
}

impl Event {
    /// The event's wire name (the `"ev"` field of the JSONL schema).
    pub fn name(&self) -> &'static str {
        match self {
            Event::EpochBegin { .. } => "epoch_begin",
            Event::EpochEnd { .. } => "epoch_end",
            Event::TaskAssign { .. } => "task_assign",
            Event::TaskDispatch { .. } => "task_dispatch",
            Event::TaskRetire { .. } => "task_retire",
            Event::BarrierEnter { .. } => "barrier_enter",
            Event::BarrierLeave { .. } => "barrier_leave",
            Event::Checkpoint { .. } => "checkpoint",
            Event::CheckerSummary { .. } => "checker_summary",
            Event::CheckerShard { .. } => "checker_shard",
            Event::CheckElided { .. } => "check_elided",
            Event::ScheduleCacheHit { .. } => "schedule_cache_hit",
            Event::Misspeculation { .. } => "misspeculation",
            Event::Degradation { .. } => "degradation",
            Event::FaultInjected { .. } => "fault",
            Event::Wake { .. } => "wake",
        }
    }
}

/// One trace record: when, who, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the trace origin (region start for the threaded
    /// engines, virtual time zero for the simulators).
    pub t_ns: u64,
    /// Emitting thread ([`MANAGER_TID`] / [`CHECKER_TID`] for the service
    /// threads).
    pub tid: ThreadId,
    /// The event.
    pub event: Event,
}

/// A per-thread, fixed-capacity event ring.
///
/// The hot path ([`TraceSink::emit`] / [`TraceSink::emit_at`]) is designed
/// to cost one predictable branch when tracing is disabled and one ring
/// write when enabled: no atomics, no locks, and no allocation after
/// construction (a disabled sink never allocates at all). When the ring
/// overflows, the *oldest* records are overwritten and counted in
/// [`TraceSink::dropped`] — a bounded trace of the most recent history, like
/// a flight recorder.
///
/// # Example
///
/// ```
/// use crossinvoc_runtime::trace::{Event, TraceSink};
///
/// let mut sink = TraceSink::with_capacity(3, 2);
/// sink.emit_at(5, Event::Checkpoint { epoch: 0 });
/// sink.emit_at(9, Event::Checkpoint { epoch: 1 });
/// sink.emit_at(12, Event::Checkpoint { epoch: 2 }); // evicts the first
/// assert_eq!(sink.len(), 2);
/// assert_eq!(sink.dropped(), 1);
///
/// let disabled = TraceSink::disabled();
/// assert!(!disabled.is_enabled());
/// ```
#[derive(Debug)]
pub struct TraceSink {
    tid: ThreadId,
    /// Plain bool, *not* atomic: the sink is single-owner by construction
    /// (one per thread), so the disabled check is branch-predictable and
    /// free of synchronization. This is the "tracing off costs zero atomic
    /// operations" guarantee the overhead smoke test pins down.
    enabled: bool,
    capacity: usize,
    buf: Vec<TraceRecord>,
    /// Next write slot once the ring is full.
    next: usize,
    dropped: u64,
    /// Wall-clock origin for [`TraceSink::emit`]; `None` for virtual-time
    /// sinks, whose callers stamp timestamps explicitly.
    origin: Option<Instant>,
}

impl TraceSink {
    /// A sink for thread `tid` holding at most `capacity` records, stamped
    /// with caller-provided (virtual) timestamps via [`TraceSink::emit_at`].
    pub fn with_capacity(tid: ThreadId, capacity: usize) -> Self {
        Self {
            tid,
            enabled: capacity > 0,
            capacity,
            buf: Vec::with_capacity(capacity),
            next: 0,
            dropped: 0,
            origin: None,
        }
    }

    /// Like [`TraceSink::with_capacity`], but [`TraceSink::emit`] stamps
    /// wall-clock nanoseconds since `origin`.
    pub fn with_origin(tid: ThreadId, capacity: usize, origin: Instant) -> Self {
        Self {
            origin: Some(origin),
            ..Self::with_capacity(tid, capacity)
        }
    }

    /// A permanently disabled sink: every emit is a single branch and the
    /// sink never allocates.
    pub fn disabled() -> Self {
        Self::with_capacity(0, 0)
    }

    /// Whether emits are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` stamped with the wall clock (no-op without an origin
    /// or when disabled).
    #[inline]
    pub fn emit(&mut self, event: Event) {
        if !self.enabled {
            return;
        }
        let t_ns = match self.origin {
            Some(origin) => origin.elapsed().as_nanos() as u64,
            None => 0,
        };
        self.push(TraceRecord {
            t_ns,
            tid: self.tid,
            event,
        });
    }

    /// Records `event` at the explicit timestamp `t_ns` (virtual time).
    #[inline]
    pub fn emit_at(&mut self, t_ns: u64, event: Event) {
        if !self.enabled {
            return;
        }
        self.push(TraceRecord {
            t_ns,
            tid: self.tid,
            event,
        });
    }

    fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records currently held (at most the capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Allocated ring capacity (zero for a disabled sink — the allocation
    /// itself is skipped, which the overhead smoke test asserts).
    pub fn ring_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Records evicted by ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the sink, returning its records in emission order.
    fn into_records(mut self) -> (Vec<TraceRecord>, u64) {
        // Rotate so the oldest surviving record comes first.
        if self.buf.len() == self.capacity && self.next > 0 {
            self.buf.rotate_left(self.next);
        }
        (self.buf, self.dropped)
    }
}

/// Shared factory/collection point for the sinks of one traced region.
///
/// The threaded engines create one collector per execution; each spawned
/// thread takes a sink ([`TraceCollector::sink`]), emits into it privately,
/// and hands it back ([`TraceCollector::absorb`]) before joining. The only
/// synchronization is the absorb-side mutex, which is touched once per
/// thread per pass — never on the event hot path.
#[derive(Debug)]
pub struct TraceCollector {
    capacity: usize,
    origin: Instant,
    region: u64,
    slots: Mutex<Vec<TraceSink>>,
}

impl TraceCollector {
    /// A collector handing out sinks of `capacity` records each; zero
    /// capacity disables tracing (sinks are inert and `finish` yields
    /// `None`).
    pub fn new(capacity: usize) -> Self {
        Self::with_region(capacity, 0)
    }

    /// A collector whose finished trace is attributed to `region` (the
    /// region-server submission id; `0` is the solo default and is omitted
    /// from the JSONL wire format for backward compatibility).
    pub fn with_region(capacity: usize, region: u64) -> Self {
        Self {
            capacity,
            origin: Instant::now(),
            region,
            slots: Mutex::new(Vec::new()),
        }
    }

    /// A disabled collector: every sink is inert, [`TraceCollector::finish`]
    /// returns `None`.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether sinks record events.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Nanoseconds since the collector's origin (for callers that need a
    /// timestamp outside a sink).
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// A fresh sink for `tid`, stamping wall-clock time from the shared
    /// origin.
    pub fn sink(&self, tid: ThreadId) -> TraceSink {
        if self.capacity == 0 {
            TraceSink::disabled()
        } else {
            TraceSink::with_origin(tid, self.capacity, self.origin)
        }
    }

    /// Returns a finished sink's records to the collector.
    pub fn absorb(&self, sink: TraceSink) {
        if sink.is_enabled() {
            self.slots
                .lock()
                .expect("trace collector poisoned")
                .push(sink);
        }
    }

    /// Merges every absorbed sink into a time-ordered [`Trace`]; `None` when
    /// tracing was disabled.
    pub fn finish(self) -> Option<Trace> {
        if self.capacity == 0 {
            return None;
        }
        let sinks = self.slots.into_inner().expect("trace collector poisoned");
        Some(Trace::from_sinks(sinks).with_region(self.region))
    }
}

/// A complete, time-ordered execution trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    dropped: u64,
    region: u64,
}

impl Trace {
    /// Builds a trace from per-thread sinks, merging by timestamp (ties
    /// break by thread id, then emission order — deterministic for the
    /// simulators' virtual clocks).
    pub fn from_sinks(sinks: impl IntoIterator<Item = TraceSink>) -> Self {
        let mut records = Vec::new();
        let mut dropped = 0;
        for sink in sinks {
            let (recs, drops) = sink.into_records();
            records.extend(recs);
            dropped += drops;
        }
        records.sort_by_key(|r| (r.t_ns, r.tid));
        Trace {
            records,
            dropped,
            region: 0,
        }
    }

    /// Builds a trace from loose records (sorts them).
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| (r.t_ns, r.tid));
        Trace {
            records,
            dropped: 0,
            region: 0,
        }
    }

    /// Attributes this trace to a region-server submission id. Region `0`
    /// (the default) marks a solo run and keeps the JSONL output
    /// byte-identical to the pre-region schema.
    pub fn with_region(mut self, region: u64) -> Self {
        self.region = region;
        self
    }

    /// The region-server submission id this trace is attributed to (`0` for
    /// solo runs).
    pub fn region(&self) -> u64 {
        self.region
    }

    /// The time-ordered records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records lost to ring overflow across all sinks.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Timestamp of the last record (the trace's span, since origins are 0).
    pub fn span_ns(&self) -> u64 {
        self.records.last().map_or(0, |r| r.t_ns)
    }

    /// Serializes to JSONL: one flat JSON object per record, schema per
    /// `docs/OBSERVABILITY.md`. Traces attributed to a non-zero region carry
    /// a `region_id` field on every line; region-0 (solo) output is
    /// byte-identical to the pre-region schema.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 64);
        for rec in &self.records {
            write_record(&mut out, rec, self.region);
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL trace produced by [`Trace::to_jsonl`] (or any stream
    /// following the documented schema). Blank lines are skipped.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] names the offending line and what was wrong.
    pub fn from_jsonl(input: &str) -> Result<Trace, TraceParseError> {
        let mut records = Vec::new();
        let mut region = 0;
        for (idx, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (record, line_region) = parse_record(line).map_err(|msg| TraceParseError {
                line: idx + 1,
                message: msg,
            })?;
            region = region.max(line_region);
            records.push(record);
        }
        Ok(Trace::from_records(records).with_region(region))
    }

    /// Like [`Trace::from_jsonl`], but keeps only the lines attributed to
    /// `region` — the per-region filter for merged multi-region streams.
    /// Note that region-0 lines carry no `region_id` field on the wire, so
    /// `region == 0` selects exactly the solo-schema lines.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] names the offending line and what was wrong
    /// (every line is parsed, matching or not).
    pub fn from_jsonl_region(input: &str, region: u64) -> Result<Trace, TraceParseError> {
        let mut records = Vec::new();
        for (idx, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (record, line_region) = parse_record(line).map_err(|msg| TraceParseError {
                line: idx + 1,
                message: msg,
            })?;
            if line_region == region {
                records.push(record);
            }
        }
        Ok(Trace::from_records(records).with_region(region))
    }
}

/// Why a JSONL trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

// ---- JSONL serialization ------------------------------------------------

fn fault_kind_wire(kind: FaultKind) -> (&'static str, Option<u64>) {
    match kind {
        FaultKind::WorkerPanic => ("worker_panic", None),
        FaultKind::CheckerStall(ms) => ("checker_stall", Some(ms)),
        FaultKind::CheckerDeath => ("checker_death", None),
        FaultKind::FalsePositive => ("false_positive", None),
        FaultKind::SnapshotFail => ("snapshot_fail", None),
        FaultKind::RestoreFail => ("restore_fail", None),
        FaultKind::Delay(us) => ("delay", Some(us)),
    }
}

fn fault_kind_parse(name: &str, param: Option<u64>) -> Result<FaultKind, String> {
    Ok(match name {
        "worker_panic" => FaultKind::WorkerPanic,
        "checker_stall" => FaultKind::CheckerStall(param.ok_or("checker_stall needs param")?),
        "checker_death" => FaultKind::CheckerDeath,
        "false_positive" => FaultKind::FalsePositive,
        "snapshot_fail" => FaultKind::SnapshotFail,
        "restore_fail" => FaultKind::RestoreFail,
        "delay" => FaultKind::Delay(param.ok_or("delay needs param")?),
        other => return Err(format!("unknown fault kind {other:?}")),
    })
}

fn write_record(out: &mut String, rec: &TraceRecord, region: u64) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"t\":{},\"tid\":{},\"ev\":\"{}\"",
        rec.t_ns,
        rec.tid,
        rec.event.name()
    );
    fn field(out: &mut String, key: &str, value: u64) {
        let _ = write!(out, ",\"{key}\":{value}");
    }
    match rec.event {
        Event::EpochBegin { epoch }
        | Event::EpochEnd { epoch }
        | Event::BarrierEnter { epoch }
        | Event::Checkpoint { epoch }
        | Event::ScheduleCacheHit { epoch }
        | Event::Degradation { epoch } => field(out, "epoch", epoch as u64),
        Event::CheckerSummary {
            epoch,
            skips,
            comparisons,
        } => {
            field(out, "epoch", epoch as u64);
            field(out, "skips", skips);
            field(out, "comparisons", comparisons);
        }
        Event::CheckerShard {
            shard,
            shards,
            requests,
        } => {
            field(out, "shard", shard as u64);
            field(out, "shards", shards as u64);
            field(out, "requests", requests);
        }
        Event::CheckElided {
            epoch,
            tasks,
            accesses,
        } => {
            field(out, "epoch", epoch as u64);
            field(out, "tasks", tasks);
            field(out, "accesses", accesses);
        }
        Event::BarrierLeave { epoch, wait_ns } => {
            field(out, "epoch", epoch as u64);
            field(out, "wait_ns", wait_ns);
        }
        Event::TaskDispatch { epoch, task } | Event::TaskRetire { epoch, task } => {
            field(out, "epoch", epoch as u64);
            field(out, "task", task);
        }
        Event::TaskAssign {
            epoch,
            task,
            worker,
        } => {
            field(out, "epoch", epoch as u64);
            field(out, "task", task);
            field(out, "worker", worker as u64);
        }
        Event::Misspeculation {
            earlier_tid,
            earlier_epoch,
            earlier_task,
            later_tid,
            later_epoch,
            later_task,
        } => {
            field(out, "earlier_tid", earlier_tid as u64);
            field(out, "earlier_epoch", earlier_epoch as u64);
            field(out, "earlier_task", earlier_task);
            field(out, "later_tid", later_tid as u64);
            field(out, "later_epoch", later_epoch as u64);
            field(out, "later_task", later_task);
        }
        Event::FaultInjected { kind, epoch, task } => {
            let (name, param) = fault_kind_wire(kind);
            let _ = write!(out, ",\"kind\":\"{name}\"");
            if let Some(p) = param {
                field(out, "param", p);
            }
            field(out, "epoch", epoch as u64);
            field(out, "task", task);
        }
        Event::Wake { edge, src_tid, seq } => {
            let _ = write!(out, ",\"edge\":\"{}\"", edge.name());
            field(out, "src_tid", src_tid as u64);
            field(out, "seq", seq);
        }
    }
    if region != 0 {
        field(out, "region_id", region);
    }
    out.push('}');
}

fn wake_edge_parse(name: &str) -> Result<WakeEdge, String> {
    Ok(match name {
        "barrier" => WakeEdge::Barrier,
        "queue" => WakeEdge::Queue,
        "checkpoint" => WakeEdge::Checkpoint,
        "checker" => WakeEdge::Checker,
        other => return Err(format!("unknown wake edge {other:?}")),
    })
}

/// Minimal parser for one flat JSON object with unsigned-integer and string
/// values — exactly the shape [`write_record`] produces. Unknown keys are an
/// error (the schema is closed; see `docs/OBSERVABILITY.md`). Returns the
/// record plus the line's `region_id` attribution (`0` when absent).
fn parse_record(line: &str) -> Result<(TraceRecord, u64), String> {
    let mut nums: Vec<(String, u64)> = Vec::new();
    let mut strs: Vec<(String, String)> = Vec::new();

    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // key
        if bytes[i] != b'"' {
            return Err(format!("expected key quote at byte {i}"));
        }
        let key_end = inner[i + 1..].find('"').ok_or("unterminated key")? + i + 1;
        let key = inner[i + 1..key_end].to_string();
        i = key_end + 1;
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        // value: string or unsigned integer
        if bytes.get(i) == Some(&b'"') {
            let val_end = inner[i + 1..]
                .find('"')
                .ok_or("unterminated string value")?
                + i
                + 1;
            strs.push((key, inner[i + 1..val_end].to_string()));
            i = val_end + 1;
        } else {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return Err(format!("expected number for key {key:?}"));
            }
            let v: u64 = inner[start..i]
                .parse()
                .map_err(|_| format!("number out of range for key {key:?}"))?;
            nums.push((key, v));
        }
        if bytes.get(i) == Some(&b',') {
            i += 1;
        } else if i != bytes.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
    }

    let num = |key: &str| -> Result<u64, String> {
        nums.iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let opt_num = |key: &str| nums.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
    let str_field = |key: &str| -> Result<&str, String> {
        strs.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing field {key:?}"))
    };

    let t_ns = num("t")?;
    let tid = num("tid")? as usize;
    let ev = str_field("ev")?;
    let epoch = |v: u64| -> u32 { v as u32 };
    let event = match ev {
        "epoch_begin" => Event::EpochBegin {
            epoch: epoch(num("epoch")?),
        },
        "epoch_end" => Event::EpochEnd {
            epoch: epoch(num("epoch")?),
        },
        "task_assign" => Event::TaskAssign {
            epoch: epoch(num("epoch")?),
            task: num("task")?,
            worker: num("worker")? as usize,
        },
        "task_dispatch" => Event::TaskDispatch {
            epoch: epoch(num("epoch")?),
            task: num("task")?,
        },
        "task_retire" => Event::TaskRetire {
            epoch: epoch(num("epoch")?),
            task: num("task")?,
        },
        "barrier_enter" => Event::BarrierEnter {
            epoch: epoch(num("epoch")?),
        },
        "barrier_leave" => Event::BarrierLeave {
            epoch: epoch(num("epoch")?),
            wait_ns: num("wait_ns")?,
        },
        "checkpoint" => Event::Checkpoint {
            epoch: epoch(num("epoch")?),
        },
        "checker_summary" => Event::CheckerSummary {
            epoch: epoch(num("epoch")?),
            skips: num("skips")?,
            comparisons: num("comparisons")?,
        },
        "checker_shard" => Event::CheckerShard {
            shard: epoch(num("shard")?),
            shards: epoch(num("shards")?),
            requests: num("requests")?,
        },
        "check_elided" => Event::CheckElided {
            epoch: epoch(num("epoch")?),
            tasks: num("tasks")?,
            accesses: num("accesses")?,
        },
        "schedule_cache_hit" => Event::ScheduleCacheHit {
            epoch: epoch(num("epoch")?),
        },
        "degradation" => Event::Degradation {
            epoch: epoch(num("epoch")?),
        },
        "misspeculation" => Event::Misspeculation {
            earlier_tid: num("earlier_tid")? as usize,
            earlier_epoch: epoch(num("earlier_epoch")?),
            earlier_task: num("earlier_task")?,
            later_tid: num("later_tid")? as usize,
            later_epoch: epoch(num("later_epoch")?),
            later_task: num("later_task")?,
        },
        "fault" => Event::FaultInjected {
            kind: fault_kind_parse(str_field("kind")?, opt_num("param"))?,
            epoch: epoch(num("epoch")?),
            task: num("task")?,
        },
        "wake" => Event::Wake {
            edge: wake_edge_parse(str_field("edge")?)?,
            src_tid: num("src_tid")? as usize,
            seq: num("seq")?,
        },
        other => return Err(format!("unknown event {other:?}")),
    };
    let region = opt_num("region_id").unwrap_or(0);
    Ok((TraceRecord { t_ns, tid, event }, region))
}

// ---- Trace analysis -----------------------------------------------------

/// One misspeculation as reconstructed from a trace: when it was detected
/// and which task pair conflicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MisspecEntry {
    /// Detection timestamp.
    pub t_ns: u64,
    /// `(tid, epoch, task)` of the earlier-epoch participant.
    pub earlier: (ThreadId, u32, u64),
    /// `(tid, epoch, task)` of the later-epoch participant.
    pub later: (ThreadId, u32, u64),
}

/// Per-thread totals reconstructed from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadBreakdown {
    /// Thread id.
    pub tid: ThreadId,
    /// Tasks the scheduler routed to this worker ([`Event::TaskAssign`]
    /// events naming it). Zero on engines that do not emit assignments.
    pub assigned: u64,
    /// Tasks retired.
    pub tasks: u64,
    /// Synchronization waits (barrier/rendezvous/condition) endured.
    pub barrier_waits: u64,
    /// Total nanoseconds spent in those waits.
    pub barrier_wait_ns: u64,
    /// Total nanoseconds spent executing tasks (sum of matched
    /// dispatch→retire intervals).
    pub busy_ns: u64,
}

/// An injected fault as it appears in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultFiring {
    /// Firing timestamp.
    pub t_ns: u64,
    /// Thread at which it fired.
    pub tid: ThreadId,
    /// The fault.
    pub kind: FaultKind,
    /// Epoch coordinate.
    pub epoch: u32,
    /// Task coordinate.
    pub task: u64,
}

/// Everything the `trace-report` tool derives from a [`Trace`]: the
/// barrier-idle breakdown (Fig. 4.3), the misspeculation ledger
/// (Table 5.3's checking story), the fault ledger, and a per-thread
/// utilization timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Trace span (timestamp of the last record).
    pub span_ns: u64,
    /// Per-thread totals, sorted by thread id (service threads last).
    pub threads: Vec<ThreadBreakdown>,
    /// Misspeculations in detection order.
    pub misspeculations: Vec<MisspecEntry>,
    /// Injected-fault firings in time order.
    pub faults: Vec<FaultFiring>,
    /// Checkpoint epochs in time order.
    pub checkpoints: Vec<u32>,
    /// Epochs at which the region degraded to barrier execution.
    pub degradations: Vec<u32>,
    /// Causality-edge counts per class, indexed like [`WakeEdge::ALL`].
    pub wakes: [u64; 4],
    /// Whole-epoch checker-log skips summed over every
    /// [`Event::CheckerSummary`] in the trace.
    pub checker_epoch_skips: u64,
    /// Signature comparisons summed over every [`Event::CheckerSummary`].
    pub checker_comparisons: u64,
    /// Per-shard admitted-request totals from [`Event::CheckerShard`] rows,
    /// indexed by shard. Empty when the trace carries no shard rows
    /// (pre-sharding traces); length 1 for a single-shard checker.
    pub checker_shard_requests: Vec<u64>,
    /// Invocations replayed from the DOMORE schedule memo
    /// ([`Event::ScheduleCacheHit`] count).
    pub schedule_cache_hits: u64,
    /// Tasks that ran under a static conflict-freedom proof, summed over
    /// every [`Event::CheckElided`] in the trace.
    pub elided_tasks: u64,
    /// Speculative accesses executed under the proof (signature records and
    /// admissions that never happened), summed over [`Event::CheckElided`].
    pub elided_accesses: u64,
    /// Records lost to ring overflow (analysis is approximate if nonzero).
    pub dropped: u64,
}

impl TraceReport {
    /// Reconstructs the report from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut threads: Vec<ThreadBreakdown> = Vec::new();
        let mut open_tasks: Vec<(ThreadId, u64)> = Vec::new(); // (tid, dispatch t)
        let mut misspeculations = Vec::new();
        let mut faults = Vec::new();
        let mut checkpoints = Vec::new();
        let mut degradations = Vec::new();
        let mut wakes = [0u64; 4];
        let mut checker_epoch_skips = 0u64;
        let mut checker_comparisons = 0u64;
        let mut checker_shard_requests: Vec<u64> = Vec::new();
        let mut schedule_cache_hits = 0u64;
        let mut elided_tasks = 0u64;
        let mut elided_accesses = 0u64;

        let slot = |threads: &mut Vec<ThreadBreakdown>, tid: ThreadId| -> usize {
            match threads.iter().position(|t| t.tid == tid) {
                Some(i) => i,
                None => {
                    threads.push(ThreadBreakdown {
                        tid,
                        ..Default::default()
                    });
                    threads.len() - 1
                }
            }
        };

        for rec in trace.records() {
            match rec.event {
                Event::TaskAssign { worker, .. } => {
                    // Credited to the *named* worker: the event itself sits
                    // on the scheduler's timeline.
                    let i = slot(&mut threads, worker);
                    threads[i].assigned += 1;
                }
                Event::TaskDispatch { .. } => {
                    // Remember the dispatch time; the matching retire (same
                    // tid, next retire) closes the busy interval.
                    open_tasks.push((rec.tid, rec.t_ns));
                }
                Event::TaskRetire { .. } => {
                    let i = slot(&mut threads, rec.tid);
                    threads[i].tasks += 1;
                    if let Some(pos) = open_tasks.iter().position(|&(t, _)| t == rec.tid) {
                        let (_, start) = open_tasks.swap_remove(pos);
                        threads[i].busy_ns += rec.t_ns.saturating_sub(start);
                    }
                }
                Event::BarrierLeave { wait_ns, .. } => {
                    let i = slot(&mut threads, rec.tid);
                    threads[i].barrier_waits += 1;
                    threads[i].barrier_wait_ns += wait_ns;
                }
                Event::Misspeculation {
                    earlier_tid,
                    earlier_epoch,
                    earlier_task,
                    later_tid,
                    later_epoch,
                    later_task,
                } => misspeculations.push(MisspecEntry {
                    t_ns: rec.t_ns,
                    earlier: (earlier_tid, earlier_epoch, earlier_task),
                    later: (later_tid, later_epoch, later_task),
                }),
                Event::FaultInjected { kind, epoch, task } => faults.push(FaultFiring {
                    t_ns: rec.t_ns,
                    tid: rec.tid,
                    kind,
                    epoch,
                    task,
                }),
                Event::Checkpoint { epoch } => checkpoints.push(epoch),
                Event::CheckerSummary {
                    skips, comparisons, ..
                } => {
                    checker_epoch_skips += skips;
                    checker_comparisons += comparisons;
                }
                Event::CheckerShard {
                    shard, requests, ..
                } => {
                    let shard = shard as usize;
                    if checker_shard_requests.len() <= shard {
                        checker_shard_requests.resize(shard + 1, 0);
                    }
                    // Summed across passes: recovery re-runs emit a fresh
                    // row per shard.
                    checker_shard_requests[shard] += requests;
                }
                Event::CheckElided {
                    tasks, accesses, ..
                } => {
                    elided_tasks += tasks;
                    elided_accesses += accesses;
                }
                Event::ScheduleCacheHit { .. } => schedule_cache_hits += 1,
                Event::Degradation { epoch } => degradations.push(epoch),
                Event::Wake { edge, .. } => wakes[edge.index()] += 1,
                Event::EpochBegin { .. } | Event::EpochEnd { .. } | Event::BarrierEnter { .. } => {}
            }
        }
        threads.sort_by_key(|t| t.tid);
        TraceReport {
            span_ns: trace.span_ns(),
            threads,
            misspeculations,
            faults,
            checkpoints,
            degradations,
            wakes,
            checker_epoch_skips,
            checker_comparisons,
            checker_shard_requests,
            schedule_cache_hits,
            elided_tasks,
            elided_accesses,
            dropped: trace.dropped(),
        }
    }

    /// Fraction of aggregate worker time lost to synchronization waits —
    /// the Fig. 4.3 quantity, from the trace instead of counters. Service
    /// threads (manager/checker) are excluded, matching the figure's
    /// accounting.
    pub fn barrier_idle_fraction(&self) -> f64 {
        let workers = self.threads.iter().filter(|t| !is_service_tid(t.tid));
        let (mut busy, mut wait) = (0u64, 0u64);
        for t in workers {
            busy += t.busy_ns;
            wait += t.barrier_wait_ns;
        }
        if busy + wait == 0 {
            0.0
        } else {
            wait as f64 / (busy + wait) as f64
        }
    }

    /// Scheduler load balance from [`Event::TaskAssign`] events: the ratio
    /// of the most-assigned worker's task count to the mean over all worker
    /// rows (`1.0` is perfectly balanced, `num_workers` is fully serialized
    /// onto one worker). `None` when the trace carries no assignments (e.g.
    /// SPECCROSS, which has no scheduler).
    pub fn dispatch_balance(&self) -> Option<f64> {
        let workers: Vec<&ThreadBreakdown> = self
            .threads
            .iter()
            .filter(|t| !is_service_tid(t.tid))
            .collect();
        let total: u64 = workers.iter().map(|t| t.assigned).sum();
        if total == 0 || workers.is_empty() {
            return None;
        }
        let max = workers.iter().map(|t| t.assigned).max().unwrap_or(0);
        let mean = total as f64 / workers.len() as f64;
        Some(max as f64 / mean)
    }

    /// Per-thread busy fraction per time bucket: `timeline(n)[i][b]` is the
    /// fraction of bucket `b` that worker `i` (in [`TraceReport::threads`]
    /// order) spent executing tasks. Derived from matched dispatch→retire
    /// pairs, so a bucket with no completed task reads as idle.
    pub fn utilization_timeline(&self, trace: &Trace, buckets: usize) -> Vec<Vec<f64>> {
        let span = self.span_ns.max(1);
        let bucket_ns = span.div_ceil(buckets.max(1) as u64).max(1);
        let mut rows = vec![vec![0.0f64; buckets]; self.threads.len()];
        let row = |tid: ThreadId| self.threads.iter().position(|t| t.tid == tid);
        let mut open: Vec<(ThreadId, u64)> = Vec::new();
        for rec in trace.records() {
            match rec.event {
                Event::TaskDispatch { .. } => open.push((rec.tid, rec.t_ns)),
                Event::TaskRetire { .. } => {
                    let Some(pos) = open.iter().position(|&(t, _)| t == rec.tid) else {
                        continue;
                    };
                    let (_, start) = open.swap_remove(pos);
                    let Some(r) = row(rec.tid) else { continue };
                    // Spread the busy interval across the buckets it covers.
                    let (mut a, b) = (start, rec.t_ns.max(start));
                    while a < b {
                        let bucket = ((a / bucket_ns) as usize).min(buckets - 1);
                        let bucket_end = (bucket as u64 + 1) * bucket_ns;
                        let chunk = b.min(bucket_end) - a;
                        rows[r][bucket] += chunk as f64 / bucket_ns as f64;
                        a += chunk.max(1);
                    }
                }
                _ => {}
            }
        }
        for row in &mut rows {
            for v in row.iter_mut() {
                *v = v.min(1.0);
            }
        }
        rows
    }

    /// Renders the report as the human-readable text the `trace-report`
    /// binary prints.
    pub fn render(&self, trace: &Trace) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "span: {} ns, {} records",
            self.span_ns,
            trace.records().len()
        );
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "warning: {} records dropped by ring overflow; totals are lower bounds",
                self.dropped
            );
        }
        let _ = writeln!(
            out,
            "barrier-idle fraction (workers): {:.1}%",
            100.0 * self.barrier_idle_fraction()
        );
        if let Some(balance) = self.dispatch_balance() {
            let _ = writeln!(out, "dispatch balance (max/mean assigned): {balance:.2}");
        }
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>8} {:>14} {:>14}",
            "thread", "assigned", "tasks", "waits", "wait_ns", "busy_ns"
        );
        for t in &self.threads {
            let name = match t.tid {
                MANAGER_TID => "manager".to_string(),
                CHECKER_TID => "checker".to_string(),
                tid => match checker_shard_of_tid(tid) {
                    Some(shard) => format!("checker-{shard}"),
                    None => format!("worker-{tid}"),
                },
            };
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>10} {:>8} {:>14} {:>14}",
                name, t.assigned, t.tasks, t.barrier_waits, t.barrier_wait_ns, t.busy_ns
            );
        }
        const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let timeline = self.utilization_timeline(trace, 40);
        if timeline.iter().any(|row| row.iter().any(|&v| v > 0.0)) {
            let _ = writeln!(out, "utilization timeline (40 buckets):");
            for (t, row) in self.threads.iter().zip(&timeline) {
                if is_service_tid(t.tid) {
                    continue;
                }
                let bar: String = row
                    .iter()
                    .map(|&v| BLOCKS[((v * 8.0).round() as usize).min(8)])
                    .collect();
                let _ = writeln!(out, "  worker-{:<3} |{bar}|", t.tid);
            }
        }
        let _ = writeln!(out, "checkpoints: {:?}", self.checkpoints);
        if self.checker_epoch_skips > 0 || self.checker_comparisons > 0 {
            let _ = writeln!(
                out,
                "checker fast path: {} epoch skips, {} comparisons",
                self.checker_epoch_skips, self.checker_comparisons
            );
        }
        if !self.checker_shard_requests.is_empty() {
            let _ = writeln!(
                out,
                "checker shards: {} (requests per shard: {:?})",
                self.checker_shard_requests.len(),
                self.checker_shard_requests
            );
        }
        if self.elided_tasks > 0 {
            let total: u64 = self.threads.iter().map(|t| t.tasks).sum();
            let pct = if total > 0 {
                100.0 * self.elided_tasks as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "static elision: {} proven accesses, {} admits skipped ({pct:.1}% of tasks fully elided)",
                self.elided_accesses, self.elided_tasks
            );
        }
        if self.schedule_cache_hits > 0 {
            let _ = writeln!(
                out,
                "schedule cache: {} invocations replayed from memo",
                self.schedule_cache_hits
            );
        }
        if self.wakes.iter().any(|&n| n > 0) {
            let counts: Vec<String> = WakeEdge::ALL
                .iter()
                .zip(self.wakes.iter())
                .filter(|(_, &n)| n > 0)
                .map(|(e, n)| format!("{e}={n}"))
                .collect();
            let _ = writeln!(out, "causality edges: {}", counts.join(" "));
        }
        if !self.misspeculations.is_empty() {
            let _ = writeln!(out, "misspeculation ledger:");
            for m in &self.misspeculations {
                let _ = writeln!(
                    out,
                    "  t={} earlier=(tid {}, epoch {}, task {}) later=(tid {}, epoch {}, task {})",
                    m.t_ns, m.earlier.0, m.earlier.1, m.earlier.2, m.later.0, m.later.1, m.later.2
                );
            }
        }
        if !self.faults.is_empty() {
            let _ = writeln!(out, "injected faults:");
            for f in &self.faults {
                let _ = writeln!(
                    out,
                    "  t={} tid={} {} at (epoch {}, task {})",
                    f.t_ns, f.tid, f.kind, f.epoch, f.task
                );
            }
        }
        for epoch in &self.degradations {
            let _ = writeln!(out, "degraded to barrier execution from epoch {epoch}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                t_ns: 0,
                tid: MANAGER_TID,
                event: Event::Checkpoint { epoch: 0 },
            },
            TraceRecord {
                t_ns: 5,
                tid: 0,
                event: Event::EpochBegin { epoch: 0 },
            },
            TraceRecord {
                t_ns: 10,
                tid: 0,
                event: Event::TaskDispatch { epoch: 0, task: 0 },
            },
            TraceRecord {
                t_ns: 30,
                tid: 0,
                event: Event::TaskRetire { epoch: 0, task: 0 },
            },
            TraceRecord {
                t_ns: 35,
                tid: 1,
                event: Event::BarrierEnter { epoch: 0 },
            },
            TraceRecord {
                t_ns: 60,
                tid: 1,
                event: Event::BarrierLeave {
                    epoch: 0,
                    wait_ns: 25,
                },
            },
            TraceRecord {
                t_ns: 60,
                tid: 1,
                event: Event::Wake {
                    edge: WakeEdge::Barrier,
                    src_tid: 0,
                    seq: 0,
                },
            },
            TraceRecord {
                t_ns: 70,
                tid: CHECKER_TID,
                event: Event::Misspeculation {
                    earlier_tid: 0,
                    earlier_epoch: 0,
                    earlier_task: 0,
                    later_tid: 1,
                    later_epoch: 1,
                    later_task: 2,
                },
            },
            TraceRecord {
                t_ns: 75,
                tid: 1,
                event: Event::FaultInjected {
                    kind: FaultKind::CheckerStall(5),
                    epoch: 1,
                    task: 2,
                },
            },
            TraceRecord {
                t_ns: 76,
                tid: CHECKER_TID,
                event: Event::CheckerSummary {
                    epoch: 1,
                    skips: 4,
                    comparisons: 9,
                },
            },
            TraceRecord {
                t_ns: 77,
                tid: CHECKER_TID,
                event: Event::CheckerShard {
                    shard: 0,
                    shards: 2,
                    requests: 6,
                },
            },
            TraceRecord {
                t_ns: 77,
                tid: checker_shard_tid(1),
                event: Event::CheckerShard {
                    shard: 1,
                    shards: 2,
                    requests: 3,
                },
            },
            TraceRecord {
                t_ns: 77,
                tid: 0,
                event: Event::CheckElided {
                    epoch: 1,
                    tasks: 3,
                    accesses: 12,
                },
            },
            TraceRecord {
                t_ns: 78,
                tid: MANAGER_TID,
                event: Event::ScheduleCacheHit { epoch: 1 },
            },
            TraceRecord {
                t_ns: 80,
                tid: MANAGER_TID,
                event: Event::Degradation { epoch: 1 },
            },
            TraceRecord {
                t_ns: 90,
                tid: 0,
                event: Event::EpochEnd { epoch: 1 },
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_preserves_every_event() {
        let trace = Trace::from_records(sample_records());
        let jsonl = trace.to_jsonl();
        let parsed = Trace::from_jsonl(&jsonl).expect("parse");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn region_id_round_trips_and_region_zero_is_wire_invisible() {
        let solo = Trace::from_records(sample_records());
        assert_eq!(solo.region(), 0);
        assert!(
            !solo.to_jsonl().contains("region_id"),
            "region-0 output must stay byte-identical to the pre-region schema"
        );

        let regioned = Trace::from_records(sample_records()).with_region(7);
        let jsonl = regioned.to_jsonl();
        assert!(
            jsonl.lines().all(|l| l.contains("\"region_id\":7")),
            "every line of a regioned trace carries the attribution"
        );
        let parsed = Trace::from_jsonl(&jsonl).expect("parse");
        assert_eq!(parsed.region(), 7);
        assert_eq!(parsed, regioned);
    }

    #[test]
    fn regioned_collector_stamps_its_trace() {
        let collector = TraceCollector::with_region(16, 42);
        let mut sink = collector.sink(0);
        sink.emit(Event::Checkpoint { epoch: 0 });
        collector.absorb(sink);
        let trace = collector.finish().expect("enabled");
        assert_eq!(trace.region(), 42);
    }

    #[test]
    fn every_fault_kind_round_trips() {
        let kinds = [
            FaultKind::WorkerPanic,
            FaultKind::CheckerStall(7),
            FaultKind::CheckerDeath,
            FaultKind::FalsePositive,
            FaultKind::SnapshotFail,
            FaultKind::RestoreFail,
            FaultKind::Delay(123),
        ];
        let records: Vec<_> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| TraceRecord {
                t_ns: i as u64,
                tid: i,
                event: Event::FaultInjected {
                    kind,
                    epoch: i as u32,
                    task: i as u64 * 3,
                },
            })
            .collect();
        let trace = Trace::from_records(records);
        assert_eq!(Trace::from_jsonl(&trace.to_jsonl()).unwrap(), trace);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "not json",
            "{\"t\":1}",
            "{\"t\":1,\"tid\":0,\"ev\":\"no_such_event\"}",
            "{\"t\":1,\"tid\":0,\"ev\":\"task_retire\",\"epoch\":0}",
            "{\"t\":-5,\"tid\":0,\"ev\":\"checkpoint\",\"epoch\":0}",
            "{\"t\":1,\"tid\":0,\"ev\":\"wake\",\"edge\":\"mystery\",\"src_tid\":0,\"seq\":0}",
            "{\"t\":1,\"tid\":0,\"ev\":\"wake\",\"src_tid\":0,\"seq\":0}",
        ] {
            assert!(Trace::from_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn every_wake_edge_round_trips() {
        let records: Vec<_> = WakeEdge::ALL
            .iter()
            .enumerate()
            .map(|(i, &edge)| TraceRecord {
                t_ns: i as u64,
                tid: i,
                event: Event::Wake {
                    edge,
                    src_tid: if i % 2 == 0 { MANAGER_TID } else { CHECKER_TID },
                    seq: i as u64 * 7,
                },
            })
            .collect();
        let trace = Trace::from_records(records);
        assert_eq!(Trace::from_jsonl(&trace.to_jsonl()).unwrap(), trace);
    }

    #[test]
    fn sink_ring_keeps_most_recent_records() {
        let mut sink = TraceSink::with_capacity(0, 3);
        for i in 0..5u64 {
            sink.emit_at(i, Event::Checkpoint { epoch: i as u32 });
        }
        assert_eq!(sink.dropped(), 2);
        let trace = Trace::from_sinks([sink]);
        let epochs: Vec<u32> = trace
            .records()
            .iter()
            .map(|r| match r.event {
                Event::Checkpoint { epoch } => epoch,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(epochs, vec![2, 3, 4]);
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn disabled_sink_never_allocates_or_records() {
        let mut sink = TraceSink::disabled();
        for i in 0..10_000u64 {
            sink.emit_at(i, Event::TaskRetire { epoch: 0, task: i });
            sink.emit(Event::EpochBegin { epoch: 0 });
        }
        assert!(sink.is_empty());
        assert_eq!(sink.ring_capacity(), 0, "no buffer was ever allocated");
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn collector_merges_sinks_time_ordered() {
        let collector = TraceCollector::new(16);
        let mut a = collector.sink(0);
        let mut b = collector.sink(1);
        a.emit(Event::EpochBegin { epoch: 0 });
        b.emit(Event::EpochBegin { epoch: 0 });
        a.emit(Event::EpochEnd { epoch: 0 });
        collector.absorb(a);
        collector.absorb(b);
        let trace = collector.finish().expect("enabled");
        assert_eq!(trace.records().len(), 3);
        let ts: Vec<u64> = trace.records().iter().map(|r| r.t_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn disabled_collector_finishes_to_none() {
        let collector = TraceCollector::disabled();
        let mut sink = collector.sink(3);
        sink.emit(Event::EpochBegin { epoch: 0 });
        collector.absorb(sink);
        assert!(collector.finish().is_none());
    }

    #[test]
    fn report_reconstructs_breakdown_and_ledgers() {
        let trace = Trace::from_records(sample_records());
        let report = TraceReport::from_trace(&trace);
        assert_eq!(report.span_ns, 90);
        assert_eq!(report.misspeculations.len(), 1);
        assert_eq!(report.misspeculations[0].later, (1, 1, 2));
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.checkpoints, vec![0]);
        assert_eq!(report.degradations, vec![1]);
        assert_eq!(report.wakes, [1, 0, 0, 0]);
        assert_eq!(report.checker_epoch_skips, 4);
        assert_eq!(report.checker_comparisons, 9);
        assert_eq!(report.checker_shard_requests, vec![6, 3]);
        assert_eq!(report.schedule_cache_hits, 1);
        assert_eq!(report.elided_tasks, 3);
        assert_eq!(report.elided_accesses, 12);
        let w0 = report.threads.iter().find(|t| t.tid == 0).unwrap();
        assert_eq!(w0.tasks, 1);
        assert_eq!(w0.busy_ns, 20);
        let w1 = report.threads.iter().find(|t| t.tid == 1).unwrap();
        assert_eq!(w1.barrier_waits, 1);
        assert_eq!(w1.barrier_wait_ns, 25);
        // Worker 1 did nothing but wait, worker 0 nothing but work.
        let frac = report.barrier_idle_fraction();
        assert!((frac - 25.0 / 45.0).abs() < 1e-9, "{frac}");
        let render = report.render(&trace);
        assert!(render.contains("misspeculation ledger"));
        assert!(render.contains("worker-0"));
        assert!(render.contains("checker shards: 2"));
    }

    #[test]
    fn checker_shard_tids_map_back_to_shards() {
        assert_eq!(checker_shard_tid(0), CHECKER_TID);
        assert_eq!(checker_shard_of_tid(CHECKER_TID), Some(0));
        assert_eq!(checker_shard_of_tid(checker_shard_tid(63)), Some(63));
        assert_eq!(checker_shard_of_tid(MANAGER_TID), None);
        assert_eq!(checker_shard_of_tid(0), None);
        assert!(is_service_tid(MANAGER_TID));
        assert!(is_service_tid(checker_shard_tid(5)));
        assert!(!is_service_tid(7));
    }

    #[test]
    fn utilization_timeline_localizes_busy_intervals() {
        let trace = Trace::from_records(vec![
            TraceRecord {
                t_ns: 0,
                tid: 0,
                event: Event::TaskDispatch { epoch: 0, task: 0 },
            },
            TraceRecord {
                t_ns: 50,
                tid: 0,
                event: Event::TaskRetire { epoch: 0, task: 0 },
            },
            TraceRecord {
                t_ns: 100,
                tid: 0,
                event: Event::EpochEnd { epoch: 0 },
            },
        ]);
        let report = TraceReport::from_trace(&trace);
        let rows = report.utilization_timeline(&trace, 2);
        assert_eq!(rows.len(), 1);
        assert!(rows[0][0] > 0.9, "first half busy: {:?}", rows[0]);
        assert!(rows[0][1] < 0.1, "second half idle: {:?}", rows[0]);
    }
}
