//! The workload contract consumed by the DOMORE runtime.
//!
//! A [`DomoreWorkload`] describes the loop nest of §3.1: an outer loop whose
//! body consists of optional sequential code (the *prologue*, executed by the
//! scheduler thread) followed by one parallelizable inner-loop invocation.
//! The runtime never inspects the kernel itself; it only needs the iteration
//! space, the set of shared addresses each iteration touches (the
//! `computeAddr` function the compiler extracts by program slicing, §3.3.4)
//! and a way to run one iteration.

use crossinvoc_runtime::ThreadId;

/// A loop nest amenable to DOMORE parallelization.
///
/// Implementations must uphold two contracts the compiler establishes for
/// generated code:
///
/// 1. **Address completeness.** [`touched_addrs`](Self::touched_addrs) must
///    report (a superset of) every shared location
///    [`execute_iteration`](Self::execute_iteration) reads or writes that may
///    also be accessed by another iteration of *any* invocation. Missing
///    addresses produce unsynchronized conflicting accesses — the analogue of
///    a compiler bug, and undefined behaviour if the kernel uses
///    [`crossinvoc_runtime::SharedSlice`].
/// 2. **Purity of the oracle.** `touched_addrs` must be side-effect free and
///    must not depend on the kernel's own updates within the same invocation
///    (the thesis aborts the transformation otherwise, §3.3.4; Fig. 4.1 shows
///    a nest that fails this test and needs SPECCROSS instead).
pub trait DomoreWorkload: Sync {
    /// Number of outer-loop iterations (inner-loop invocations).
    fn num_invocations(&self) -> usize;

    /// Sequential code at the top of outer-loop iteration `inv`
    /// (statements A–C of the CG example, Fig. 3.1). Runs on the scheduler
    /// thread, before any iteration of invocation `inv` is dispatched.
    fn prologue(&self, inv: usize) {
        let _ = inv;
    }

    /// Number of inner-loop iterations in invocation `inv`.
    ///
    /// Called after [`prologue`](Self::prologue)`(inv)`, so the bound may
    /// depend on prologue-computed state.
    fn num_iterations(&self, inv: usize) -> usize;

    /// The `computeAddr` oracle: appends every shared address iteration
    /// `(inv, iter)` may access to `out` (which arrives empty).
    fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>);

    /// Read/write-aware `computeAddr`: appends written and read shared
    /// addresses separately (both arrive empty). The default treats every
    /// address as written — the thesis' conservative single-tuple shadow —
    /// which is always sound; overriding lets the scheduler skip read-read
    /// pairs (gather patterns are then never serialized).
    fn touched(&self, inv: usize, iter: usize, writes: &mut Vec<usize>, reads: &mut Vec<usize>) {
        let _ = reads;
        self.touched_addrs(inv, iter, writes);
    }

    /// Executes iteration `iter` of invocation `inv` on worker `tid`.
    fn execute_iteration(&self, inv: usize, iter: usize, tid: ThreadId);

    /// Whether the prologue may safely be re-executed by every worker.
    ///
    /// The duplicated-scheduler variant (§3.4) runs the scheduling loop —
    /// including prologues — on all workers; that is sound only when the
    /// prologue is idempotent and race-free under replication (e.g. it only
    /// computes loop bounds from read-only state). The thesis notes DOMORE's
    /// separate scheduler is the general solution precisely because this
    /// cannot always be guaranteed.
    fn prologue_is_replicable(&self) -> bool {
        true
    }

    /// Upper bound (exclusive) on addresses reported by
    /// [`touched_addrs`](Self::touched_addrs), if small enough for dense
    /// shadow memory. `None` selects sparse shadow memory.
    fn address_space(&self) -> Option<usize> {
        None
    }

    /// Total iterations across all invocations; useful for sizing.
    fn total_iterations(&self) -> usize
    where
        Self: Sized,
    {
        (0..self.num_invocations())
            .map(|inv| self.num_iterations(inv))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy;
    impl DomoreWorkload for Toy {
        fn num_invocations(&self) -> usize {
            3
        }
        fn num_iterations(&self, inv: usize) -> usize {
            inv + 1
        }
        fn touched_addrs(&self, _inv: usize, iter: usize, out: &mut Vec<usize>) {
            out.push(iter);
        }
        fn execute_iteration(&self, _inv: usize, _iter: usize, _tid: ThreadId) {}
    }

    #[test]
    fn total_iterations_sums_invocations() {
        assert_eq!(Toy.total_iterations(), 1 + 2 + 3);
    }

    #[test]
    fn defaults_are_permissive() {
        assert!(Toy.prologue_is_replicable());
        assert_eq!(Toy.address_space(), None);
        Toy.prologue(0); // default prologue is a no-op
    }
}
