//! End-to-end validation of the automatic transformations: PIR programs
//! are parallelized by `DomorePlan`/`SpecCrossPlan` and executed on the
//! *real* threaded runtimes; the resulting memory must be byte-identical to
//! sequential interpretation.

use crossinvoc_pir::interp::Memory;
use crossinvoc_pir::ir::{CallEffect, Expr, Program, ProgramBuilder, StmtId};
use crossinvoc_pir::transform::{DomorePlan, SpecCrossPlan, TransformError};
use crossinvoc_speccross::engine::SpecConfig;

/// Builds the CG-style nest of Fig. 3.1: irregular inner bounds read from
/// arrays, inner loop updating `C[j]` — DOALL inner, dependence-laden
/// outer. Returns (program, outer, inner).
fn cg_nest(rows: usize, cells: usize) -> (Program, StmtId, StmtId) {
    let mut b = ProgramBuilder::new();
    let starts = b.array("starts", rows);
    let ends = b.array("ends", rows);
    let c = b.array("C", cells);
    let i = b.var("i");
    let j = b.var("j");
    let start = b.var("start");
    let end = b.var("end");
    let t = b.var("t");
    let k = b.var("k");
    // Initialize irregular (overlapping) row extents:
    // starts[i] = (i*3) % cells, ends[i] = starts[i] + 5 (clamped).
    b.for_loop(k, Expr::Const(0), Expr::Const(rows as i64), |b| {
        let s = Expr::rem(
            Expr::mul(Expr::Var(k), Expr::Const(3)),
            Expr::Const(cells as i64),
        );
        b.store(starts, Expr::Var(k), s.clone());
        let e = Expr::add(s, Expr::Const(5));
        b.store(
            ends,
            Expr::Var(k),
            // min(e, cells) via e - (e >= cells) * (e - cells)
            Expr::sub(
                e.clone(),
                Expr::mul(
                    Expr::sub(
                        Expr::Const(1),
                        Expr::lt(e.clone(), Expr::Const(cells as i64)),
                    ),
                    Expr::sub(e, Expr::Const(cells as i64)),
                ),
            ),
        );
    });
    let mut inner = StmtId(0);
    let outer = b.for_loop(i, Expr::Const(0), Expr::Const(rows as i64), |b| {
        b.load(start, starts, Expr::Var(i));
        b.load(end, ends, Expr::Var(i));
        inner = b.for_loop(j, Expr::Var(start), Expr::Var(end), |b| {
            b.load(t, c, Expr::Var(j));
            b.store(
                c,
                Expr::Var(j),
                Expr::add(Expr::mul(Expr::Var(t), Expr::Const(31)), Expr::Const(7)),
            );
        });
    });
    (b.finish(), outer, inner)
}

#[test]
fn domore_plan_matches_sequential_on_cg_nest() {
    let (p, outer, inner) = cg_nest(24, 32);
    let plan = DomorePlan::build(&p, outer, inner).expect("CG nest is DOMORE-able");
    let mut reference = Memory::zeroed(&p);
    plan.execute_sequential(&mut reference);
    for workers in [1, 2, 4] {
        let mut mem = Memory::zeroed(&p);
        let report = plan.execute(&mut mem, workers).unwrap();
        assert_eq!(
            mem.snapshot(),
            reference.snapshot(),
            "{workers} workers diverged"
        );
        assert!(report.stats.tasks > 0);
        assert_eq!(report.stats.epochs, 24);
    }
}

#[test]
fn domore_plan_generates_sync_conditions_for_overlapping_rows() {
    let (p, outer, inner) = cg_nest(24, 32);
    let plan = DomorePlan::build(&p, outer, inner).unwrap();
    let mut mem = Memory::zeroed(&p);
    let report = plan.execute(&mut mem, 3).unwrap();
    // Rows overlap (stride 3, extent 5), so cross-invocation conflicts are
    // real and round-robin assignment must synchronize some of them.
    assert!(
        report.stats.sync_conditions > 0,
        "overlapping rows must produce synchronization conditions"
    );
}

#[test]
fn domore_plan_exposes_partition_and_slice() {
    let (p, outer, inner) = cg_nest(8, 16);
    let plan = DomorePlan::build(&p, outer, inner).unwrap();
    assert!(
        plan.slice().stmts.is_empty(),
        "C[j] addressing needs only j"
    );
    assert_eq!(plan.slice().targets.len(), 2, "load and store of C[j]");
    assert!(!plan.partition().worker.is_empty());
    assert!(!plan.partition().scheduler.is_empty());
}

/// The Fig. 4.1 pathology: the inner loop's index array is written by the
/// region itself, so `computeAddr` cannot run ahead and DOMORE must refuse.
#[test]
fn domore_plan_rejects_region_written_index_arrays() {
    let mut b = ProgramBuilder::new();
    let a = b.array("A", 16);
    let idx = b.array("idx", 16);
    let i = b.var("i");
    let j = b.var("j");
    let k = b.var("k");
    let mut inner = StmtId(0);
    let outer = b.for_loop(i, Expr::Const(0), Expr::Const(4), |b| {
        // The prologue reshuffles the index array the inner loop uses.
        b.store(idx, Expr::rem(Expr::Var(i), Expr::Const(16)), Expr::Var(i));
        inner = b.for_loop(j, Expr::Const(0), Expr::Const(16), |b| {
            b.load(k, idx, Expr::Var(j));
            b.store(a, Expr::Var(k), Expr::Var(j));
        });
    });
    let p = b.finish();
    let err = DomorePlan::build(&p, outer, inner).unwrap_err();
    assert!(
        matches!(
            err,
            TransformError::Slice(_)
                | TransformError::PrologueConflictsWithWorkers(_)
                | TransformError::InnerBodyOnScheduler(_)
        ),
        "got {err:?}"
    );
}

#[test]
fn domore_plan_rejects_non_loop_inputs() {
    let mut b = ProgramBuilder::new();
    let a = b.array("A", 4);
    let s = b.store(a, Expr::Const(0), Expr::Const(1));
    let i = b.var("i");
    let l = b.for_loop(i, Expr::Const(0), Expr::Const(2), |_| {});
    let p = b.finish();
    assert_eq!(
        DomorePlan::build(&p, s, l).unwrap_err(),
        TransformError::NotALoop(s)
    );
}

/// Builds the Fig. 1.3 / Fig. 4.2 two-loop region: L1 writes A from B,
/// L2 writes B from A, repeated `steps` times. Returns (program, outer).
fn two_loop_region(steps: usize, n: usize) -> (Program, StmtId) {
    let mut b = ProgramBuilder::new();
    let a = b.array("A", n + 1);
    let arr_b = b.array("B", n + 1);
    let t = b.var("t");
    let i = b.var("i");
    let j = b.var("j");
    let x = b.var("x");
    let y = b.var("y");
    let init = b.var("init");
    b.for_loop(init, Expr::Const(0), Expr::Const(n as i64 + 1), |b| {
        b.store(arr_b, Expr::Var(init), Expr::Var(init));
    });
    let outer = b.for_loop(t, Expr::Const(0), Expr::Const(steps as i64), |b| {
        // L1: A[i] = f(B[i], B[i+1])
        b.for_loop(i, Expr::Const(0), Expr::Const(n as i64), |b| {
            b.load(x, arr_b, Expr::Var(i));
            b.load(y, arr_b, Expr::add(Expr::Var(i), Expr::Const(1)));
            b.store(
                a,
                Expr::Var(i),
                Expr::add(
                    Expr::mul(Expr::Var(x), Expr::Const(3)),
                    Expr::mul(Expr::Var(y), Expr::Const(5)),
                ),
            );
        });
        // L2: B[j] = g(A[j-1], A[j])
        b.for_loop(j, Expr::Const(1), Expr::Const(n as i64 + 1), |b| {
            b.load(x, a, Expr::sub(Expr::Var(j), Expr::Const(1)));
            b.load(y, a, Expr::rem(Expr::Var(j), Expr::Const(n as i64)));
            b.store(
                arr_b,
                Expr::Var(j),
                Expr::add(Expr::Var(x), Expr::mul(Expr::Var(y), Expr::Const(7))),
            );
        });
    });
    (b.finish(), outer)
}

#[test]
fn speccross_plan_matches_sequential_on_two_loop_region() {
    let (p, outer) = two_loop_region(8, 24);
    let plan = SpecCrossPlan::build(&p, outer).expect("region is SPECCROSS-able");
    assert_eq!(plan.epoch_loops().len(), 2);

    let mut reference = Memory::zeroed(&p);
    plan.execute_sequential(&mut reference);

    // Profile on a fresh (training) memory, then execute gated.
    let mut training = Memory::zeroed(&p);
    let profile = plan.profile(&mut training, 4);
    assert!(profile.min_distance.is_some(), "the stencil must conflict");

    for workers in [1, 2, 3] {
        let mut mem = Memory::zeroed(&p);
        let report = plan
            .execute(
                &mut mem,
                SpecConfig::with_workers(workers).spec_distance(profile.min_distance),
            )
            .unwrap();
        assert_eq!(
            mem.snapshot(),
            reference.snapshot(),
            "{workers} workers diverged"
        );
        assert_eq!(
            report.stats.misspeculations, 0,
            "gated run never rolls back"
        );
        assert_eq!(report.stats.epochs, 16);
    }
}

#[test]
fn speccross_plan_recovers_from_injected_misspeculation() {
    let (p, outer) = two_loop_region(6, 16);
    let plan = SpecCrossPlan::build(&p, outer).unwrap();
    let mut reference = Memory::zeroed(&p);
    plan.execute_sequential(&mut reference);

    let mut training = Memory::zeroed(&p);
    let d = plan.profile(&mut training, 4).min_distance;

    let mut mem = Memory::zeroed(&p);
    let report = plan
        .execute(
            &mut mem,
            SpecConfig::with_workers(2)
                .spec_distance(d)
                .inject_conflict_at_epoch(Some(5)),
        )
        .unwrap();
    assert_eq!(report.stats.misspeculations, 1);
    assert_eq!(mem.snapshot(), reference.snapshot());
}

#[test]
fn speccross_plan_rejects_dependent_inner_loops() {
    // Inner loop with a genuine cross-iteration dependence (prefix sum).
    let mut b = ProgramBuilder::new();
    let a = b.array("A", 8);
    let t = b.var("t");
    let i = b.var("i");
    let x = b.var("x");
    let y = b.var("y");
    let outer = b.for_loop(t, Expr::Const(0), Expr::Const(3), |b| {
        b.for_loop(i, Expr::Const(1), Expr::Const(8), |b| {
            b.load(x, a, Expr::sub(Expr::Var(i), Expr::Const(1)));
            b.load(y, a, Expr::Var(i));
            b.store(a, Expr::Var(i), Expr::add(Expr::Var(x), Expr::Var(y)));
        });
    });
    let p = b.finish();
    assert!(matches!(
        SpecCrossPlan::build(&p, outer).unwrap_err(),
        TransformError::InnerNotParallelizable(_)
    ));
}

#[test]
fn speccross_plan_rejects_impure_region_code() {
    let mut b = ProgramBuilder::new();
    let a = b.array("A", 8);
    let t = b.var("t");
    let i = b.var("i");
    let outer = b.for_loop(t, Expr::Const(0), Expr::Const(3), |b| {
        // A store between the parallel loops cannot be privatized.
        b.store(a, Expr::Const(0), Expr::Var(t));
        b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.call("work", vec![Expr::Var(i)], CallEffect::default());
        });
    });
    let p = b.finish();
    assert!(matches!(
        SpecCrossPlan::build(&p, outer).unwrap_err(),
        TransformError::RegionPrologueNotPure(_)
    ));
}

#[test]
fn speccross_plan_rejects_empty_regions() {
    let mut b = ProgramBuilder::new();
    let t = b.var("t");
    let x = b.var("x");
    let outer = b.for_loop(t, Expr::Const(0), Expr::Const(3), |b| {
        b.assign(x, Expr::Var(t));
    });
    let p = b.finish();
    assert_eq!(
        SpecCrossPlan::build(&p, outer).unwrap_err(),
        TransformError::EmptyRegion
    );
}

#[test]
fn speccross_plan_handles_scalar_prologues_between_loops() {
    // Scalar assignments feeding the second loop's bound.
    let mut b = ProgramBuilder::new();
    let a = b.array("A", 16);
    let t = b.var("t");
    let i = b.var("i");
    let bound = b.var("bound");
    let x = b.var("x");
    let outer = b.for_loop(t, Expr::Const(0), Expr::Const(4), |b| {
        b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(x, a, Expr::Var(i));
            b.store(a, Expr::Var(i), Expr::add(Expr::Var(x), Expr::Const(1)));
        });
        b.assign(
            bound,
            Expr::add(Expr::rem(Expr::Var(t), Expr::Const(8)), Expr::Const(8)),
        );
        b.for_loop(i, Expr::Const(8), Expr::Var(bound), |b| {
            b.store(a, Expr::Var(i), Expr::Var(t));
        });
    });
    let p = b.finish();
    let plan = SpecCrossPlan::build(&p, outer).unwrap();
    let mut reference = Memory::zeroed(&p);
    plan.execute_sequential(&mut reference);
    let mut mem = Memory::zeroed(&p);
    plan.execute(&mut mem, SpecConfig::with_workers(2)).unwrap();
    assert_eq!(mem.snapshot(), reference.snapshot());
}
