//! Integration tests for the structured execution-trace layer: the JSONL
//! schema round-trips, injected faults surface in the trace at their
//! planned coordinates, and the threaded engine and the simulator emit the
//! *same* schema — a trace from either side feeds the same `TraceReport`
//! reconstruction (misspeculation ledger, per-thread barrier-wait
//! breakdown). See `docs/OBSERVABILITY.md`.

use std::collections::{BTreeMap, BTreeSet};

use crossinvoc_bench::json::{self, Json};
use crossinvoc_runtime::critpath::what_if;
use crossinvoc_runtime::fault::{FaultKind, FaultPlan};
use crossinvoc_runtime::trace::{Event, Trace, TraceReport, TraceSink, WakeEdge};
use crossinvoc_runtime::{RangeSignature, SharedSlice, ThreadId};
use crossinvoc_sim::prelude::*;
use crossinvoc_speccross::prelude::*;
use crossinvoc_speccross::SpecCrossEngine;
use crossinvoc_workloads::{registry, Scale};

/// Task `t` of every epoch increments cell `t`: same-epoch tasks are
/// disjoint and cross-epoch revisits are ordered by the engine, so a clean
/// run never misspeculates — any conflict below is injected.
struct IncGrid {
    data: SharedSlice<u64>,
    epochs: usize,
}

impl IncGrid {
    fn new(n: usize, epochs: usize) -> Self {
        Self {
            data: SharedSlice::from_vec(vec![0; n]),
            epochs,
        }
    }
}

impl SpecWorkload for IncGrid {
    type State = Vec<u64>;

    fn num_epochs(&self) -> usize {
        self.epochs
    }
    fn num_tasks(&self, _epoch: usize) -> usize {
        self.data.len()
    }
    fn execute_task(
        &self,
        _epoch: usize,
        task: usize,
        _tid: ThreadId,
        rec: &mut dyn AccessRecorder,
    ) {
        rec.write(task);
        // SAFETY: same-epoch tasks write disjoint cells; the same cell is
        // revisited only across epochs, which the engine orders.
        unsafe { self.data.update(task, |v| *v += 1) };
    }
    fn snapshot(&self) -> Self::State {
        (0..self.data.len())
            .map(|i| unsafe { self.data.read(i) })
            .collect()
    }
    fn restore(&self, state: &Self::State) {
        for (i, v) in state.iter().enumerate() {
            unsafe { self.data.write(i, *v) };
        }
    }
}

fn traced_engine(plan: FaultPlan) -> SpecCrossEngine {
    SpecCrossEngine::<RangeSignature>::new(
        SpecConfig::with_workers(2)
            .checkpoint_every(2)
            .fault_plan(plan)
            .trace(1 << 14),
    )
}

/// An engine trace serializes to JSONL and parses back to an equal trace —
/// the schema is lossless over the wire.
#[test]
fn engine_trace_round_trips_through_jsonl() {
    let w = IncGrid::new(8, 6);
    let report = traced_engine(FaultPlan::default()).execute(&w).unwrap();
    let trace = report.trace.expect("tracing was configured");
    assert!(!trace.records().is_empty());
    let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("engine JSONL must parse");
    assert_eq!(parsed, trace);
}

/// A seeded `FaultPlan` leaves its firings in the trace at the planned
/// (epoch, task, thread) coordinates: tasks are assigned round-robin, so
/// task 3 on 2 workers runs — and fires — on thread `3 % 2`.
#[test]
fn injected_faults_appear_at_planned_coordinates() {
    let w = IncGrid::new(8, 6);
    let report = traced_engine(FaultPlan::default().delay_at(2, 3, 50))
        .execute(&w)
        .unwrap();
    let trace = report.trace.expect("tracing was configured");
    let firing = trace
        .records()
        .iter()
        .find(|r| matches!(r.event, Event::FaultInjected { .. }))
        .expect("the planned delay must be recorded");
    assert_eq!(
        firing.event,
        Event::FaultInjected {
            kind: FaultKind::Delay(50),
            epoch: 2,
            task: 3,
        }
    );
    assert_eq!(firing.tid, 3 % 2, "round-robin assignment places task 3");
}

/// The acceptance scenario: one injected misspeculation, traced through
/// the real engine *and* the simulator. Both traces parse under the same
/// closed schema, and the same `TraceReport` reconstruction yields a
/// one-entry misspeculation ledger and a per-thread barrier-wait breakdown
/// from each.
#[test]
fn engine_and_sim_traces_share_schema_and_reconstruct_the_ledger() {
    // Real engine: force one false-positive conflict at epoch 3.
    let w = IncGrid::new(8, 6);
    let report = traced_engine(FaultPlan::default().false_positive_at(3))
        .execute(&w)
        .unwrap();
    assert_eq!(report.stats.misspeculations, 1);
    let engine_trace = report.trace.expect("tracing was configured");

    // Simulator: inject one misspeculation into an equivalent clean model.
    let model = UniformWorkload::independent(100, 16, 1_000);
    let params = SpecSimParams::with_threads(2)
        .checkpoint_every(2)
        .inject_misspec_at_task(Some(800))
        .trace(1 << 14);
    let sim = speccross(&model, &params, &CostModel::default());
    assert_eq!(sim.stats.misspeculations, 1);
    let sim_trace = sim.trace.expect("tracing was requested");

    for (label, trace) in [("engine", &engine_trace), ("sim", &sim_trace)] {
        // Same wire schema: one parser accepts both byte streams.
        let parsed = Trace::from_jsonl(&trace.to_jsonl())
            .unwrap_or_else(|e| panic!("{label} trace must parse: {e}"));
        assert_eq!(&parsed, trace, "{label}");
        // Same reconstruction: one misspeculation in the ledger, and a
        // breakdown row with barrier waits for every worker.
        let report = TraceReport::from_trace(trace);
        assert_eq!(report.misspeculations.len(), 1, "{label}");
        let workers: Vec<_> = report.threads.iter().filter(|t| t.tid < 2).collect();
        assert_eq!(workers.len(), 2, "{label}");
        assert!(
            workers.iter().any(|t| t.barrier_waits > 0),
            "{label}: checkpoint rendezvous must show up as barrier waits"
        );
        assert!(workers.iter().all(|t| t.tasks > 0), "{label}");
    }
}

/// The what-if estimator's acceptance bound: replaying a traced barrier
/// run of a Table 5.1 kernel with its barrier edges zeroed predicts the
/// *measured* barrier-vs-SPECCROSS simulator ratio within 10% on at least
/// one kernel. Free synchronization costs isolate exactly the waits the
/// estimator models, an over-long checkpoint interval keeps rendezvous
/// stalls out of the SPECCROSS run, and kernels whose speculative run
/// stalls or misspeculates are skipped — those measure more than barrier
/// removal.
#[test]
fn what_if_barrier_removal_predicts_sim_ratio_within_ten_percent() {
    let cost = CostModel::free();
    let threads = 4;
    let mut checked: Vec<(&str, f64, f64, f64)> = Vec::new();
    for info in registry().into_iter().filter(|b| b.speccross) {
        let model = info.model(Scale::Test);
        let epochs = model.num_invocations();
        let params = SpecSimParams::with_threads(threads).checkpoint_every(epochs.max(1) * 2);
        let spec = speccross(model.as_ref(), &params, &cost);
        if spec.stats.misspeculations != 0 || spec.stats.stalls != 0 {
            continue;
        }
        let bar = barrier_traced(model.as_ref(), threads, &cost, Some(1 << 16));
        let trace = bar.trace.expect("tracing was requested");
        if trace.dropped() > 0 {
            continue; // a truncated DAG would bias the replay
        }
        let measured = bar.total_ns as f64 / spec.total_ns.max(1) as f64;
        let predicted = what_if(&trace, &[WakeEdge::Barrier]).predicted_speedup();
        let rel = (measured - predicted).abs() / measured;
        checked.push((info.name, measured, predicted, rel));
    }
    assert!(
        !checked.is_empty(),
        "at least one clean SPECCROSS kernel must be measurable at test scale"
    );
    let best = checked
        .iter()
        .cloned()
        .min_by(|a, b| a.3.total_cmp(&b.3))
        .unwrap();
    assert!(
        best.3 < 0.10,
        "no kernel within 10%: best was {} (measured {:.3}, predicted {:.3}, rel err {:.3}); all: {checked:?}",
        best.0,
        best.1,
        best.2,
        best.3
    );
}

/// Engine- and sim-emitted traces of the same plan both export to valid
/// Chrome `trace_event` JSON — parsed with a real JSON parser, every event
/// carries the required fields, and the flow (`s`/`f`) pairs cover all
/// four causality-edge classes with matching ids.
#[test]
fn chrome_export_is_schema_valid_with_flows_for_all_edge_classes() {
    // Engine: a forced false positive at epoch 3 exercises every edge —
    // check-request pickups (queue), the verdict-driven rollback (checker),
    // the recovery barriers (barrier), and the rendezvous (checkpoint).
    let w = IncGrid::new(8, 6);
    let report = traced_engine(FaultPlan::default().false_positive_at(3))
        .execute(&w)
        .unwrap();
    let engine_trace = report.trace.expect("tracing was configured");

    // Simulator: 17 tasks over 2 threads keep every epoch imbalanced, so
    // barrier and rendezvous waits are nonzero and emit wakes; the injected
    // misspeculation supplies the queue pickup and the checker verdict.
    let model = UniformWorkload::independent(100, 17, 1_000);
    let params = SpecSimParams::with_threads(2)
        .checkpoint_every(2)
        .inject_misspec_at_task(Some(800))
        .trace(1 << 14);
    let sim = speccross(&model, &params, &CostModel::default());
    let sim_trace = sim.trace.expect("tracing was requested");

    for (label, trace) in [("engine", &engine_trace), ("sim", &sim_trace)] {
        let text = trace.to_chrome_json(None);
        let root = json::parse(&text)
            .unwrap_or_else(|e| panic!("{label}: chrome export must be valid JSON: {e}"));
        assert_eq!(
            root.get("displayTimeUnit").and_then(Json::as_str),
            Some("ns"),
            "{label}"
        );
        let events = root
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{label}: traceEvents must be an array"));
        assert!(!events.is_empty(), "{label}");

        let mut starts: BTreeMap<u64, String> = BTreeMap::new();
        let mut finishes: BTreeMap<u64, String> = BTreeMap::new();
        for ev in events {
            for key in ["name", "ph", "pid", "tid", "ts"] {
                assert!(
                    ev.get(key).is_some(),
                    "{label}: every event carries \"{key}\""
                );
            }
            let ph = ev
                .get("ph")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{label}: ph must be a string"));
            if ev.get("cat").and_then(Json::as_str) == Some("wake") {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("{label}: flow events carry an edge name"))
                    .to_string();
                let id = ev
                    .get("id")
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("{label}: flow events carry a numeric id"))
                    as u64;
                match ph {
                    "s" => assert!(starts.insert(id, name).is_none(), "{label}: dup flow id"),
                    "f" => assert!(finishes.insert(id, name).is_none(), "{label}: dup flow id"),
                    other => panic!("{label}: wake events must be flow s/f, got {other}"),
                }
            }
        }
        assert_eq!(
            starts, finishes,
            "{label}: every flow start has a matching finish"
        );
        let flow_names: BTreeSet<&str> = starts.values().map(String::as_str).collect();
        for edge in ["barrier", "queue", "checkpoint", "checker"] {
            assert!(
                flow_names.contains(edge),
                "{label}: missing {edge} flows; present: {flow_names:?}"
            );
        }
    }
}

/// Region attribution: a nonzero `region_id` stamps every JSONL line from
/// both the threaded engine and the simulator, the stamped stream
/// round-trips, and region 0 stays wire-invisible — a solo trace is
/// byte-identical to the pre-region schema.
#[test]
fn region_id_stamps_every_line_and_zero_is_wire_invisible() {
    // Threaded engine, region 7.
    let w = IncGrid::new(8, 6);
    let report = SpecCrossEngine::<RangeSignature>::new(
        SpecConfig::with_workers(2)
            .checkpoint_every(2)
            .trace(1 << 14)
            .region(7),
    )
    .execute(&w)
    .unwrap();
    let engine_trace = report.trace.expect("tracing was configured");

    // Simulator, same region id.
    let model = UniformWorkload::independent(20, 16, 1_000);
    let params = SpecSimParams::with_threads(2)
        .checkpoint_every(2)
        .trace(1 << 14)
        .region(7);
    let sim = speccross(&model, &params, &CostModel::default());
    let sim_trace = sim.trace.expect("tracing was requested");

    for (label, trace) in [("engine", &engine_trace), ("sim", &sim_trace)] {
        assert_eq!(trace.region(), 7, "{label}");
        let jsonl = trace.to_jsonl();
        assert!(
            jsonl.lines().all(|l| l.contains("\"region_id\":7")),
            "{label}: every line carries the region id"
        );
        let parsed = Trace::from_jsonl(&jsonl).expect("stamped stream parses");
        assert_eq!(&parsed, trace, "{label}: stamped stream round-trips");
    }

    // Region 0 (the default) never appears on the wire.
    let w0 = IncGrid::new(8, 6);
    let report0 = traced_engine(FaultPlan::default()).execute(&w0).unwrap();
    let jsonl0 = report0.trace.expect("tracing was configured").to_jsonl();
    assert!(
        !jsonl0.contains("region_id"),
        "solo traces keep the pre-region schema"
    );
}

/// Overhead smoke: with tracing off the engine reports no trace, and a
/// disabled sink costs one branch — no ring allocation, no atomics (the
/// sink is a plain-field struct; see the ordering notes in
/// `crossinvoc_runtime::trace`).
#[test]
fn tracing_off_allocates_nothing_and_reports_no_trace() {
    let w = IncGrid::new(8, 4);
    let report = SpecCrossEngine::<RangeSignature>::new(SpecConfig::with_workers(2))
        .execute(&w)
        .unwrap();
    assert!(
        report.trace.is_none(),
        "untraced runs must not carry a trace"
    );

    let mut sink = TraceSink::disabled();
    for i in 0..10_000 {
        sink.emit_at(i, Event::Checkpoint { epoch: 0 });
    }
    assert_eq!(sink.ring_capacity(), 0, "disabled sinks never allocate");
    assert_eq!(sink.len(), 0);
}
