//! Cross-crate integration tests: benchmark models through the real
//! threaded runtimes, the automatic driver over PIR programs, and the
//! sim/runtime consistency guarantee (both consume the same decision
//! logic, so their synchronization decisions must agree).

use crossinvoc_domore::prelude::*;
use crossinvoc_runtime::RangeSignature;
use crossinvoc_sim::prelude::*;
use crossinvoc_speccross::prelude::*;
use crossinvoc_speccross::SpecCrossEngine;
use crossinvoc_workloads::kernel::{profile_distance, AccessKernel};
use crossinvoc_workloads::{registry, Scale};

/// Every DOMORE benchmark of Table 5.1 executes on the real threaded
/// DOMORE runtime and reproduces the sequential checksum.
#[test]
fn all_domore_benchmarks_run_correctly_on_real_threads() {
    for info in registry().into_iter().filter(|b| b.domore) {
        let kernel = AccessKernel::from_model(info.model(Scale::Test));
        let expected = kernel.sequential_checksum();
        let report = DomoreRuntime::new(DomoreConfig::with_workers(3))
            .execute(&kernel)
            .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        assert_eq!(kernel.checksum(), expected, "{} diverged", info.name);
        assert!(report.stats.tasks > 0, "{}", info.name);
    }
}

/// Every SPECCROSS benchmark executes on the real speculative engine,
/// gated by its own profile, and reproduces the sequential checksum
/// without misspeculation.
#[test]
fn all_speccross_benchmarks_run_correctly_on_real_threads() {
    for info in registry().into_iter().filter(|b| b.speccross) {
        let model = info.model(Scale::Test);
        let distance = profile_distance(model.as_ref(), 6).min_distance;
        let kernel = AccessKernel::from_model(info.model(Scale::Test));
        let expected = kernel.sequential_checksum();
        let report = SpecCrossEngine::<RangeSignature>::new(
            SpecConfig::with_workers(2).spec_distance(distance),
        )
        .execute(&kernel)
        .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        assert_eq!(kernel.checksum(), expected, "{} diverged", info.name);
        assert_eq!(
            report.stats.misspeculations, 0,
            "{} misspeculated despite profiling",
            info.name
        );
    }
}

/// The simulator and the threaded runtime share the scheduling logic, so
/// for a given model and worker count they must produce the *same*
/// synchronization conditions.
#[test]
fn simulated_and_real_domore_agree_on_synchronization_conditions() {
    for info in registry().into_iter().filter(|b| b.domore) {
        let model = info.model(Scale::Test);
        let workers = 3;
        let simulated = domore(
            model.as_ref(),
            workers,
            &mut crossinvoc_domore::policy::RoundRobin,
            &CostModel::default(),
        );
        let kernel = AccessKernel::from_model(info.model(Scale::Test));
        let real = DomoreRuntime::new(DomoreConfig::with_workers(workers))
            .execute(&kernel)
            .unwrap();
        assert_eq!(
            simulated.stats.sync_conditions, real.stats.sync_conditions,
            "{}: simulated and real scheduling disagree",
            info.name
        );
        assert_eq!(simulated.stats.tasks, real.stats.tasks, "{}", info.name);
    }
}

/// Misspeculation recovery end-to-end on a real benchmark kernel: inject a
/// conflict, verify rollback re-produces the sequential result.
#[test]
fn injected_misspeculation_recovers_on_benchmark_kernels() {
    let info = crossinvoc_workloads::registry::by_name("JACOBI");
    let model = info.model(Scale::Test);
    let distance = profile_distance(model.as_ref(), 6).min_distance;
    let kernel = AccessKernel::from_model(info.model(Scale::Test));
    let expected = kernel.sequential_checksum();
    let report = SpecCrossEngine::<RangeSignature>::new(
        SpecConfig::with_workers(2)
            .spec_distance(distance)
            .checkpoint_every(4)
            .inject_conflict_at_epoch(Some(7)),
    )
    .execute(&kernel)
    .unwrap();
    assert_eq!(report.stats.misspeculations, 1);
    assert_eq!(kernel.checksum(), expected);
}

/// The duplicated-scheduler variant matches the separate-scheduler result
/// on a benchmark kernel (§3.4's transformation is semantics-preserving).
#[test]
fn duplicated_scheduler_matches_separate_scheduler_on_benchmarks() {
    let info = crossinvoc_workloads::registry::by_name("CG");
    let a = AccessKernel::from_model(info.model(Scale::Test));
    let b = AccessKernel::from_model(info.model(Scale::Test));
    DomoreRuntime::new(DomoreConfig::with_workers(3))
        .execute(&a)
        .unwrap();
    DuplicatedScheduler::new(3).execute(&b).unwrap();
    assert_eq!(a.checksum(), b.checksum());
}

/// The full automatic pipeline (profile → plan → threaded execution →
/// verification) on the two flagship nest shapes.
#[test]
fn automatic_driver_parallelizes_both_nest_families() {
    use crossinvoc::driver::{AutoParallelizer, Strategy};
    use crossinvoc::pir::interp::Memory;
    use crossinvoc::pir::ir::{Expr, ProgramBuilder};

    // Stencil: far dependences → SPECCROSS.
    let mut b = ProgramBuilder::new();
    let a = b.array("A", 48);
    let t = b.var("t");
    let i = b.var("i");
    let x = b.var("x");
    let outer = b.for_loop(t, Expr::Const(0), Expr::Const(12), |b| {
        b.for_loop(i, Expr::Const(0), Expr::Const(48), |b| {
            b.load(x, a, Expr::Var(i));
            b.store(a, Expr::Var(i), Expr::add(Expr::Var(x), Expr::Var(t)));
        });
    });
    let p = b.finish();
    let decision = AutoParallelizer::new(3).plan(&p, outer).unwrap();
    assert_eq!(decision.strategy(), Strategy::SpecCross);
    let mut mem = Memory::zeroed(&p);
    decision.execute(&mut mem).unwrap();
    let mut expected = Memory::zeroed(&p);
    decision.execute_sequential(&mut expected);
    assert_eq!(mem.snapshot(), expected.snapshot());
}

/// SPECCROSS beats the barrier plan on a barrier-bound workload in the
/// simulator — the thesis' core performance claim, checked as an invariant
/// rather than a number.
#[test]
fn speccross_beats_barriers_on_barrier_bound_workloads() {
    for name in ["JACOBI", "LLUBENCH", "LOOPDEP"] {
        let info = crossinvoc_workloads::registry::by_name(name);
        let model = info.model(Scale::Figure);
        let cost = CostModel::default();
        let seq = sequential(model.as_ref(), &cost).total_ns;
        let bar = barrier(model.as_ref(), 16, &cost).speedup_over(seq);
        let distance = profile_distance(model.as_ref(), 6).min_distance;
        let params = SpecSimParams::with_threads(15).spec_distance(distance);
        let spec = speccross(model.as_ref(), &params, &cost).speedup_over(seq);
        assert!(
            spec > bar,
            "{name}: SPECCROSS {spec:.2}x must beat barriers {bar:.2}x"
        );
    }
}
