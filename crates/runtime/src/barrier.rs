//! Non-speculative barrier synchronization.
//!
//! This is the baseline the thesis measures all cross-invocation techniques
//! against: a global barrier placed after every parallel loop invocation
//! (`pthread_barrier_wait` in Fig. 1.3(b)). The implementation is a classic
//! sense-reversing centralized barrier that waits adaptively — a bounded
//! spin, then timed parks (see [`crate::wait`]) — plus
//! per-thread idle-time accounting used by the barrier-overhead experiment
//! (Fig. 4.3): the time between a thread's arrival and the barrier's release
//! is pure synchronization loss.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::utils::CachePadded;

use crate::wait::{AdaptiveSpin, Parker, PARK_SLICE};

/// Outcome of [`SpinBarrier::wait_abortable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierWait {
    /// The barrier released normally; `true` on the serial (last-arriving)
    /// thread, as with [`SpinBarrier::wait`].
    Released(bool),
    /// The abort flag was observed while spinning.
    Aborted,
    /// The deadline elapsed while spinning (a liveness failure elsewhere —
    /// the caller should abort the pass rather than spin forever).
    TimedOut,
}

/// A reusable sense-reversing spinning barrier for a fixed set of threads.
///
/// Unlike `std::sync::Barrier`, arrival order and waiting cost are observable
/// through [`SpinBarrier::idle_nanos`], which sums, over all waits, the time
/// each thread spent stalled at the barrier. The paper's Fig. 4.3 reports this
/// quantity as a percentage of total parallel runtime.
///
/// # Example
///
/// ```
/// use crossinvoc_runtime::SpinBarrier;
/// use std::sync::Arc;
///
/// let barrier = Arc::new(SpinBarrier::new(2));
/// let b = Arc::clone(&barrier);
/// let t = std::thread::spawn(move || {
///     b.wait(1);
/// });
/// barrier.wait(0);
/// t.join().unwrap();
/// assert_eq!(barrier.generations(), 1);
/// ```
#[derive(Debug)]
pub struct SpinBarrier {
    num_threads: usize,
    arrived: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
    generations: AtomicU64,
    /// Thread id of the last arrival of the most recent release — the
    /// source of the barrier-release causality edge. Written before the
    /// sense flip, so a released waiter always reads its own generation's
    /// releaser.
    releaser: CachePadded<AtomicUsize>,
    idle_nanos: Box<[CachePadded<AtomicU64>]>,
    /// Per-thread parking spots for waits that outlive the spin budget.
    parkers: Box<[Parker]>,
    /// How many threads are registered as (about to be) parked; the
    /// releasing thread only walks `parkers` when this is nonzero, keeping
    /// the all-spinning fast path free of parking traffic.
    parked: CachePadded<AtomicUsize>,
}

impl SpinBarrier {
    /// Creates a barrier for `num_threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "barrier needs at least one thread");
        let idle = (0..num_threads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            num_threads,
            arrived: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicBool::new(false)),
            generations: AtomicU64::new(0),
            releaser: CachePadded::new(AtomicUsize::new(0)),
            idle_nanos: idle,
            parkers: (0..num_threads).map(|_| Parker::new()).collect(),
            parked: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Number of participating threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Releases every thread that fell back from spinning to parking.
    /// Called after the sense flip (and by abort-raising peers); a racing
    /// park that misses the wakeup self-wakes after one timed slice.
    fn wake_parked(&self) {
        if self.parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        for p in self.parkers.iter() {
            p.unpark();
        }
    }

    /// One failed-predicate step of a spin-then-park wait: burns spin
    /// budget, then registers in `parked` and parks for one timed slice.
    fn spin_or_park(&self, tid: usize, spin: &mut AdaptiveSpin, local_sense: bool) {
        if !spin.should_park() {
            return;
        }
        self.parked.fetch_add(1, Ordering::SeqCst);
        // Re-check after registering: a release that happened in between
        // has already walked (or will walk) the parkers, and the timed
        // slice bounds the remaining race window.
        if self.sense.load(Ordering::Acquire) != local_sense {
            self.parkers[tid].park_timeout(PARK_SLICE);
        }
        self.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Blocks until all `num_threads` participants have called `wait`.
    ///
    /// `tid` is the caller's dense thread id, used only for idle accounting.
    /// Returns `true` on the *last* thread to arrive (the one that released
    /// the barrier), mirroring `pthread`'s serial-thread return value.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= num_threads`.
    pub fn wait(&self, tid: usize) -> bool {
        assert!(tid < self.num_threads, "thread id out of range");
        let local_sense = !self.sense.load(Ordering::Relaxed);
        let arrival = Instant::now();
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.num_threads {
            // Last arrival: reset the counter and flip the sense to release
            // every spinning thread.
            self.arrived.store(0, Ordering::Relaxed);
            self.generations.fetch_add(1, Ordering::Relaxed);
            self.releaser.store(tid, Ordering::Relaxed);
            self.sense.store(local_sense, Ordering::Release);
            self.wake_parked();
            true
        } else {
            let mut spin = AdaptiveSpin::new();
            while self.sense.load(Ordering::Acquire) != local_sense {
                self.spin_or_park(tid, &mut spin, local_sense);
            }
            self.idle_nanos[tid].fetch_add(arrival.elapsed().as_nanos() as u64, Ordering::Relaxed);
            false
        }
    }

    /// Like [`SpinBarrier::wait`], but gives up when `abort` becomes `true`
    /// or `deadline` passes while spinning.
    ///
    /// An aborted or timed-out wait leaves the barrier's arrival count
    /// permanently short for the current generation — peers still spinning on
    /// it must be released by the same abort flag, and the barrier must not
    /// be reused afterwards. The engines here create a fresh barrier per
    /// pass, so a poisoned generation dies with its pass.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= num_threads`.
    pub fn wait_abortable(
        &self,
        tid: usize,
        abort: &AtomicBool,
        deadline: Option<Instant>,
    ) -> BarrierWait {
        assert!(tid < self.num_threads, "thread id out of range");
        if abort.load(Ordering::Acquire) {
            return BarrierWait::Aborted;
        }
        let local_sense = !self.sense.load(Ordering::Relaxed);
        let arrival = Instant::now();
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.num_threads {
            self.arrived.store(0, Ordering::Relaxed);
            self.generations.fetch_add(1, Ordering::Relaxed);
            self.releaser.store(tid, Ordering::Relaxed);
            self.sense.store(local_sense, Ordering::Release);
            self.wake_parked();
            BarrierWait::Released(true)
        } else {
            let mut spin = AdaptiveSpin::new();
            while self.sense.load(Ordering::Acquire) != local_sense {
                if abort.load(Ordering::Acquire) {
                    return BarrierWait::Aborted;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return BarrierWait::TimedOut;
                }
                // Timed parks re-check the abort flag and deadline at least
                // once per PARK_SLICE, preserving the pre-park semantics.
                self.spin_or_park(tid, &mut spin, local_sense);
            }
            self.idle_nanos[tid].fetch_add(arrival.elapsed().as_nanos() as u64, Ordering::Relaxed);
            BarrierWait::Released(false)
        }
    }

    /// Total nanoseconds thread `tid` has spent stalled at this barrier.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= num_threads`.
    pub fn idle_nanos(&self, tid: usize) -> u64 {
        self.idle_nanos[tid].load(Ordering::Relaxed)
    }

    /// Sum of [`SpinBarrier::idle_nanos`] over all threads.
    pub fn total_idle_nanos(&self) -> u64 {
        self.idle_nanos
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of times the barrier has been released (loop invocations
    /// completed, in the paper's usage).
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// Thread id of the last arrival that performed the most recent
    /// release — the `src_tid` of the barrier-release causality edge a
    /// freshly released waiter records. The write happens before the sense
    /// flip that releases the waiter, so reading it right after a released
    /// wait is race-free for that generation.
    pub fn last_releaser(&self) -> usize {
        self.releaser.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_thread_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait(0));
        }
        assert_eq!(b.generations(), 10);
        assert_eq!(b.idle_nanos(0), 0);
    }

    #[test]
    fn all_threads_reach_each_phase_before_any_proceeds() {
        const THREADS: usize = 4;
        const PHASES: usize = 50;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let phase_counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&phase_counter);
            handles.push(thread::spawn(move || {
                for phase in 0..PHASES {
                    counter.fetch_add(1, Ordering::SeqCst);
                    barrier.wait(tid);
                    // After the barrier every thread must observe all
                    // THREADS increments of this phase.
                    let seen = counter.load(Ordering::SeqCst);
                    assert!(seen >= ((phase + 1) * THREADS) as u64);
                    barrier.wait(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(barrier.generations(), (PHASES * 2) as u64);
    }

    #[test]
    fn exactly_one_serial_thread_per_generation() {
        const THREADS: usize = 3;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let serial = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            let serial = Arc::clone(&serial);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    if barrier.wait(tid) {
                        serial.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(serial.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn idle_time_accumulates_for_early_arrivals() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let b = Arc::clone(&barrier);
        let t = thread::spawn(move || {
            b.wait(1); // arrives first, waits for main
        });
        thread::sleep(std::time::Duration::from_millis(20));
        barrier.wait(0);
        t.join().unwrap();
        assert!(barrier.idle_nanos(1) >= 10_000_000, "early arrival idled");
        assert!(barrier.total_idle_nanos() >= barrier.idle_nanos(1));
        assert_eq!(barrier.last_releaser(), 0, "main thread arrived last");
    }

    #[test]
    fn abortable_wait_releases_normally_when_all_arrive() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let abort = Arc::new(AtomicBool::new(false));
        let (b, a) = (Arc::clone(&barrier), Arc::clone(&abort));
        let t = thread::spawn(move || b.wait_abortable(1, &a, None));
        let mine = barrier.wait_abortable(0, &abort, None);
        let theirs = t.join().unwrap();
        let serials = [mine, theirs]
            .iter()
            .filter(|o| matches!(o, BarrierWait::Released(true)))
            .count();
        assert_eq!(serials, 1);
        assert!([mine, theirs].contains(&BarrierWait::Released(false)));
    }

    #[test]
    fn abortable_wait_observes_abort_flag() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let abort = Arc::new(AtomicBool::new(false));
        let (b, a) = (Arc::clone(&barrier), Arc::clone(&abort));
        let t = thread::spawn(move || b.wait_abortable(1, &a, None));
        thread::sleep(std::time::Duration::from_millis(10));
        abort.store(true, Ordering::Release);
        assert_eq!(t.join().unwrap(), BarrierWait::Aborted);
        // A pre-set flag short-circuits without touching arrival counts.
        assert_eq!(
            barrier.wait_abortable(0, &abort, None),
            BarrierWait::Aborted
        );
    }

    #[test]
    fn abortable_wait_times_out_when_peer_never_arrives() {
        let barrier = SpinBarrier::new(2);
        let abort = AtomicBool::new(false);
        let deadline = Some(Instant::now() + std::time::Duration::from_millis(20));
        assert_eq!(
            barrier.wait_abortable(0, &abort, deadline),
            BarrierWait::TimedOut
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = SpinBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn out_of_range_tid_panics() {
        SpinBarrier::new(1).wait(1);
    }
}
