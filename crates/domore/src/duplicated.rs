//! The duplicated-scheduler DOMORE variant (§3.4, Figs. 3.8–3.9).
//!
//! To compose DOMORE-parallelized loops with SPECCROSS's speculative
//! barriers, the thesis trades the dedicated scheduler thread for
//! *replication*: every worker runs the complete scheduling loop — prologue,
//! `computeAddr`, shadow-memory update, assignment — on private state, but
//! executes only the iterations assigned to itself. Because the scheduling
//! logic and policy are deterministic, all replicas compute identical
//! schedules and identical synchronization conditions; the shared
//! `latestFinished` board is the only cross-thread state.
//!
//! Replication is sound only when the prologue may be re-executed by every
//! worker (no side effects beyond its own locals); workloads declare this via
//! [`DomoreWorkload::prologue_is_replicable`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crossinvoc_runtime::metrics::Metrics;
use parking_lot::Mutex;

use crate::logic::SchedulerLogic;
use crate::policy::{Policy, RoundRobin};
use crate::runtime::{DomoreError, ExecutionReport, ProgressBoard};
use crate::workload::DomoreWorkload;

/// DOMORE execution without a dedicated scheduler thread.
///
/// All `num_workers` threads are workers; each replays the scheduling loop.
///
/// # Example
///
/// ```
/// use crossinvoc_domore::prelude::*;
/// use crossinvoc_runtime::SharedSlice;
///
/// struct Nest { data: SharedSlice<u64> }
/// impl DomoreWorkload for Nest {
///     fn num_invocations(&self) -> usize { 3 }
///     fn num_iterations(&self, _inv: usize) -> usize { 6 }
///     fn touched_addrs(&self, _inv: usize, iter: usize, out: &mut Vec<usize>) {
///         out.push(iter % 3);
///     }
///     fn execute_iteration(&self, _inv: usize, iter: usize, _tid: usize) {
///         unsafe { self.data.update(iter % 3, |v| *v += 1) };
///     }
///     fn address_space(&self) -> Option<usize> { Some(3) }
/// }
///
/// let mut nest = Nest { data: SharedSlice::from_vec(vec![0; 3]) };
/// DuplicatedScheduler::new(2).execute(&nest).unwrap();
/// assert_eq!(nest.data.snapshot(), vec![6, 6, 6]);
/// ```
#[derive(Debug)]
pub struct DuplicatedScheduler {
    num_workers: usize,
    policy_factory: PolicyFactory,
}

/// Deterministic policy replicator.
///
/// Each worker gets its own replica so assignment decisions never cross
/// threads; [`crate::policy::Policy::replicate`] guarantees agreement.
struct PolicyFactory(Box<dyn Policy>);

impl std::fmt::Debug for PolicyFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PolicyFactory(..)")
    }
}

impl DuplicatedScheduler {
    /// Creates the variant with `num_workers` workers and round-robin
    /// assignment.
    pub fn new(num_workers: usize) -> Self {
        Self {
            num_workers,
            policy_factory: PolicyFactory(Box::new(RoundRobin)),
        }
    }

    /// Replaces the scheduling policy (must be deterministic; see
    /// [`crate::policy::Policy`]).
    pub fn with_policy(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy_factory = PolicyFactory(policy);
        self
    }

    /// Executes `workload` with scheduler code replicated on every worker.
    ///
    /// # Errors
    ///
    /// * [`DomoreError::NoWorkers`] if `num_workers` is zero.
    /// * [`DomoreError::PrologueNotReplicable`] if the workload's prologue
    ///   cannot be re-executed by each worker.
    pub fn execute<W: DomoreWorkload>(&self, workload: &W) -> Result<ExecutionReport, DomoreError> {
        if self.num_workers == 0 {
            return Err(DomoreError::NoWorkers);
        }
        if !workload.prologue_is_replicable() {
            return Err(DomoreError::PrologueNotReplicable);
        }

        let board = ProgressBoard::new(self.num_workers);
        let metrics = Metrics::new();
        let abort = AtomicBool::new(false);
        let error: Mutex<Option<DomoreError>> = Mutex::new(None);
        let fail = |err: DomoreError| {
            let mut slot = error.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
            drop(slot);
            abort.store(true, Ordering::Release);
        };
        let start = Instant::now();

        std::thread::scope(|scope| {
            for tid in 0..self.num_workers {
                let mut policy = self.policy_factory.0.replicate();
                let mut logic = match workload.address_space() {
                    Some(n) => SchedulerLogic::with_dense_shadow(n),
                    None => SchedulerLogic::with_sparse_shadow(),
                };
                let board = &board;
                let metrics = &metrics;
                let (abort, fail) = (&abort, &fail);
                let num_workers = self.num_workers;
                scope.spawn(move || {
                    let stats = metrics.stats();
                    // Contain the replicated scheduling loop: a panic in the
                    // prologue or oracle must not tear down the scope while
                    // peers spin on this worker's conditions.
                    let body = catch_unwind(AssertUnwindSafe(|| {
                        let mut writes = Vec::new();
                        let mut reads = Vec::new();
                        let mut addrs = Vec::new();
                        let mut conds = Vec::new();
                        for inv in 0..workload.num_invocations() {
                            workload.prologue(inv);
                            if tid == 0 {
                                stats.add_epoch();
                            }
                            for iter in 0..workload.num_iterations(inv) {
                                writes.clear();
                                reads.clear();
                                workload.touched(inv, iter, &mut writes, &mut reads);
                                addrs.clear();
                                addrs.extend_from_slice(&writes);
                                addrs.extend_from_slice(&reads);
                                let preview = logic.next_iter_num();
                                let assigned = policy.assign(preview, &addrs, num_workers);
                                conds.clear();
                                let iter_num =
                                    logic.schedule_rw(assigned, &writes, &reads, &mut conds);
                                if assigned != tid {
                                    continue;
                                }
                                // Only the owning worker waits and executes;
                                // the replicas merely keep their shadow state
                                // warm. Under abort the replay continues but
                                // execution is skipped — every owned
                                // iteration is still published so peers
                                // blocked on it are released.
                                if !abort.load(Ordering::Acquire) {
                                    for &cond in &conds {
                                        stats.add_sync_condition();
                                        if !board.satisfied(cond) {
                                            stats.add_stall();
                                            let entered = Instant::now();
                                            board.await_condition_bounded(tid, cond, abort, None);
                                            metrics.record_stall_wait(
                                                entered.elapsed().as_nanos() as u64
                                            );
                                        }
                                    }
                                }
                                if !abort.load(Ordering::Acquire) {
                                    let run = catch_unwind(AssertUnwindSafe(|| {
                                        workload.execute_iteration(inv, iter, tid);
                                    }));
                                    match run {
                                        Ok(()) => stats.add_task(),
                                        Err(_) => {
                                            fail(DomoreError::IterationPanicked { inv, iter })
                                        }
                                    }
                                }
                                board.publish(tid, iter_num);
                            }
                        }
                    }));
                    if body.is_err() {
                        fail(DomoreError::SchedulerPanicked);
                        // Release every peer that may wait on this worker.
                        board.publish(tid, u64::MAX - 1);
                    }
                });
            }
        });

        if let Some(err) = error.into_inner() {
            return Err(err);
        }
        // Worker scope joined: the snapshot is exact.
        let metrics = metrics.snapshot();
        Ok(ExecutionReport {
            stats: metrics.stats,
            elapsed: start.elapsed(),
            num_workers: self.num_workers,
            metrics,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LocalWrite;
    use crossinvoc_runtime::{SharedSlice, ThreadId};

    struct Rotating {
        data: SharedSlice<u64>,
        invocations: usize,
    }

    impl Rotating {
        fn new(n: usize, invocations: usize) -> Self {
            Self {
                data: SharedSlice::from_vec(vec![0; n]),
                invocations,
            }
        }
        fn cell(&self, inv: usize, iter: usize) -> usize {
            (iter * 7 + inv * 3) % self.data.len()
        }
    }

    impl DomoreWorkload for Rotating {
        fn num_invocations(&self) -> usize {
            self.invocations
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            self.data.len()
        }
        fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
            out.push(self.cell(inv, iter));
        }
        fn execute_iteration(&self, inv: usize, iter: usize, _tid: ThreadId) {
            let cell = self.cell(inv, iter);
            // SAFETY: conflicting iterations are ordered by the runtime.
            unsafe { self.data.update(cell, |v| *v = v.wrapping_mul(131) ^ 7) };
        }
        fn address_space(&self) -> Option<usize> {
            Some(self.data.len())
        }
    }

    fn expected(n: usize, invocations: usize) -> Vec<u64> {
        let mut data = vec![0u64; n];
        for inv in 0..invocations {
            for iter in 0..n {
                let cell = (iter * 7 + inv * 3) % n;
                data[cell] = data[cell].wrapping_mul(131) ^ 7;
            }
        }
        data
    }

    #[test]
    fn matches_sequential_result() {
        for workers in [1, 2, 4] {
            let mut w = Rotating::new(13, 9);
            let report = DuplicatedScheduler::new(workers).execute(&w).unwrap();
            assert_eq!(w.data.snapshot(), expected(13, 9));
            assert_eq!(report.stats.tasks, 13 * 9);
        }
    }

    #[test]
    fn localwrite_policy_composes() {
        let mut w = Rotating::new(16, 5);
        DuplicatedScheduler::new(4)
            .with_policy(Box::new(LocalWrite::new(16)))
            .execute(&w)
            .unwrap();
        assert_eq!(w.data.snapshot(), expected(16, 5));
    }

    #[test]
    fn non_replicable_prologue_is_rejected() {
        struct Bad;
        impl DomoreWorkload for Bad {
            fn num_invocations(&self) -> usize {
                1
            }
            fn num_iterations(&self, _inv: usize) -> usize {
                1
            }
            fn touched_addrs(&self, _inv: usize, _iter: usize, _out: &mut Vec<usize>) {}
            fn execute_iteration(&self, _inv: usize, _iter: usize, _tid: ThreadId) {}
            fn prologue_is_replicable(&self) -> bool {
                false
            }
        }
        assert_eq!(
            DuplicatedScheduler::new(2).execute(&Bad).unwrap_err(),
            DomoreError::PrologueNotReplicable
        );
    }

    #[test]
    fn zero_workers_is_rejected() {
        let w = Rotating::new(4, 1);
        assert_eq!(
            DuplicatedScheduler::new(0).execute(&w).unwrap_err(),
            DomoreError::NoWorkers
        );
    }

    #[test]
    fn agrees_with_separate_scheduler_runtime() {
        use crate::runtime::{DomoreConfig, DomoreRuntime};
        let mut a = Rotating::new(11, 7);
        let mut b = Rotating::new(11, 7);
        DuplicatedScheduler::new(3).execute(&a).unwrap();
        DomoreRuntime::new(DomoreConfig::with_workers(3))
            .execute(&b)
            .unwrap();
        assert_eq!(a.data.snapshot(), b.data.snapshot());
    }
}
