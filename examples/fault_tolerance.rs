//! Fault tolerance: inject failures into a speculative region and watch it
//! recover, degrade, or fail with a typed error — never hang.
//!
//! Exercises the deterministic fault-injection harness
//! (`crossinvoc::runtime::fault::FaultPlan`) against the threaded SPECCROSS
//! engine: a contained worker panic, a checker death under a degradation
//! policy, and the typed-error paths for malformed configurations and
//! unabsorbable faults.
//!
//! Run with: `cargo run --example fault_tolerance`

use std::time::Duration;

use crossinvoc::runtime::fault::FaultPlan;
use crossinvoc::runtime::{RangeSignature, SharedSlice};
use crossinvoc::speccross::prelude::*;

/// Task `t` of every epoch increments cell `t`: the sequential reference is
/// `epochs` in every cell, and a clean run never misspeculates.
struct Grid {
    data: SharedSlice<u64>,
    epochs: usize,
}

impl Grid {
    fn new(n: usize, epochs: usize) -> Self {
        Self {
            data: SharedSlice::from_vec(vec![0; n]),
            epochs,
        }
    }

    fn cells(&self) -> Vec<u64> {
        (0..self.data.len())
            .map(|i| unsafe { self.data.read(i) })
            .collect()
    }
}

impl SpecWorkload for Grid {
    type State = Vec<u64>;

    fn num_epochs(&self) -> usize {
        self.epochs
    }
    fn num_tasks(&self, _epoch: usize) -> usize {
        self.data.len()
    }
    fn execute_task(&self, _epoch: usize, task: usize, _tid: usize, rec: &mut dyn AccessRecorder) {
        rec.write(task);
        // SAFETY: same-epoch tasks write disjoint cells; cross-epoch
        // revisits of a cell are ordered by the engine.
        unsafe { self.data.update(task, |v| *v += 1) };
    }
    fn snapshot(&self) -> Self::State {
        self.cells()
    }
    fn restore(&self, state: &Self::State) {
        for (i, v) in state.iter().enumerate() {
            unsafe { self.data.write(i, *v) };
        }
    }
}

fn engine(config: SpecConfig) -> SpecCrossEngine {
    SpecCrossEngine::<RangeSignature>::new(config.watchdog(Duration::from_secs(30)))
}

fn main() {
    let (n, epochs) = (16usize, 10usize);
    let reference = vec![epochs as u64; n];

    // --- 1. A worker panic mid-region is contained: the engine rolls back
    //        to the last checkpoint and re-executes under real barriers.
    let w = Grid::new(n, epochs);
    let report = engine(
        SpecConfig::with_workers(2)
            .checkpoint_every(2)
            .fault_plan(FaultPlan::default().worker_panic_at(4, 7)),
    )
    .execute(&w)
    .expect("a single worker panic must be absorbed");
    assert_eq!(w.cells(), reference);
    println!(
        "worker panic at epoch 4, task 7: absorbed, contained faults {:?}, state correct",
        report.contained_faults
    );

    // --- 2. Losing the checker under a degradation policy: the region
    //        finishes under plain barriers and says so.
    let w = Grid::new(n, epochs);
    let report = engine(
        SpecConfig::with_workers(2)
            .checkpoint_every(2)
            .fault_plan(FaultPlan::default().checker_death_at(3))
            .degrade(DegradePolicy::default()),
    )
    .execute(&w)
    .expect("checker death degrades under a policy");
    assert!(report.degraded, "the report must flag the downgrade");
    assert_eq!(w.cells(), reference);
    println!(
        "checker death at epoch 3: degraded to barriers at epoch {:?}, state correct",
        report.degraded_at_epoch
    );

    // --- 3. The same fault without a policy is a typed error, not an
    //        abort: callers decide what to do with it.
    let w = Grid::new(n, epochs);
    let err = engine(
        SpecConfig::with_workers(2)
            .checkpoint_every(2)
            .fault_plan(FaultPlan::default().checker_death_at(3)),
    )
    .execute(&w)
    .expect_err("checker death without a policy is an error");
    println!("checker death without a policy: {err}");

    // --- 4. Malformed configurations are reportable too.
    let err = engine(SpecConfig::with_workers(2).checkpoint_every(0))
        .execute(&Grid::new(n, epochs))
        .expect_err("a zero checkpoint interval is invalid");
    println!("checkpoint_every(0): {err}");

    // --- 5. The same seeded plan replays identically: run a randomized
    //        plan twice and compare outcomes.
    let plan = FaultPlan::random(42, epochs as u32, n as u64, 2);
    let run = |plan: FaultPlan| {
        let w = Grid::new(n, epochs);
        let out = engine(
            SpecConfig::with_workers(2)
                .checkpoint_every(2)
                .fault_plan(plan)
                .degrade(DegradePolicy::default()),
        )
        .execute(&w);
        (
            out.map(|r| (r.degraded, r.stats.misspeculations)),
            w.cells(),
        )
    };
    let (a, cells_a) = run(plan.clone());
    let (b, cells_b) = run(plan);
    assert_eq!(a, b, "seeded plans are deterministic");
    assert_eq!(cells_a, cells_b);
    println!("seeded plan (seed 42) replayed identically: {a:?}");

    // --- 6. The watchdog turns would-be hangs into errors: stall the
    //        checker far past a short deadline and the region still ends.
    let w = Grid::new(n, epochs);
    let err = SpecCrossEngine::<RangeSignature>::new(
        SpecConfig::with_workers(2)
            .checkpoint_every(2)
            .fault_plan(FaultPlan::default().checker_stall_at(1, 60_000))
            .watchdog(Duration::from_millis(250)),
    )
    .execute(&w)
    .expect_err("a 60s stall against a 250ms deadline must time out");
    assert_eq!(err, SpecError::WatchdogTimeout);
    println!("60s checker stall vs 250ms watchdog: {err}");

    println!("fault tolerance example passed");
}
