//! Workload sizing.
//!
//! The thesis runs full benchmark inputs on a 24-core machine; CI boxes
//! need smaller instances. Every benchmark constructor takes a [`Scale`]
//! so tests run in milliseconds while the figure harness uses larger
//! instances whose *shape* (tasks per epoch, conflict rates, distances)
//! matches the paper's Table 5.3 characteristics.

/// Problem-size tier for a benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Milliseconds-sized instances for unit tests.
    Test,
    /// Seconds-sized instances for the figure harness.
    #[default]
    Figure,
}

impl Scale {
    /// Multiplies a `Figure`-tier quantity down for tests.
    pub fn pick(self, test: usize, figure: usize) -> usize {
        match self {
            Scale::Test => test,
            Scale::Figure => figure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_tier() {
        assert_eq!(Scale::Test.pick(3, 100), 3);
        assert_eq!(Scale::Figure.pick(3, 100), 100);
        assert_eq!(Scale::default(), Scale::Figure);
    }
}
