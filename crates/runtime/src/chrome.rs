//! Chrome/Perfetto `trace_event` JSON export for a [`Trace`].
//!
//! [`Trace::to_chrome_json`] renders a merged trace in the [Trace Event
//! Format] consumed by `chrome://tracing` and `ui.perfetto.dev`: one named
//! track per thread (workers, then the checker and manager service
//! threads), a complete-event slice per executed task and per
//! synchronization wait, instant markers for checkpoints, misspeculations,
//! degradations and injected faults, flow arrows for every
//! [`Event::Wake`] causality edge, and counter tracks for cumulative
//! progress plus (optionally) a final [`MetricsSummary`] sample. Timestamps
//! are microseconds with nanosecond fractions, as the format requires.
//!
//! The export is plain string assembly — like the JSONL writer in
//! [`crate::trace`] it needs no serialization dependency, and the output is
//! schema-checked against a real JSON parser in `tests/trace.rs`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! # Example
//!
//! ```
//! use crossinvoc_runtime::trace::{Event, Trace, TraceSink};
//!
//! let mut sink = TraceSink::with_capacity(0, 8);
//! sink.emit_at(10, Event::TaskDispatch { epoch: 0, task: 0 });
//! sink.emit_at(25, Event::TaskRetire { epoch: 0, task: 0 });
//! let json = Trace::from_sinks([sink]).to_chrome_json(None);
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSummary;
use crate::trace::{checker_shard_of_tid, Event, Trace, CHECKER_TID, MANAGER_TID};
use crate::ThreadId;

/// Microseconds with the nanosecond remainder as three decimals — the
/// format's `ts`/`dur` unit.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn display_name(tid: ThreadId) -> String {
    match tid {
        MANAGER_TID => "manager".to_string(),
        CHECKER_TID => "checker".to_string(),
        tid => match checker_shard_of_tid(tid) {
            Some(shard) => format!("checker-{shard}"),
            None => format!("worker-{tid}"),
        },
    }
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: String::from("{\"traceEvents\":["),
            first: true,
        }
    }

    /// Starts one event object with the common fields; the caller appends
    /// extras (`dur`, `args`, …) and must call through [`Writer::close`].
    fn open(&mut self, name: &str, ph: char, tid: usize, ts_ns: u64) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let _ = write!(
            self.out,
            "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{}",
            us(ts_ns)
        );
        &mut self.out
    }

    fn close(&mut self) {
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("],\"displayTimeUnit\":\"ns\"}");
        self.out
    }
}

impl Trace {
    /// Renders the trace as Chrome `trace_event` JSON (the
    /// `{"traceEvents": [...]}` object form), ready for
    /// `chrome://tracing` or `ui.perfetto.dev`.
    ///
    /// When `metrics` is given, its counters and wait-histogram quantiles
    /// are appended as a final counter sample at the end of the timeline.
    pub fn to_chrome_json(&self, metrics: Option<&MetricsSummary>) -> String {
        let records = self.records();
        let mut w = Writer::new();

        // Dense display tids: real thread ids can be the service-thread
        // sentinels (usize::MAX family), which JSON consumers reject.
        // Ascending sort puts workers first, then checker, then manager.
        let mut tids: Vec<ThreadId> = records.iter().map(|r| r.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let display: BTreeMap<ThreadId, usize> =
            tids.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for (&tid, &dt) in &display {
            w.open("thread_name", 'M', dt, 0)
                .push_str(&format!(",\"args\":{{\"name\":\"{}\"}}", display_name(tid)));
            w.close();
        }

        let mut open_task: BTreeMap<ThreadId, (u64, u32, u64)> = BTreeMap::new();
        let mut open_wait: BTreeMap<ThreadId, (u64, u32)> = BTreeMap::new();
        let mut last_ts: BTreeMap<ThreadId, u64> = BTreeMap::new();
        let mut retired = 0u64;
        let mut misspecs = 0u64;
        for (i, rec) in records.iter().enumerate() {
            let dt = display[&rec.tid];
            match rec.event {
                Event::TaskDispatch { epoch, task } => {
                    open_task.insert(rec.tid, (rec.t_ns, epoch, task));
                }
                Event::TaskRetire { .. } => {
                    if let Some((start, epoch, task)) = open_task.remove(&rec.tid) {
                        w.open("task", 'X', dt, start).push_str(&format!(
                            ",\"dur\":{},\"args\":{{\"epoch\":{epoch},\"task\":{task}}}",
                            us(rec.t_ns.saturating_sub(start))
                        ));
                        w.close();
                    }
                    retired += 1;
                    w.open("retired", 'C', dt, rec.t_ns)
                        .push_str(&format!(",\"args\":{{\"tasks\":{retired}}}"));
                    w.close();
                }
                Event::BarrierEnter { epoch } => {
                    open_wait.insert(rec.tid, (rec.t_ns, epoch));
                }
                Event::BarrierLeave { wait_ns, .. } => {
                    if let Some((start, epoch)) = open_wait.remove(&rec.tid) {
                        w.open("wait", 'X', dt, start).push_str(&format!(
                            ",\"dur\":{},\"args\":{{\"epoch\":{epoch},\"wait_ns\":{wait_ns}}}",
                            us(rec.t_ns.saturating_sub(start))
                        ));
                        w.close();
                    }
                }
                Event::Wake { edge, src_tid, seq } => {
                    // Flow arrow from the releaser's latest preceding record
                    // to the resume point; skipped if the releaser has no
                    // record yet.
                    if let Some(&src_ts) = last_ts.get(&src_tid) {
                        let sdt = display[&src_tid];
                        w.open(edge.name(), 's', sdt, src_ts)
                            .push_str(&format!(",\"cat\":\"wake\",\"id\":{i}"));
                        w.close();
                        w.open(edge.name(), 'f', dt, rec.t_ns).push_str(&format!(
                            ",\"cat\":\"wake\",\"id\":{i},\"bp\":\"e\",\"args\":{{\"seq\":{seq}}}"
                        ));
                        w.close();
                    }
                }
                Event::Misspeculation { .. } => {
                    misspecs += 1;
                    w.open("misspeculation", 'i', dt, rec.t_ns)
                        .push_str(",\"s\":\"g\"");
                    w.close();
                    w.open("misspeculations", 'C', dt, rec.t_ns)
                        .push_str(&format!(",\"args\":{{\"count\":{misspecs}}}"));
                    w.close();
                }
                Event::Checkpoint { epoch } => {
                    w.open("checkpoint", 'i', dt, rec.t_ns)
                        .push_str(&format!(",\"s\":\"t\",\"args\":{{\"epoch\":{epoch}}}"));
                    w.close();
                }
                Event::Degradation { epoch } => {
                    w.open("degradation", 'i', dt, rec.t_ns)
                        .push_str(&format!(",\"s\":\"g\",\"args\":{{\"epoch\":{epoch}}}"));
                    w.close();
                }
                Event::FaultInjected { kind, epoch, task } => {
                    w.open("fault", 'i', dt, rec.t_ns).push_str(&format!(
                        ",\"s\":\"t\",\"args\":{{\"kind\":\"{kind}\",\"epoch\":{epoch},\"task\":{task}}}"
                    ));
                    w.close();
                }
                Event::CheckerSummary {
                    epoch,
                    skips,
                    comparisons,
                } => {
                    w.open("checker_summary", 'i', dt, rec.t_ns).push_str(&format!(
                        ",\"s\":\"t\",\"args\":{{\"epoch\":{epoch},\"skips\":{skips},\"comparisons\":{comparisons}}}"
                    ));
                    w.close();
                }
                Event::ScheduleCacheHit { epoch } => {
                    w.open("schedule_cache_hit", 'i', dt, rec.t_ns)
                        .push_str(&format!(",\"s\":\"t\",\"args\":{{\"epoch\":{epoch}}}"));
                    w.close();
                }
                Event::CheckerShard {
                    shard,
                    shards,
                    requests,
                } => {
                    w.open("checker_shard", 'i', dt, rec.t_ns).push_str(&format!(
                        ",\"s\":\"t\",\"args\":{{\"shard\":{shard},\"shards\":{shards},\"requests\":{requests}}}"
                    ));
                    w.close();
                }
                Event::CheckElided {
                    epoch,
                    tasks,
                    accesses,
                } => {
                    w.open("check_elided", 'i', dt, rec.t_ns).push_str(&format!(
                        ",\"s\":\"t\",\"args\":{{\"epoch\":{epoch},\"tasks\":{tasks},\"accesses\":{accesses}}}"
                    ));
                    w.close();
                }
                Event::EpochBegin { .. } | Event::EpochEnd { .. } | Event::TaskAssign { .. } => {}
            }
            last_ts.insert(rec.tid, rec.t_ns);
        }

        if let Some(m) = metrics {
            let span = self.span_ns();
            w.open("totals", 'C', 0, span).push_str(&format!(
                ",\"args\":{{\"tasks\":{},\"epochs\":{},\"check_requests\":{},\"misspeculations\":{},\"checkpoints\":{},\"stalls\":{}}}",
                m.stats.tasks,
                m.stats.epochs,
                m.stats.check_requests,
                m.stats.misspeculations,
                m.stats.checkpoints,
                m.stats.stalls,
            ));
            w.close();
            for (name, h) in [
                ("barrier_wait_ns", &m.barrier_wait),
                ("stall_wait_ns", &m.stall_wait),
            ] {
                w.open(name, 'C', 0, span).push_str(&format!(
                    ",\"args\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                    h.quantile_upper_bound(0.50),
                    h.quantile_upper_bound(0.95),
                    h.quantile_upper_bound(0.99),
                    h.max_ns,
                ));
                w.close();
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceRecord, WakeEdge};

    fn sample() -> Trace {
        let rec = |t_ns, tid, event| TraceRecord { t_ns, tid, event };
        Trace::from_records(vec![
            rec(0, 0, Event::TaskDispatch { epoch: 0, task: 0 }),
            rec(10, 0, Event::TaskRetire { epoch: 0, task: 0 }),
            rec(10, 0, Event::BarrierEnter { epoch: 0 }),
            rec(30, 1, Event::BarrierEnter { epoch: 0 }),
            rec(
                34,
                0,
                Event::BarrierLeave {
                    epoch: 0,
                    wait_ns: 24,
                },
            ),
            rec(
                34,
                0,
                Event::Wake {
                    edge: WakeEdge::Barrier,
                    src_tid: 1,
                    seq: 0,
                },
            ),
            rec(40, MANAGER_TID, Event::Checkpoint { epoch: 0 }),
        ])
    }

    #[test]
    fn export_has_tracks_slices_and_flows() {
        let json = sample().to_chrome_json(None);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}"));
        // Thread metadata with sentinel tids remapped to dense ints.
        assert!(json.contains("\"name\":\"worker-0\""), "{json}");
        assert!(json.contains("\"name\":\"manager\""), "{json}");
        assert!(!json.contains(&MANAGER_TID.to_string()), "{json}");
        // Task and wait slices with µs timestamps.
        assert!(json.contains("\"name\":\"task\",\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"wait\",\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":0.010"), "{json}");
        // Flow pair for the wake edge.
        assert!(json.contains("\"name\":\"barrier\",\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"name\":\"barrier\",\"ph\":\"f\""), "{json}");
    }

    #[test]
    fn metrics_append_counter_samples() {
        let m = crate::metrics::Metrics::new();
        m.stats().add_task();
        m.record_barrier_wait(1000);
        let json = sample().to_chrome_json(Some(&m.snapshot()));
        assert!(json.contains("\"name\":\"totals\",\"ph\":\"C\""), "{json}");
        assert!(
            json.contains("\"name\":\"barrier_wait_ns\",\"ph\":\"C\""),
            "{json}"
        );
    }

    #[test]
    fn empty_trace_exports_an_empty_event_array() {
        let json = Trace::from_records(Vec::new()).to_chrome_json(None);
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}");
    }
}
