#!/usr/bin/env bash
# Local CI entry point — the same gates .github/workflows/ci.yml runs.
# Every step is wrapped in `timeout` so a deadlocked test can never wedge
# the pipeline (the runtimes' own watchdogs should fire long before these).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_TIMEOUT="${BUILD_TIMEOUT:-1200}"
TEST_TIMEOUT="${TEST_TIMEOUT:-900}"
CLIPPY_TIMEOUT="${CLIPPY_TIMEOUT:-1200}"
BENCH_TIMEOUT="${BENCH_TIMEOUT:-120}"
FUZZ_TIMEOUT="${FUZZ_TIMEOUT:-60}"
TRACE_TIMEOUT="${TRACE_TIMEOUT:-600}"

run() {
  local limit="$1"
  shift
  echo "==> $*"
  timeout --kill-after=30 "$limit" "$@"
}

run "$BUILD_TIMEOUT" cargo fmt --all -- --check
run "$BUILD_TIMEOUT" cargo build --release --workspace
run "$TEST_TIMEOUT" cargo test -q
run "$TEST_TIMEOUT" cargo test -q --workspace
run "$CLIPPY_TIMEOUT" cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" run "$BUILD_TIMEOUT" cargo doc --no-deps --workspace

# Docs ↔ CLI consistency: every `--flag` the prose mentions alongside one
# of the repo's binaries must still be parsed by one of those binaries'
# sources, so a renamed or removed flag can't leave dangling instructions
# behind. (Checked against the union of the four binaries because a doc
# line may name several of them; cargo's own flags are whitelisted.)
check_doc_flags() {
  local bad=0 f
  local bins='bench-suite|fuzz-diff|trace-report|server-stats'
  local srcs='crates/bench/src/bin/bench-suite.rs crates/bench/src/bin/fuzz-diff.rs crates/bench/src/bin/trace-report.rs crates/bench/src/bin/server-stats.rs'
  local cargo_flags='release|bin|package|quiet|workspace|features|bench|no-deps|all-targets'
  local s
  for s in $srcs; do
    [ -f "$s" ] || { echo "ERROR: docs reference binary source $s, which is missing" >&2; bad=1; }
  done
  for f in $(grep -rhE "\b($bins)\b" --include='*.md' README.md EXPERIMENTS.md DESIGN.md docs |
    grep -oE -- '--[a-z][a-z-]+' | sed 's/^--//' | sort -u |
    grep -vE "^($cargo_flags)$" || true); do
    if ! grep -q -- "\"--$f\"" $srcs; then
      echo "ERROR: docs mention flag --$f next to ($bins) but no binary parses it" >&2
      bad=1
    fi
  done
  # Docs ↔ CI gate consistency: every BENCH_*.json artifact the prose
  # names must be validated by this script, so a documented gate can't
  # silently drop out of CI.
  local b
  for b in $(grep -rhoE 'BENCH_[0-9]+\.json' --include='*.md' \
    README.md EXPERIMENTS.md DESIGN.md docs | sort -u); do
    if ! grep -A1 -- '--validate' "$0" | grep -q "$b"; then
      echo "ERROR: docs mention $b but scripts/ci.sh never runs --validate on it" >&2
      bad=1
    fi
  done
  return "$bad"
}
echo "==> docs/CLI flag consistency"
check_doc_flags

# Scheduling-policy regression smoke: must produce a well-formed
# BENCH_3.json (the full criteria run at figure scale; see EXPERIMENTS.md).
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- --smoke
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --validate target/figures/BENCH_3.json

# Fast-path regression smoke: must produce a well-formed BENCH_5.json
# (checker epoch-summary pruning + schedule memoization; the criteria run
# at figure scale via `--fastpath` without `--smoke`, see EXPERIMENTS.md).
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --fastpath --smoke
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --validate target/figures/BENCH_5.json

# Sharded-checker regression smoke: must produce a well-formed
# BENCH_7.json (verdict identity + checker-wait share criteria run at
# figure scale via `--shards` without `--smoke`, see EXPERIMENTS.md).
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --shards --smoke
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --validate target/figures/BENCH_7.json

# Region-server saturation smoke: N independent SPECCROSS + DOMORE regions
# through one shared pool must produce a well-formed BENCH_8.json whose
# criteria (per-region digests identical to solo, aggregate throughput
# above region-at-a-time in the virtual-time model, fault isolation) are
# deterministic and therefore gate even at smoke scale (see EXPERIMENTS.md).
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --regions --smoke
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --validate target/figures/BENCH_8.json

# Telemetry-plane smoke: the BENCH_8 fleet with the live registry + flight
# recorder attached must produce a well-formed BENCH_9.json whose criteria
# (digest identity on vs. off, snapshot-vs-report metrics consistency, one
# well-formed flight dump under an injected fault, >= 0.97x throughput)
# gate at smoke scale too (see EXPERIMENTS.md). Also leaves
# BENCH_9.snapshots.jsonl + BENCH_9.prom as exposition exemplars for
# server-stats and Prometheus scrapes.
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --telemetry --smoke
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --validate target/figures/BENCH_9.json

# Static-elision smoke: the registry transparency sweep (elide-on digests
# and verdicts identical to elide-off) plus the clustered/mixed checker-side
# measurements must produce a well-formed BENCH_10.json (see EXPERIMENTS.md;
# the pruning-ratio and wait-share criteria gate at full scale only).
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --elide --smoke
run "$BENCH_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin bench-suite -- \
  --validate target/figures/BENCH_10.json

# Differential-fuzzing smoke: replay the checked-in corpus, then a fixed
# seed window through every engine path against the sequential oracle
# (docs/FUZZING.md). Any divergence is minimized into
# target/fuzz-corpus/ (CI uploads it as an artifact) and fails the run.
run "$FUZZ_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin fuzz-diff -- \
  --smoke --corpus corpus --out target/fuzz-corpus
run "$FUZZ_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin fuzz-diff -- \
  --smoke --start 100000 --fault-percent 100 --corpus corpus --out target/fuzz-corpus

# Observability smoke: a traced figure run must produce traces that survive
# strict analysis (non-zero exit on any ring overflow) and export to
# Chrome/Perfetto trace_event JSON (see docs/OBSERVABILITY.md). The text
# report and the chrome/ directory are the artifacts CI archives.
run "$TRACE_TIMEOUT" env CROSSINVOC_TRACE=1 cargo bench -p crossinvoc-bench --bench fig4_3
run "$TRACE_TIMEOUT" cargo run --release -q -p crossinvoc-bench --bin trace-report -- \
  --strict --chrome target/figures/chrome target/figures/*.trace.jsonl \
  >target/figures/trace-report.txt
echo "    wrote target/figures/trace-report.txt + target/figures/chrome/"

echo "CI passed."
