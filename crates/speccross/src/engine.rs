//! The threaded SPECCROSS engine (§4.2, Fig. 4.5).
//!
//! One manager (the calling thread), `num_workers` worker threads and
//! [`SpecConfig::checker_shards`] checker threads (one by default), the
//! admission work interleaved over them by address (see [`crate::shard`]).
//! Workers execute epochs back-to-back, crossing barrier boundaries
//! speculatively; each task's signature and start-time position snapshot go
//! to every checker shard its address span touches — buffered locally and
//! published to a per-(worker, shard) SPSC ring in batches, so each checker
//! admits requests in bursts against its own epoch-bucketed log of
//! [`crate::check`] instead of waking once per task. A straddling task is
//! admitted only when every touched shard admits it; any shard's conflict
//! is the region's verdict. Checkpoint pruning rides an atomic epoch
//! watermark rather than an in-band message. Every `checkpoint_every` epochs the workers rendezvous,
//! the checker is drained, and the workload state is snapshotted. On
//! misspeculation all workers unwind cooperatively, the last checkpoint is
//! restored, the misspeculated epochs re-execute under non-speculative
//! barriers, and speculation resumes (substitution S3 of DESIGN.md replaces
//! the thesis' `fork`/`kill` mechanics with snapshot/restore + cooperative
//! cancellation; the recovery *sequence* is identical).
//!
//! # Failure model
//!
//! Everything that can go wrong inside the region is funnelled through the
//! same cooperative-abort machinery as ordinary misspeculation:
//!
//! * A **task panic** (organic or injected via [`FaultPlan`]) is caught at
//!   the `execute_task` call site, recorded, and converted into a
//!   poisoned-pass abort. The engine restores the last checkpoint and
//!   re-executes the range under non-speculative barriers; a *second* panic
//!   of the same task there surfaces as [`SpecError::TaskPanicked`].
//! * **Checker loss** (the checker thread dying) releases all workers,
//!   counts the in-flight check requests it stranded, and either fails the
//!   region with [`SpecError::CheckerFailed`] or — when a [`DegradePolicy`]
//!   is configured — finishes the remaining epochs non-speculatively.
//! * A **misspeculation storm** (e.g. a faulty signature scheme forcing
//!   conflicts on every pass) trips the [`DegradePolicy`] thresholds and
//!   downgrades the region to barrier execution instead of thrashing on
//!   rollback, reported via [`SpecReport::degraded`].
//! * **Snapshot failures** keep the previous checkpoint (recovery just
//!   rolls back further); **restore failures** are retried once and then
//!   surface as [`SpecError::RestoreFailed`].
//! * A **watchdog deadline** ([`SpecConfig::watchdog`]) bounds every spin
//!   loop — barrier waits, checkpoint rendezvous, speculative-range gates,
//!   checker idling — so a lost peer yields [`SpecError::WatchdogTimeout`]
//!   instead of a livelock.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::utils::Backoff;
use parking_lot::Mutex;

use crossinvoc_runtime::barrier::BarrierWait;
use crossinvoc_runtime::fault::{CheckFault, FaultKind, FaultPlan, TaskFault};
use crossinvoc_runtime::metrics::{Metrics, MetricsSummary};
use crossinvoc_runtime::pool::{RegionExecutor, Role, ScopedExecutor};
use crossinvoc_runtime::signature::{AccessSignature, RangeSignature};
use crossinvoc_runtime::spsc;
use crossinvoc_runtime::stats::{RegionStats, StatsSummary};
use crossinvoc_runtime::telemetry::RegionTelemetry;
use crossinvoc_runtime::trace::{
    checker_shard_tid, Event, Trace, TraceCollector, TraceSink, WakeEdge, MANAGER_TID,
};
use crossinvoc_runtime::SpinBarrier;

use crate::check::{CheckRequest, CheckerState, Conflict};
use crate::position::{Position, PositionBoard};
use crate::profile::{DistanceProfiler, ProfileReport};
use crate::shard::ShardMap;
use crate::workload::{CountingRecorder, NullRecorder, SigRecorder, SpecWorkload};

/// When to give up on speculation and finish a region under plain barriers.
///
/// Rollback-and-retry is only worth it while misspeculation stays rare. When
/// it is not — a signature scheme gone pathological, a checker forcing false
/// positives, an input far from the profiled one — repeated recovery costs
/// more than the barriers SPECCROSS was built to elide. This policy draws
/// that line: exceed either threshold and the engine restores the last
/// checkpoint, runs every remaining epoch non-speculatively, and flags the
/// region via [`SpecReport::degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Number of most-recent speculative passes inspected.
    pub window: usize,
    /// Degrade when at least this many passes within the window ended in
    /// misspeculation.
    pub max_misspeculations: u32,
    /// Degrade after this many *consecutive* failed speculative attempts
    /// (passes that rolled back without completing the region).
    pub max_consecutive_failures: u32,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        Self {
            window: 8,
            max_misspeculations: 4,
            max_consecutive_failures: 3,
        }
    }
}

/// Configuration for [`SpecCrossEngine`].
#[derive(Debug, Clone)]
pub struct SpecConfig {
    /// Worker thread count (the checker thread is additional, matching the
    /// thesis' accounting in §5.2).
    pub num_workers: usize,
    /// Take a checkpoint every this many epochs (thesis default: 1000).
    /// Must be positive; validated by [`SpecCrossEngine::execute`].
    pub checkpoint_every: usize,
    /// Speculative range in tasks, normally the profiled minimum dependence
    /// distance ([`ProfileReport::min_distance`]). `None` disables gating.
    pub spec_distance: Option<u64>,
    /// Test/experiment hook: force a misspeculation the first time any task
    /// of this epoch is admitted by the checker (used by the Fig. 5.3
    /// recovery-cost experiment; the thesis triggers it "randomly").
    pub inject_conflict_at_epoch: Option<u32>,
    /// Deterministic fault schedule exercised by the region (testing).
    pub fault_plan: Option<FaultPlan>,
    /// When set, switch to non-speculative execution once speculation
    /// misbehaves persistently.
    pub degrade: Option<DegradePolicy>,
    /// Upper bound on the region's wall-clock time: every spin loop checks
    /// it, turning a lost peer into [`SpecError::WatchdogTimeout`] instead
    /// of an unbounded spin.
    pub watchdog: Option<Duration>,
    /// When set, record structured execution events into per-thread rings of
    /// this many records each, surfaced as [`SpecReport::trace`]. `None`
    /// (the default) keeps tracing off — workers then pay one predicted
    /// branch per would-be event, nothing more.
    pub trace_capacity: Option<usize>,
    /// Whether the checker may use per-epoch aggregate signatures to skip
    /// whole buckets (the PR 5 pruning fast path). `false` forces the
    /// member-by-member scan; conflict verdicts are identical either way —
    /// the differential fuzzer runs regions through both settings.
    pub epoch_summaries: bool,
    /// Whether statically-proven epochs skip the checker entirely. When set,
    /// every epoch for which [`SpecWorkload::epoch_is_proven`] returns `true`
    /// runs its tasks without signature generation and without checker
    /// admission — the `pir::elide` analysis has already proven the compared
    /// task pairs conflict-free, so the runtime check is redundant. Unproven
    /// epochs stay on the full admission path; `false` (the default) checks
    /// everything, byte-identical to the pre-elision engine.
    ///
    /// [`SpecWorkload::epoch_is_proven`]: crate::workload::SpecWorkload::epoch_is_proven
    pub elide: bool,
    /// Number of checker threads the admission work is sharded over by
    /// address (see [`crate::shard`]). `1` (the default) reproduces the
    /// single-checker engine exactly; values are validated against
    /// `1..=`[`crate::shard::MAX_SHARDS`]. A task whose signature straddles
    /// shards is checked by every touched shard and admitted only when all
    /// of them admit it.
    pub checker_shards: usize,
    /// Region-server submission id stamped on the region's trace (the
    /// `region_id` JSONL field; see `docs/OBSERVABILITY.md`). `0` (the
    /// default) marks a solo run and keeps trace output byte-identical to
    /// the pre-region schema.
    pub region_id: u64,
    /// Live telemetry cell for this region (region-server mode; see
    /// `crossinvoc_runtime::telemetry`). When set, the engine writes its
    /// metrics *through the cell* — so live registry snapshots and the
    /// final [`SpecReport::metrics`] read the same counters — and drives
    /// the cell's lifecycle (running → done/faulted, degrade events, queue
    /// waits, flight-recorder dumps). `None` (the default, solo mode) costs
    /// nothing.
    pub telemetry: Option<Arc<RegionTelemetry>>,
}

impl SpecConfig {
    /// Configuration with `num_workers` workers and thesis defaults.
    pub fn with_workers(num_workers: usize) -> Self {
        Self {
            num_workers,
            checkpoint_every: 1000,
            spec_distance: None,
            inject_conflict_at_epoch: None,
            fault_plan: None,
            degrade: None,
            watchdog: None,
            trace_capacity: None,
            epoch_summaries: true,
            elide: false,
            checker_shards: 1,
            region_id: 0,
            telemetry: None,
        }
    }

    /// Sets the checkpoint interval in epochs. A zero interval is rejected
    /// with [`SpecError::InvalidConfig`] when the region runs.
    pub fn checkpoint_every(mut self, epochs: usize) -> Self {
        self.checkpoint_every = epochs;
        self
    }

    /// Sets the speculative range (minimum dependence distance) in tasks.
    pub fn spec_distance(mut self, distance: Option<u64>) -> Self {
        self.spec_distance = distance;
        self
    }

    /// Forces a conflict at the given epoch (testing / recovery studies).
    pub fn inject_conflict_at_epoch(mut self, epoch: Option<u32>) -> Self {
        self.inject_conflict_at_epoch = epoch;
        self
    }

    /// Installs a deterministic fault schedule (testing).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables graceful degradation with the given thresholds.
    pub fn degrade(mut self, policy: DegradePolicy) -> Self {
        self.degrade = Some(policy);
        self
    }

    /// Bounds the region's wall-clock time (liveness watchdog).
    pub fn watchdog(mut self, limit: Duration) -> Self {
        self.watchdog = Some(limit);
        self
    }

    /// Enables execution tracing with per-thread rings of `capacity`
    /// records (see [`SpecReport::trace`]).
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Enables tracing with `capacity` only when tracing is off — the
    /// region server uses this to arm always-on flight-recorder rings
    /// without overriding an explicitly configured capacity.
    pub fn trace_default(mut self, capacity: usize) -> Self {
        self.trace_capacity.get_or_insert(capacity);
        self
    }

    /// Toggles the checker's per-epoch aggregate fast path (on by default).
    pub fn epoch_summaries(mut self, enabled: bool) -> Self {
        self.epoch_summaries = enabled;
        self
    }

    /// Lets statically-proven epochs skip signature generation and checker
    /// admission (off by default). See [`SpecConfig::elide`].
    pub fn elide(mut self, enabled: bool) -> Self {
        self.elide = enabled;
        self
    }

    /// Shards the checker over this many threads (default 1). Validated at
    /// execution time against `1..=`[`crate::shard::MAX_SHARDS`].
    pub fn checker_shards(mut self, shards: usize) -> Self {
        self.checker_shards = shards;
        self
    }

    /// Attributes the region's trace to a region-server submission id
    /// (default 0 = solo).
    pub fn region(mut self, region_id: u64) -> Self {
        self.region_id = region_id;
        self
    }

    /// Attaches a live telemetry cell (region-server mode). See
    /// [`SpecConfig::telemetry`].
    pub fn telemetry(mut self, cell: Arc<RegionTelemetry>) -> Self {
        self.telemetry = Some(cell);
        self
    }
}

/// Errors reported by the SPECCROSS engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The configuration requested zero workers.
    NoWorkers,
    /// The configuration is inconsistent (message says how).
    InvalidConfig(String),
    /// The checker thread died; this many in-flight check requests were
    /// stranded unverified.
    CheckerFailed {
        /// Check requests sent but never processed.
        unprocessed: u64,
    },
    /// A task panicked during non-speculative (re-)execution, where no
    /// rollback can mask it. `epoch`/`task` of `u32::MAX`/`u64::MAX` mean
    /// the panic struck outside any task body.
    TaskPanicked {
        /// Epoch of the panicking task.
        epoch: u32,
        /// Index of the panicking task within its epoch.
        task: u64,
    },
    /// Restoring the recovery checkpoint failed twice.
    RestoreFailed {
        /// Epoch of the checkpoint that could not be restored.
        epoch: u32,
    },
    /// The watchdog deadline elapsed before the region completed.
    WatchdogTimeout,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoWorkers => write!(f, "at least one worker thread is required"),
            SpecError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SpecError::CheckerFailed { unprocessed } => write!(
                f,
                "checker thread died with {unprocessed} unverified check request(s)"
            ),
            SpecError::TaskPanicked { epoch, task } => {
                write!(
                    f,
                    "task {task} of epoch {epoch} panicked during non-speculative execution"
                )
            }
            SpecError::RestoreFailed { epoch } => {
                write!(f, "restoring the epoch-{epoch} checkpoint failed twice")
            }
            SpecError::WatchdogTimeout => write!(f, "watchdog deadline elapsed"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A fault the engine absorbed without failing the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainedFault {
    /// A task panicked during speculation; the pass was rolled back and the
    /// range re-executed non-speculatively.
    WorkerPanic {
        /// Epoch of the panicking task.
        epoch: u32,
        /// Task index within the epoch (`u64::MAX`: outside any task).
        task: u64,
    },
    /// The checker thread died, stranding this many in-flight requests; the
    /// region finished under the degradation policy.
    CheckerLoss {
        /// Check requests sent but never processed.
        unprocessed: u64,
    },
    /// A checkpoint snapshot failed; the previous checkpoint was kept, so a
    /// later rollback merely rewinds further.
    SnapshotSkipped {
        /// Epoch whose snapshot was skipped.
        epoch: u32,
    },
    /// Restoring the checkpoint failed once and succeeded on retry.
    RestoreRetried {
        /// Epoch of the checkpoint.
        epoch: u32,
    },
}

/// Outcome of a SPECCROSS execution.
#[derive(Debug, Clone)]
pub struct SpecReport {
    /// Counter snapshot (tasks, epochs, checking requests, …).
    pub stats: StatsSummary,
    /// Wall-clock time of the region.
    pub elapsed: Duration,
    /// Worker threads used (excluding the checker).
    pub num_workers: usize,
    /// Signature comparisons the checker performed.
    pub comparisons: u64,
    /// Conflicts that triggered recovery, in detection order.
    pub conflicts: Vec<Conflict>,
    /// Whether the region fell back to non-speculative barriers mid-run.
    pub degraded: bool,
    /// Checkpoint epoch from which the degraded (barrier) tail ran.
    pub degraded_at_epoch: Option<u32>,
    /// Faults absorbed without failing the region, in occurrence order.
    pub contained_faults: Vec<ContainedFault>,
    /// Counters plus wait-time histograms (exact: snapshotted after every
    /// region thread joined; see `RegionStats::snapshot`).
    pub metrics: MetricsSummary,
    /// Merged execution trace when [`SpecConfig::trace`] was enabled.
    pub trace: Option<Trace>,
}

/// Capacity of each worker→checker SPSC ring, in check requests.
const CHECK_RING: usize = 1024;

/// Worker-side flush threshold: a worker buffers up to this many check
/// requests locally and ships them to its ring with one batched publish,
/// so the checker is woken in bursts instead of once per task.
const CHECK_BATCH: usize = 16;

/// Checker-side burst size: how many requests the checker drains from one
/// worker's ring per pickup.
const CHECK_PICKUP: usize = 64;

/// Why a speculative pass aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbortReason {
    /// The checker detected (or was forced to report) a conflict.
    Conflict,
    /// A task body panicked (contained by the worker).
    TaskPanic { epoch: u32, task: u64 },
    /// The checker thread died.
    CheckerLoss { unprocessed: u64 },
    /// The watchdog deadline elapsed.
    Timeout,
}

/// Outcome of one speculative pass.
enum PassEnd {
    Completed,
    Aborted {
        /// First epoch to run speculatively again; `[checkpoint_epoch,
        /// resume_epoch)` re-executes under non-speculative barriers.
        resume_epoch: usize,
        reason: AbortReason,
    },
}

/// Everything a speculative pass hands back to the recovery loop.
struct PassResult<St> {
    end: PassEnd,
    comparisons: u64,
    /// The conflict that condemned the pass plus the checker shard that
    /// found it (shard 0 on unsharded runs).
    conflict: Option<(Conflict, usize)>,
    /// Epoch of the checkpoint to restore on abort.
    checkpoint_epoch: usize,
    /// State of that checkpoint.
    checkpoint_state: St,
    contained: Vec<ContainedFault>,
}

/// Interruptible rendezvous used at checkpoints.
///
/// Like a barrier, but every wait polls the misspeculation flag and the
/// watchdog deadline: when either trips, all participants abandon the pass
/// (the structure is discarded with the pass, so the dirty counter is
/// harmless).
struct SyncPoint {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    /// Worker id of the last arrival of the most recent release — the
    /// source of the checkpoint-release causality edge. Written before the
    /// generation bump, so a released waiter reads its own generation's
    /// releaser.
    releaser: AtomicUsize,
}

enum WaitOutcome {
    /// Released; `true` on the serial (last-arriving) participant.
    Released(bool),
    Aborted,
    TimedOut,
}

impl SyncPoint {
    fn new(n: usize) -> Self {
        Self {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            releaser: AtomicUsize::new(0),
        }
    }

    /// Worker id of the last arrival that performed the most recent
    /// release. Race-free for a waiter reading it right after its own
    /// released wait (the store precedes the generation bump).
    fn last_releaser(&self) -> usize {
        self.releaser.load(Ordering::Relaxed)
    }

    fn wait(&self, tid: usize, abort: &AtomicBool, deadline: Option<Instant>) -> WaitOutcome {
        if abort.load(Ordering::Acquire) {
            return WaitOutcome::Aborted;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.releaser.store(tid, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
            WaitOutcome::Released(true)
        } else {
            let backoff = Backoff::new();
            loop {
                if self.generation.load(Ordering::Acquire) != gen {
                    return WaitOutcome::Released(false);
                }
                if abort.load(Ordering::Acquire) {
                    return WaitOutcome::Aborted;
                }
                if backoff.is_completed() {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return WaitOutcome::TimedOut;
                    }
                    std::thread::yield_now();
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

/// Shared state of one speculative pass.
struct PassShared<St> {
    board: PositionBoard,
    misspec: AtomicBool,
    /// First conflict any checker shard found, with the finding shard's
    /// index (first-wins: shard threads race to fill it; later verdicts of
    /// the same doomed pass are dropped).
    conflict: Mutex<Option<(Conflict, usize)>>,
    /// First abnormal-abort reason (panic, checker loss, timeout); `None`
    /// with `misspec` raised means an ordinary conflict.
    failure: Mutex<Option<AbortReason>>,
    /// Faults absorbed during this pass.
    contained: Mutex<Vec<ContainedFault>>,
    /// Latest durable checkpoint: (epoch, state).
    checkpoint: Mutex<(usize, St)>,
    sent: AtomicU64,
    processed: AtomicU64,
    done_workers: AtomicUsize,
    /// Epoch below which the checker may discard its logs. Written (with
    /// Release) only by the checkpoint serial worker, *after* the drain
    /// observed `processed == sent`, so by the time the checker reads a new
    /// watermark every pre-checkpoint request has already been admitted.
    /// Monotone: checkpoints happen at increasing epochs.
    prune_epoch: AtomicU32,
    sync: SyncPoint,
    /// Shared-budget handle onto the execution's fault plan.
    fault: FaultPlan,
    deadline: Option<Instant>,
    /// Global task index of the first task of each epoch (prefix sums).
    prefix: Vec<u64>,
}

impl<St> PassShared<St> {
    /// Records the pass's first abnormal failure and aborts everyone.
    fn record_failure(&self, reason: AbortReason) {
        let mut slot = self.failure.lock();
        if slot.is_none() {
            *slot = Some(reason);
        }
        drop(slot);
        self.misspec.store(true, Ordering::Release);
    }

    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The software-only speculative-barrier engine.
///
/// Generic over the signature scheme `S` (default: the thesis'
/// [`RangeSignature`]).
///
/// # Example
///
/// ```
/// use crossinvoc_speccross::prelude::*;
/// use crossinvoc_runtime::SharedSlice;
///
/// // 6 epochs of 8 independent tasks; task t of each epoch bumps cell t.
/// // No cross-epoch task ever touches a *different* cell, so the only
/// // cross-invocation dependences are per-cell chains — and distributing
/// // tasks round-robin keeps each chain on one worker: speculation never
/// // misses.
/// struct Steps {
///     data: SharedSlice<u64>,
/// }
/// impl SpecWorkload for Steps {
///     type State = Vec<u64>;
///     fn num_epochs(&self) -> usize { 6 }
///     fn num_tasks(&self, _epoch: usize) -> usize { 8 }
///     fn execute_task(&self, _e: usize, t: usize, _tid: usize,
///                     rec: &mut dyn AccessRecorder) {
///         rec.write(t);
///         unsafe { self.data.update(t, |v| *v += 1) };
///     }
///     fn snapshot(&self) -> Vec<u64> {
///         (0..self.data.len()).map(|i| unsafe { self.data.read(i) }).collect()
///     }
///     fn restore(&self, s: &Vec<u64>) {
///         for (i, v) in s.iter().enumerate() {
///             unsafe { self.data.write(i, *v) };
///         }
///     }
/// }
///
/// let mut w = Steps { data: SharedSlice::from_vec(vec![0; 8]) };
/// let engine: SpecCrossEngine = SpecCrossEngine::new(SpecConfig::with_workers(2));
/// let report = engine.execute(&w).unwrap();
/// assert_eq!(report.stats.misspeculations, 0);
/// assert!(!report.degraded);
/// assert!(w.data.snapshot().iter().all(|&v| v == 6));
/// ```
#[derive(Debug)]
pub struct SpecCrossEngine<S = RangeSignature> {
    config: SpecConfig,
    _sig: std::marker::PhantomData<fn() -> S>,
}

impl<S: AccessSignature> SpecCrossEngine<S> {
    /// Creates an engine from `config`.
    pub fn new(config: SpecConfig) -> Self {
        Self {
            config,
            _sig: std::marker::PhantomData,
        }
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.config.num_workers == 0 {
            return Err(SpecError::NoWorkers);
        }
        if self.config.checkpoint_every == 0 {
            return Err(SpecError::InvalidConfig(
                "checkpoint interval must be positive".to_string(),
            ));
        }
        if !(1..=crate::shard::MAX_SHARDS).contains(&self.config.checker_shards) {
            return Err(SpecError::InvalidConfig(format!(
                "checker_shards must be in 1..={}",
                crate::shard::MAX_SHARDS
            )));
        }
        Ok(())
    }

    /// A region wider than the executor's gang capacity could never be
    /// admitted (and would wedge a shared pool's FIFO queue), so it is
    /// rejected up front as a configuration error.
    fn validate_capacity(&self, exec: &dyn RegionExecutor, demand: usize) -> Result<(), SpecError> {
        if let Some(cap) = exec.capacity() {
            if demand > cap {
                return Err(SpecError::InvalidConfig(format!(
                    "region needs a gang of {demand} threads but the executor caps gangs at {cap}"
                )));
            }
        }
        Ok(())
    }

    /// Runs `workload` with speculative barriers, recovering from
    /// misspeculation (and contained faults — see the module docs) until the
    /// region completes or degrades to barrier execution.
    ///
    /// # Errors
    ///
    /// [`SpecError::NoWorkers`] / [`SpecError::InvalidConfig`] for a bad
    /// configuration; [`SpecError::CheckerFailed`],
    /// [`SpecError::TaskPanicked`], [`SpecError::RestoreFailed`] and
    /// [`SpecError::WatchdogTimeout`] for failures the engine could not
    /// absorb.
    pub fn execute<W: SpecWorkload>(&self, workload: &W) -> Result<SpecReport, SpecError> {
        self.execute_on(workload, &ScopedExecutor)
    }

    /// Like [`SpecCrossEngine::execute`], but running the region's gangs
    /// (workers + checker shards) on the given executor — a shared
    /// [`crossinvoc_runtime::pool::WorkerPool`] in region-server mode, or
    /// [`ScopedExecutor`] for the classic thread-per-role behaviour. The
    /// calling thread stays the region's manager either way; all per-region
    /// state (checker logs, checkpoints, metrics, trace sinks, fault budget)
    /// lives in this call frame, so concurrent regions on one pool cannot
    /// observe each other.
    pub fn execute_on<W: SpecWorkload>(
        &self,
        workload: &W,
        exec: &dyn RegionExecutor,
    ) -> Result<SpecReport, SpecError> {
        self.validate()?;
        self.validate_capacity(exec, self.config.num_workers + self.config.checker_shards)?;
        // One shared fault budget for the whole execution: a single-shot
        // fault consumed during speculation must not re-fire in recovery.
        let fault = self.config.fault_plan.clone().unwrap_or_default();
        let deadline = self.config.watchdog.map(|w| Instant::now() + w);
        let telemetry = self.config.telemetry.as_deref();
        if let Some(cell) = telemetry {
            cell.mark_running();
        }
        // In region-server mode the metrics live in the telemetry cell, so
        // live registry snapshots and the final report read the same
        // counters and cannot disagree.
        let owned_metrics;
        let metrics: &Metrics = match telemetry {
            Some(cell) => cell.metrics(),
            None => {
                owned_metrics = Metrics::new();
                &owned_metrics
            }
        };
        let stats = metrics.stats();
        let collector = TraceCollector::with_region(
            self.config.trace_capacity.unwrap_or(0),
            self.config.region_id,
        );
        let mut manager_sink = collector.sink(MANAGER_TID);
        let mut conflicts = Vec::new();
        let mut comparisons = 0;
        let mut contained: Vec<ContainedFault> = Vec::new();
        let mut degraded = false;
        let mut degraded_at_epoch = None;
        // Degradation bookkeeping: recent pass outcomes + consecutive fails.
        let mut recent = VecDeque::new();
        let mut consecutive_failures = 0u32;
        let mut misspec_ordinal: u64 = 0;
        let start = Instant::now();
        let mut start_epoch = 0usize;
        let num_epochs = workload.num_epochs();

        // The recovery loop runs inside an immediately-invoked closure so
        // every failure path funnels through one exit below — where the
        // manager sink is absorbed, the trace finished, and the telemetry
        // cell finalised (flight dumps must happen on hard errors too).
        let outcome: Result<(), SpecError> = (|| {
            while start_epoch < num_epochs {
                let pass = self.speculative_pass(
                    workload,
                    start_epoch,
                    metrics,
                    &fault,
                    deadline,
                    &collector,
                    exec,
                );
                comparisons += pass.comparisons;
                contained.extend(pass.contained.iter().copied());

                let (resume_epoch, reason) = match pass.end {
                    PassEnd::Completed => break,
                    PassEnd::Aborted {
                        resume_epoch,
                        reason,
                    } => (resume_epoch, reason),
                };
                consecutive_failures += 1;
                if let Some(policy) = self.config.degrade {
                    recent.push_back(matches!(reason, AbortReason::Conflict));
                    while recent.len() > policy.window {
                        recent.pop_front();
                    }
                }

                match reason {
                    AbortReason::Timeout => return Err(SpecError::WatchdogTimeout),
                    AbortReason::TaskPanic { epoch, task } => {
                        contained.push(ContainedFault::WorkerPanic { epoch, task });
                        self.restore_with_retry(workload, &pass, &fault, &mut contained)?;
                        // Re-execute non-speculatively; a repeat panic there is
                        // no longer maskable and surfaces as TaskPanicked.
                        self.run_barrier_range(
                            workload,
                            pass.checkpoint_epoch,
                            resume_epoch,
                            metrics,
                            &fault,
                            deadline,
                            &collector,
                            exec,
                        )?;
                        start_epoch = resume_epoch;
                    }
                    AbortReason::CheckerLoss { unprocessed } => {
                        if self.config.degrade.is_some() {
                            contained.push(ContainedFault::CheckerLoss { unprocessed });
                            self.restore_with_retry(workload, &pass, &fault, &mut contained)?;
                            manager_sink.emit(Event::Degradation {
                                epoch: pass.checkpoint_epoch as u32,
                            });
                            if let Some(cell) = telemetry {
                                cell.add_degrade_event();
                            }
                            self.run_barrier_range(
                                workload,
                                pass.checkpoint_epoch,
                                num_epochs,
                                metrics,
                                &fault,
                                deadline,
                                &collector,
                                exec,
                            )?;
                            degraded = true;
                            degraded_at_epoch = Some(pass.checkpoint_epoch as u32);
                            break;
                        }
                        return Err(SpecError::CheckerFailed { unprocessed });
                    }
                    AbortReason::Conflict => {
                        stats.add_misspeculation();
                        // The checker's verdict causes the rollback + redo that
                        // the manager performs next; the wake edge points at the
                        // shard that issued it so per-shard critical-path
                        // attribution stays honest.
                        let shard = pass.conflict.map_or(0, |(_, s)| s);
                        manager_sink.emit(Event::Wake {
                            edge: WakeEdge::Checker,
                            src_tid: checker_shard_tid(shard),
                            seq: misspec_ordinal,
                        });
                        misspec_ordinal += 1;
                        if let Some((c, _)) = pass.conflict {
                            conflicts.push(c);
                        }
                        self.restore_with_retry(workload, &pass, &fault, &mut contained)?;
                        let give_up = self.config.degrade.is_some_and(|policy| {
                            let in_window = recent.iter().filter(|&&m| m).count() as u32;
                            in_window >= policy.max_misspeculations
                                || consecutive_failures >= policy.max_consecutive_failures
                        });
                        if give_up {
                            manager_sink.emit(Event::Degradation {
                                epoch: pass.checkpoint_epoch as u32,
                            });
                            if let Some(cell) = telemetry {
                                cell.add_degrade_event();
                            }
                            self.run_barrier_range(
                                workload,
                                pass.checkpoint_epoch,
                                num_epochs,
                                metrics,
                                &fault,
                                deadline,
                                &collector,
                                exec,
                            )?;
                            degraded = true;
                            degraded_at_epoch = Some(pass.checkpoint_epoch as u32);
                            break;
                        }
                        // Roll forward the misspeculated epochs with real
                        // barriers (§4.2.2), then speculate again.
                        self.run_barrier_range(
                            workload,
                            pass.checkpoint_epoch,
                            resume_epoch,
                            metrics,
                            &fault,
                            deadline,
                            &collector,
                            exec,
                        )?;
                        start_epoch = resume_epoch;
                    }
                }
            }
            Ok(())
        })();

        collector.absorb(manager_sink);
        let elapsed = start.elapsed();
        let trace = collector.finish();
        if let Err(err) = outcome {
            // Hard failure: deposit the trace with the telemetry cell so
            // the flight recorder can dump the window that led here.
            if let Some(cell) = telemetry {
                cell.fail(trace.as_ref());
            }
            return Err(err);
        }
        // Every region thread has joined (thread::scope or pool latch) by
        // this point, so the snapshot is exact per the RegionStats ordering
        // contract.
        let metrics = metrics.snapshot();
        if let Some(cell) = telemetry {
            cell.complete(contained.len() as u64, degraded, trace.as_ref());
        }
        Ok(SpecReport {
            stats: metrics.stats,
            elapsed,
            num_workers: self.config.num_workers,
            comparisons,
            conflicts,
            degraded,
            degraded_at_epoch,
            contained_faults: contained,
            metrics,
            trace,
        })
    }

    /// Restores the pass checkpoint, retrying once if the restore itself is
    /// scheduled to fail; a second failure is terminal.
    fn restore_with_retry<W: SpecWorkload>(
        &self,
        workload: &W,
        pass: &PassResult<W::State>,
        fault: &FaultPlan,
        contained: &mut Vec<ContainedFault>,
    ) -> Result<(), SpecError> {
        let epoch = pass.checkpoint_epoch as u32;
        if fault.restore_fails(epoch) {
            contained.push(ContainedFault::RestoreRetried { epoch });
            if fault.restore_fails(epoch) {
                return Err(SpecError::RestoreFailed { epoch });
            }
        }
        workload.restore(&pass.checkpoint_state);
        Ok(())
    }

    /// Executes `workload` entirely under non-speculative barriers — the
    /// `pthread_barrier` baseline of Figs. 5.1/5.2 and the NON-SPECULATIVE
    /// mode of Table 4.1.
    ///
    /// # Errors
    ///
    /// Configuration errors as for [`SpecCrossEngine::execute`];
    /// [`SpecError::TaskPanicked`] if a task panics (barrier mode has no
    /// rollback to absorb it); [`SpecError::WatchdogTimeout`] on deadline.
    pub fn execute_with_barriers<W: SpecWorkload>(
        &self,
        workload: &W,
    ) -> Result<SpecReport, SpecError> {
        self.execute_with_barriers_on(workload, &ScopedExecutor)
    }

    /// Like [`SpecCrossEngine::execute_with_barriers`], but running the
    /// worker gang on the given executor (see
    /// [`SpecCrossEngine::execute_on`]). Barrier mode has no checker, so the
    /// gang demand is `num_workers` alone.
    pub fn execute_with_barriers_on<W: SpecWorkload>(
        &self,
        workload: &W,
        exec: &dyn RegionExecutor,
    ) -> Result<SpecReport, SpecError> {
        self.validate()?;
        self.validate_capacity(exec, self.config.num_workers)?;
        let fault = self.config.fault_plan.clone().unwrap_or_default();
        let deadline = self.config.watchdog.map(|w| Instant::now() + w);
        let telemetry = self.config.telemetry.as_deref();
        if let Some(cell) = telemetry {
            cell.mark_running();
        }
        let owned_metrics;
        let metrics: &Metrics = match telemetry {
            Some(cell) => cell.metrics(),
            None => {
                owned_metrics = Metrics::new();
                &owned_metrics
            }
        };
        let collector = TraceCollector::with_region(
            self.config.trace_capacity.unwrap_or(0),
            self.config.region_id,
        );
        let start = Instant::now();
        let outcome = self.run_barrier_range(
            workload,
            0,
            workload.num_epochs(),
            metrics,
            &fault,
            deadline,
            &collector,
            exec,
        );
        let elapsed = start.elapsed();
        let trace = collector.finish();
        if let Err(err) = outcome {
            if let Some(cell) = telemetry {
                cell.fail(trace.as_ref());
            }
            return Err(err);
        }
        let metrics = metrics.snapshot();
        if let Some(cell) = telemetry {
            cell.complete(0, false, trace.as_ref());
        }
        Ok(SpecReport {
            stats: metrics.stats,
            elapsed,
            num_workers: self.config.num_workers,
            comparisons: 0,
            conflicts: Vec::new(),
            degraded: false,
            degraded_at_epoch: None,
            contained_faults: Vec::new(),
            metrics,
            trace,
        })
    }

    /// Profiles `workload` sequentially, returning the minimum cross-epoch
    /// dependence distance (§4.4). `window_epochs` bounds how far apart
    /// conflicting epochs may be to be observed (Table 5.3 used the whole
    /// program; a window of a few epochs is sufficient for every workload in
    /// the suite and keeps profiling linear).
    pub fn profile<W: SpecWorkload>(workload: &W, window_epochs: u32) -> ProfileReport {
        let mut profiler = DistanceProfiler::<S>::new(window_epochs);
        let mut recorder = SigRecorder::<S>::new();
        for epoch in 0..workload.num_epochs() {
            for task in 0..workload.num_tasks(epoch) {
                workload.execute_task(epoch, task, 0, &mut recorder);
                profiler.record_task(recorder.take());
            }
            profiler.epoch_boundary();
        }
        profiler.report()
    }

    /// One speculative attempt from `start_epoch`.
    #[allow(clippy::too_many_arguments)]
    fn speculative_pass<W: SpecWorkload>(
        &self,
        workload: &W,
        start_epoch: usize,
        metrics: &Metrics,
        fault: &FaultPlan,
        deadline: Option<Instant>,
        collector: &TraceCollector,
        exec: &dyn RegionExecutor,
    ) -> PassResult<W::State> {
        let stats = metrics.stats();
        let num_workers = self.config.num_workers;
        let num_epochs = workload.num_epochs();
        let mut prefix = Vec::with_capacity(num_epochs + 1);
        let mut acc = 0u64;
        for e in 0..num_epochs {
            prefix.push(acc);
            acc += workload.num_tasks(e) as u64;
        }
        prefix.push(acc);

        // One dedicated SPSC ring per (worker, checker shard):
        // single-writer/single-reader cache behaviour on the exit_task →
        // checker path (the channel this replaces serialized every worker
        // through one shared queue). Worker w owns `shards` producers;
        // checker shard k drains ring [w][k] of every worker.
        let shards = self.config.checker_shards;
        let mut check_txs: Vec<Vec<spsc::Producer<CheckRequest<S>>>> =
            Vec::with_capacity(num_workers);
        let mut rxs_by_shard: Vec<Vec<spsc::Consumer<CheckRequest<S>>>> = (0..shards)
            .map(|_| Vec::with_capacity(num_workers))
            .collect();
        for _ in 0..num_workers {
            let mut txs = Vec::with_capacity(shards);
            for shard_rxs in rxs_by_shard.iter_mut() {
                let (tx, rx) = spsc::Queue::with_capacity(CHECK_RING);
                txs.push(tx);
                shard_rxs.push(rx);
            }
            check_txs.push(txs);
        }
        let shared = PassShared {
            board: PositionBoard::new(num_workers),
            misspec: AtomicBool::new(false),
            conflict: Mutex::new(None),
            failure: Mutex::new(None),
            contained: Mutex::new(Vec::new()),
            checkpoint: Mutex::new((start_epoch, workload.snapshot())),
            sent: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            done_workers: AtomicUsize::new(0),
            prune_epoch: AtomicU32::new(0),
            sync: SyncPoint::new(num_workers),
            fault: fault.share(),
            deadline,
            prefix,
        };
        stats.add_checkpoint();
        let mut pass_sink = collector.sink(MANAGER_TID);
        pass_sink.emit(Event::Checkpoint {
            epoch: start_epoch as u32,
        });
        collector.absorb(pass_sink);

        let mut comparisons = 0;
        let mut checker_dead = false;
        {
            // Per-shard result slots stand in for the scoped-join return
            // values the pre-executor code used: initialized to "dead" so a
            // checker role that never ran to completion (however it died)
            // reads as a lost shard.
            let checker_results: Vec<Mutex<(u64, bool)>> =
                (0..shards).map(|_| Mutex::new((0, true))).collect();
            let shared_ref = &shared;
            let mut roles: Vec<Role<'_>> = Vec::with_capacity(shards + num_workers);
            // Checker roles, one per shard: each body may be killed by an
            // injected fault (or an organic bug); contain the unwind and
            // convert it into a cooperative abort so no worker spins on a
            // dead checker. The sink lives outside the unwind boundary so
            // events emitted before an injected death survive into the
            // trace. The consumer endpoints move into the role (they are
            // single-reader by construction). Losing *any* shard condemns
            // the pass: its share of the in-flight requests was never
            // verified.
            for ((shard, check_rxs), slot) in rxs_by_shard
                .into_iter()
                .enumerate()
                .zip(checker_results.iter())
            {
                roles.push(Box::new(move || {
                    let mut sink = collector.sink(checker_shard_tid(shard));
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        self.checker_loop(shared_ref, &check_rxs, shard, metrics, &mut sink)
                    }));
                    collector.absorb(sink);
                    *slot.lock() = match outcome {
                        Ok(count) => (count, false),
                        Err(_) => {
                            shared_ref.misspec.store(true, Ordering::Release);
                            (0, true)
                        }
                    };
                }));
            }
            // Worker roles. The whole driver runs under catch_unwind so a
            // panic anywhere in a worker poisons the pass instead of killing
            // the gang (and on a shared pool, neighbouring regions). Each
            // worker owns the producer endpoints of its per-shard
            // check-request rings.
            for (tid, check_txs) in check_txs.into_iter().enumerate() {
                let shared = &shared;
                roles.push(Box::new(move || {
                    let mut sink = collector.sink(tid);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        self.worker_pass(
                            workload,
                            shared,
                            &check_txs,
                            tid,
                            start_epoch,
                            metrics,
                            &mut sink,
                        );
                    }));
                    collector.absorb(sink);
                    if outcome.is_err() {
                        // A panic that escaped the per-task containment:
                        // engine-internal, so no task coordinate to blame.
                        shared.record_failure(AbortReason::TaskPanic {
                            epoch: u32::MAX,
                            task: u64::MAX,
                        });
                    }
                    shared.done_workers.fetch_add(1, Ordering::Release);
                    // A finished worker never gates anyone again.
                    shared.board.set_frontier(tid, u64::MAX);
                }));
            }
            let gang_stats = exec.run_gang(roles, Box::new(|| {}));
            if let Some(cell) = self.config.telemetry.as_deref() {
                cell.add_queue_wait(gang_stats.queue_wait_ns);
            }
            for slot in &checker_results {
                let (count, dead) = *slot.lock();
                comparisons += count;
                checker_dead |= dead;
            }
        }

        let (checkpoint_epoch, checkpoint_state) = {
            let mut guard = shared.checkpoint.lock();
            let epoch = guard.0;
            // Replace with a throwaway snapshot to move the state out.
            let state = std::mem::replace(&mut guard.1, workload.snapshot());
            (epoch, state)
        };

        let resume_epoch = (shared.board.max_epoch() as usize + 1)
            .max(start_epoch + 1)
            .min(num_epochs);
        let failure = shared.failure.lock().take();
        let conflict = *shared.conflict.lock();
        let contained = std::mem::take(&mut *shared.contained.lock());

        let end = if let Some(reason) = failure {
            PassEnd::Aborted {
                resume_epoch,
                reason,
            }
        } else if checker_dead {
            // Checker loss: every sent-but-unprocessed request is an
            // in-flight check that was never verified. Draining here is
            // counting — the channel died with the checker, and the pass is
            // condemned regardless of what the requests contained.
            let unprocessed = shared
                .sent
                .load(Ordering::Acquire)
                .saturating_sub(shared.processed.load(Ordering::Acquire));
            PassEnd::Aborted {
                resume_epoch,
                reason: AbortReason::CheckerLoss { unprocessed },
            }
        } else if shared.misspec.load(Ordering::Acquire) {
            PassEnd::Aborted {
                resume_epoch,
                reason: AbortReason::Conflict,
            }
        } else {
            PassEnd::Completed
        };

        PassResult {
            end,
            comparisons,
            conflict,
            checkpoint_epoch,
            checkpoint_state,
            contained,
        }
    }

    /// Executes one task body with fault injection and panic containment.
    /// Returns `false` if the pass must abort (the failure is recorded).
    #[allow(clippy::too_many_arguments)]
    fn contained_task<W: SpecWorkload>(
        &self,
        workload: &W,
        shared: &PassShared<W::State>,
        epoch: usize,
        task: usize,
        tid: usize,
        recorder: &mut dyn crate::workload::AccessRecorder,
        sink: &mut TraceSink,
    ) -> bool {
        let inject = match shared.fault.task_start(epoch as u32, task as u64, tid) {
            Some(TaskFault::Delay(d)) => {
                sink.emit(Event::FaultInjected {
                    kind: FaultKind::Delay(d.as_micros() as u64),
                    epoch: epoch as u32,
                    task: task as u64,
                });
                std::thread::sleep(d);
                false
            }
            Some(TaskFault::Panic) => {
                sink.emit(Event::FaultInjected {
                    kind: FaultKind::WorkerPanic,
                    epoch: epoch as u32,
                    task: task as u64,
                });
                true
            }
            None => false,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected fault: worker panic at epoch {epoch}, task {task}");
            }
            workload.execute_task(epoch, task, tid, recorder);
        }));
        if outcome.is_err() {
            shared.record_failure(AbortReason::TaskPanic {
                epoch: epoch as u32,
                task: task as u64,
            });
            return false;
        }
        true
    }

    /// Ships the worker's locally-buffered check requests into its SPSC
    /// ring. [`spsc::Producer::produce_batch`] would park unconditionally on
    /// a full ring, and a dead checker never frees slots — so the wait here
    /// interleaves non-blocking batch publishes with abort/deadline checks.
    /// Returns `false` if the pass aborted mid-flush (remaining requests are
    /// dropped; the raised `misspec` flag is what ends the checker, not the
    /// `sent`/`processed` ledger).
    fn flush_checks<St>(
        shared: &PassShared<St>,
        check_tx: &spsc::Producer<CheckRequest<S>>,
        batch: &mut Vec<CheckRequest<S>>,
    ) -> bool {
        let backoff = Backoff::new();
        while !batch.is_empty() {
            if check_tx.try_produce_batch(batch) > 0 {
                backoff.reset();
                continue;
            }
            if shared.misspec.load(Ordering::Acquire) {
                return false;
            }
            if backoff.is_completed() {
                if shared.deadline_passed() {
                    shared.record_failure(AbortReason::Timeout);
                    return false;
                }
                std::thread::yield_now();
            } else {
                backoff.snooze();
            }
        }
        true
    }

    /// The per-worker driver (Fig. 4.7's worker pseudo-code, plus the
    /// checkpoint rendezvous and misspeculation polling).
    #[allow(clippy::too_many_arguments)]
    fn worker_pass<W: SpecWorkload>(
        &self,
        workload: &W,
        shared: &PassShared<W::State>,
        check_txs: &[spsc::Producer<CheckRequest<S>>],
        tid: usize,
        start_epoch: usize,
        metrics: &Metrics,
        sink: &mut TraceSink,
    ) {
        let stats = metrics.stats();
        let num_workers = self.config.num_workers;
        let num_epochs = workload.num_epochs();
        let mut recorder = SigRecorder::<S>::new();
        let mut counting = CountingRecorder::default();
        // Local check-request buffers, one per checker shard: flushed at the
        // CHECK_BATCH threshold and at every epoch boundary, so they are
        // empty at each rendezvous (the checkpoint drain counts on every
        // `sent` request being in a ring by the time all workers have
        // arrived). A signature whose address span straddles shards is
        // cloned into every touched shard's buffer, and `sent` counts one
        // delivery per (request, shard) so the drain covers them all.
        let shard_map = ShardMap::new(self.config.checker_shards);
        let mut batches: Vec<Vec<CheckRequest<S>>> = (0..shard_map.shards())
            .map(|_| Vec::with_capacity(CHECK_BATCH))
            .collect();

        for epoch in start_epoch..num_epochs {
            if shared.misspec.load(Ordering::Acquire) {
                return;
            }
            let irreversible = workload.epoch_is_irreversible(epoch);
            let periodic = epoch > start_epoch
                && (epoch - start_epoch).is_multiple_of(self.config.checkpoint_every);
            if irreversible || periodic {
                // Synchronize, drain the checker, snapshot (§4.2.2).
                if !self.checkpoint_rendezvous(workload, shared, tid, epoch, metrics, sink) {
                    return; // aborted by misspeculation / fault / timeout
                }
            }

            // enter_barrier: cross the invocation boundary speculatively.
            shared.board.set_position(
                tid,
                Position {
                    epoch: epoch as u32,
                    task: 0,
                },
            );
            if tid == 0 {
                stats.add_epoch();
                sink.emit(Event::EpochBegin {
                    epoch: epoch as u32,
                });
            }

            let ntasks = workload.num_tasks(epoch);
            if irreversible {
                // Runs between two full synchronizations: plain parallel
                // execution, no signatures, then checkpoint.
                let mut task = tid;
                while task < ntasks {
                    sink.emit(Event::TaskDispatch {
                        epoch: epoch as u32,
                        task: task as u64,
                    });
                    if !self.contained_task(
                        workload,
                        shared,
                        epoch,
                        task,
                        tid,
                        &mut NullRecorder,
                        sink,
                    ) {
                        return;
                    }
                    stats.add_task();
                    sink.emit(Event::TaskRetire {
                        epoch: epoch as u32,
                        task: task as u64,
                    });
                    task += num_workers;
                }
                if !self.checkpoint_rendezvous(workload, shared, tid, epoch + 1, metrics, sink) {
                    return;
                }
                continue;
            }

            // Static elision (`pir::elide`): a proven epoch's tasks cannot
            // conflict with any compared task, so signature generation and
            // checker admission are both redundant. Such tasks run with a
            // counting recorder (metrics only) and never touch the check
            // rings; `sent` is untouched, so every drain / completion
            // invariant holds unchanged. Positions and frontiers still
            // advance exactly as on the full path — unproven tasks' snapshots
            // must keep observing this worker's progress.
            let proven = self.config.elide && workload.epoch_is_proven(epoch);
            let mut elided_tasks = 0u64;
            let mut elided_accesses = 0u64;

            let mut task = tid;
            let mut local_counter = 0u32;
            while task < ntasks {
                let global = shared.prefix[epoch] + task as u64;
                // enter_task: publish the frontier, then gate on the
                // speculative range.
                shared.board.set_frontier(tid, global);
                if let Some(distance) = self.config.spec_distance {
                    let mut stalled_at: Option<Instant> = None;
                    let backoff = Backoff::new();
                    while let Some(min) = shared.board.min_other_frontier(tid) {
                        // Strict: any still-unfinished task g1 satisfies
                        // g1 >= min, so global - g1 < distance — closer than
                        // the closest profiled dependence, hence safe.
                        if global < min.saturating_add(distance) {
                            break;
                        }
                        if shared.misspec.load(Ordering::Acquire) {
                            return;
                        }
                        if stalled_at.is_none() {
                            stalled_at = Some(Instant::now());
                            stats.add_stall();
                        }
                        if backoff.is_completed() {
                            if shared.deadline_passed() {
                                shared.record_failure(AbortReason::Timeout);
                                return;
                            }
                            std::thread::yield_now();
                        } else {
                            backoff.snooze();
                        }
                    }
                    if let Some(since) = stalled_at {
                        metrics.record_stall_wait(since.elapsed().as_nanos() as u64);
                    }
                }
                if shared.misspec.load(Ordering::Acquire) {
                    return;
                }
                let pos = Position {
                    epoch: epoch as u32,
                    task: local_counter,
                };
                shared.board.set_position(tid, pos);

                sink.emit(Event::TaskDispatch {
                    epoch: epoch as u32,
                    task: task as u64,
                });
                if proven {
                    if !self.contained_task(workload, shared, epoch, task, tid, &mut counting, sink)
                    {
                        return;
                    }
                    stats.add_task();
                    sink.emit(Event::TaskRetire {
                        epoch: epoch as u32,
                        task: task as u64,
                    });
                    // exit_task (elided): the static proof stands in for the
                    // admission this task would otherwise have queued.
                    let accesses = counting.take();
                    if accesses > 0 {
                        stats.add_elided_signature();
                        stats.add_elided_admit();
                        stats.add_proven_accesses(accesses);
                        elided_tasks += 1;
                        elided_accesses += accesses;
                    }
                } else {
                    let snapshot = shared.board.snapshot();
                    if !self.contained_task(workload, shared, epoch, task, tid, &mut recorder, sink)
                    {
                        return;
                    }
                    stats.add_task();
                    sink.emit(Event::TaskRetire {
                        epoch: epoch as u32,
                        task: task as u64,
                    });

                    // exit_task: buffer the signature for its checker shard(s);
                    // a full buffer is published to that shard's ring as one
                    // batch. Straddling signatures fan out whole to every shard
                    // their span touches (the merge rule: all must admit).
                    let sig = recorder.take();
                    if !sig.is_empty() {
                        stats.add_check_request();
                        let set = shard_map.shards_for_span(sig.addr_span());
                        let mut remaining = set.len();
                        let mut req = Some(CheckRequest {
                            tid,
                            pos,
                            snapshot,
                            sig,
                        });
                        for shard in set.iter() {
                            remaining -= 1;
                            // The last touched shard takes the original; only
                            // genuine straddlers pay for clones.
                            let r = if remaining == 0 {
                                req.take().expect("one request per shard set")
                            } else {
                                req.as_ref().expect("one request per shard set").clone()
                            };
                            shared.sent.fetch_add(1, Ordering::Release);
                            batches[shard].push(r);
                            if batches[shard].len() >= CHECK_BATCH
                                && !Self::flush_checks(
                                    shared,
                                    &check_txs[shard],
                                    &mut batches[shard],
                                )
                            {
                                return;
                            }
                        }
                    }
                }
                local_counter += 1;
                // Advance the position past the completed task so that
                // later-starting tasks' snapshots observe it as retired;
                // leaving it at the started coordinate would make every
                // finished-but-idle worker look like a racing overlap.
                shared.board.set_position(
                    tid,
                    Position {
                        epoch: epoch as u32,
                        task: local_counter,
                    },
                );
                task += num_workers;
            }
            // Epoch boundary: drain the local buffers so the rendezvous /
            // completion invariants hold (every `sent` request is in a ring
            // whenever this worker is parked or finished).
            for (shard, batch) in batches.iter_mut().enumerate() {
                if !Self::flush_checks(shared, &check_txs[shard], batch) {
                    return;
                }
            }
            if elided_tasks > 0 {
                // Once per (worker, epoch): how much admission work the
                // static proof saved on this worker.
                sink.emit(Event::CheckElided {
                    epoch: epoch as u32,
                    tasks: elided_tasks,
                    accesses: elided_accesses,
                });
            }
            if tid == 0 {
                sink.emit(Event::EpochEnd {
                    epoch: epoch as u32,
                });
            }
        }
        // send_end_token: completion is signalled via `done_workers` by the
        // caller; nothing further to do here.
    }

    /// All-worker rendezvous: drain the checker, then have the serial worker
    /// snapshot the workload as the new checkpoint. Returns `false` if the
    /// pass was aborted (misspeculation, fault, or timeout).
    fn checkpoint_rendezvous<W: SpecWorkload>(
        &self,
        workload: &W,
        shared: &PassShared<W::State>,
        tid: usize,
        epoch: usize,
        metrics: &Metrics,
        sink: &mut TraceSink,
    ) -> bool {
        let stats = metrics.stats();
        // While parked here this worker's frontier must not gate leaders
        // forever: everything below `epoch` is finished, so advertise the
        // epoch's first global task index (every not-yet-arrived worker's
        // next task is below it, so none of them can be gated by us).
        shared.board.set_frontier(tid, shared.prefix[epoch]);
        sink.emit(Event::BarrierEnter {
            epoch: epoch as u32,
        });
        let entered = Instant::now();
        let serial = match shared.sync.wait(tid, &shared.misspec, shared.deadline) {
            WaitOutcome::Released(serial) => serial,
            WaitOutcome::Aborted => return false,
            WaitOutcome::TimedOut => {
                shared.record_failure(AbortReason::Timeout);
                return false;
            }
        };
        if serial {
            // Wait for the checker to finish all requests before the
            // checkpoint, so the snapshot is known-good (§4.2.2).
            let backoff = Backoff::new();
            while shared.processed.load(Ordering::Acquire) < shared.sent.load(Ordering::Acquire) {
                if shared.misspec.load(Ordering::Acquire) {
                    break;
                }
                if backoff.is_completed() {
                    if shared.deadline_passed() {
                        shared.record_failure(AbortReason::Timeout);
                        break;
                    }
                    std::thread::yield_now();
                } else {
                    backoff.snooze();
                }
            }
            if !shared.misspec.load(Ordering::Acquire) {
                if shared.fault.snapshot_fails(epoch as u32) {
                    sink.emit(Event::FaultInjected {
                        kind: FaultKind::SnapshotFail,
                        epoch: epoch as u32,
                        task: 0,
                    });
                    // Keep the previous checkpoint: correctness is
                    // unaffected, a later rollback just rewinds further.
                    shared
                        .contained
                        .lock()
                        .push(ContainedFault::SnapshotSkipped {
                            epoch: epoch as u32,
                        });
                } else {
                    *shared.checkpoint.lock() = (epoch, workload.snapshot());
                    stats.add_checkpoint();
                    sink.emit(Event::Checkpoint {
                        epoch: epoch as u32,
                    });
                    // Everything below this epoch is durably checkpointed
                    // and fully checked (the drain above saw processed ==
                    // sent): let the checker truncate its logs.
                    shared.prune_epoch.store(epoch as u32, Ordering::Release);
                }
            }
        }
        let released = matches!(
            shared.sync.wait(tid, &shared.misspec, shared.deadline),
            WaitOutcome::Released(_)
        );
        if released {
            let wait_ns = entered.elapsed().as_nanos() as u64;
            metrics.record_barrier_wait(wait_ns);
            sink.emit(Event::BarrierLeave {
                epoch: epoch as u32,
                wait_ns,
            });
            let releaser = shared.sync.last_releaser();
            if releaser != tid {
                sink.emit(Event::Wake {
                    edge: WakeEdge::Checkpoint,
                    src_tid: releaser,
                    seq: epoch as u64,
                });
            }
        }
        released
    }

    /// Folds the checker's fast-path counters accumulated since the last
    /// summary into `stats` and the trace. Called at prune boundaries and on
    /// checker exit, so the flight-recorder rings see one low-volume record
    /// per checkpoint interval instead of one per admit.
    fn fold_checker_summary(
        state: &CheckerState<S>,
        epoch: u32,
        reported_skips: &mut u64,
        reported_comparisons: &mut u64,
        stats: &RegionStats,
        sink: &mut TraceSink,
    ) {
        let skips = state.epoch_skips() - *reported_skips;
        let comparisons = state.comparisons() - *reported_comparisons;
        if skips == 0 && comparisons == 0 {
            return;
        }
        *reported_skips = state.epoch_skips();
        *reported_comparisons = state.comparisons();
        stats.add_checker_epoch_skips(skips);
        sink.emit(Event::CheckerSummary {
            epoch,
            skips,
            comparisons,
        });
    }

    /// One checker-shard thread (Fig. 4.7's checker pseudo-code, restricted
    /// to the requests routed to `shard`). Drains every worker's SPSC ring
    /// for this shard in bursts and admits each request against the shard's
    /// own epoch-bucketed log. Because routing delivers the *whole*
    /// signature to every shard its span touches, this shard's verdicts are
    /// exactly the unsharded checker's verdicts restricted to its requests.
    /// Returns the number of signature comparisons performed. May panic when
    /// the fault plan schedules a checker death; the spawn wrapper contains
    /// it.
    fn checker_loop<St>(
        &self,
        shared: &PassShared<St>,
        check_rxs: &[spsc::Consumer<CheckRequest<S>>],
        shard: usize,
        metrics: &Metrics,
        sink: &mut TraceSink,
    ) -> u64 {
        let stats = metrics.stats();
        let num_workers = self.config.num_workers;
        let mut state =
            CheckerState::<S>::with_aggregates(num_workers, self.config.epoch_summaries);
        let backoff = Backoff::new();
        let mut picked: u64 = 0;
        let mut last_pruned: u32 = 0;
        let mut reported_skips: u64 = 0;
        let mut reported_comparisons: u64 = 0;
        let mut inbox: Vec<CheckRequest<S>> = Vec::with_capacity(CHECK_PICKUP);
        'run: loop {
            // Apply a new checkpoint watermark before the next burst. The
            // serial worker publishes it only after the drain, so every
            // request below it has already been admitted (never pruned
            // unchecked).
            let watermark = shared.prune_epoch.load(Ordering::Acquire);
            if watermark > last_pruned {
                state.retire_before(watermark);
                last_pruned = watermark;
                Self::fold_checker_summary(
                    &state,
                    watermark,
                    &mut reported_skips,
                    &mut reported_comparisons,
                    stats,
                    sink,
                );
            }
            let mut drained = 0usize;
            for rx in check_rxs {
                drained += rx.consume_batch(&mut inbox, CHECK_PICKUP);
                for req in inbox.drain(..) {
                    backoff.reset();
                    // SPSC produce → consume: the worker's exit_task flush is
                    // the causal source of this pickup.
                    sink.emit(Event::Wake {
                        edge: WakeEdge::Queue,
                        src_tid: req.tid,
                        seq: picked,
                    });
                    picked += 1;
                    let mut forced = false;
                    let check_fault =
                        shared
                            .fault
                            .check(req.pos.epoch, req.pos.task as u64, req.tid);
                    if let Some(f) = check_fault {
                        let kind = match f {
                            CheckFault::ForceConflict => FaultKind::FalsePositive,
                            CheckFault::Stall(d) => FaultKind::CheckerStall(d.as_millis() as u64),
                            CheckFault::Die => FaultKind::CheckerDeath,
                        };
                        sink.emit(Event::FaultInjected {
                            kind,
                            epoch: req.pos.epoch,
                            task: req.pos.task as u64,
                        });
                    }
                    match check_fault {
                        Some(CheckFault::Stall(d)) => {
                            // Sleep in slices so an abort — or the watchdog
                            // expiring — during the injected stall still ends
                            // the pass promptly instead of waiting it out.
                            let until = Instant::now() + d;
                            loop {
                                if shared.misspec.load(Ordering::Acquire) {
                                    break;
                                }
                                if shared.deadline_passed() {
                                    shared.record_failure(AbortReason::Timeout);
                                    break;
                                }
                                let now = Instant::now();
                                if now >= until {
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(5).min(until - now));
                            }
                            if shared.misspec.load(Ordering::Acquire) {
                                break 'run;
                            }
                        }
                        Some(CheckFault::Die) => {
                            panic!("injected fault: checker death at epoch {}", req.pos.epoch)
                        }
                        Some(CheckFault::ForceConflict) => forced = true,
                        None => {}
                    }
                    let injected = forced
                        || self
                            .config
                            .inject_conflict_at_epoch
                            .is_some_and(|e| req.pos.epoch == e);
                    let conflict = if injected {
                        Some(Conflict {
                            earlier: (req.tid, req.pos),
                            later: (req.tid, req.pos),
                        })
                    } else {
                        state.admit(req)
                    };
                    shared.processed.fetch_add(1, Ordering::Release);
                    if let Some(c) = conflict {
                        // First-wins across shard threads: the pass is
                        // condemned once, by whichever shard saw a conflict
                        // first; a concurrent verdict from another shard is
                        // redundant on an already-doomed pass and dropped.
                        let mut slot = shared.conflict.lock();
                        if slot.is_none() {
                            *slot = Some((c, shard));
                            sink.emit(Event::Misspeculation {
                                earlier_tid: c.earlier.0,
                                earlier_epoch: c.earlier.1.epoch,
                                earlier_task: c.earlier.1.task as u64,
                                later_tid: c.later.0,
                                later_epoch: c.later.1.epoch,
                                later_task: c.later.1.task as u64,
                            });
                        }
                        drop(slot);
                        shared.misspec.store(true, Ordering::Release);
                        break 'run;
                    }
                }
            }
            if drained == 0 {
                if shared.misspec.load(Ordering::Acquire) {
                    break;
                }
                if shared.done_workers.load(Ordering::Acquire) == num_workers
                    && shared.processed.load(Ordering::Acquire)
                        == shared.sent.load(Ordering::Acquire)
                {
                    break;
                }
                if backoff.is_completed() {
                    if shared.deadline_passed() {
                        // The checker doubles as watchdog: if workers
                        // are stuck somewhere uninstrumented, condemn
                        // the pass rather than idle forever.
                        shared.record_failure(AbortReason::Timeout);
                        break;
                    }
                    std::thread::yield_now();
                } else {
                    backoff.snooze();
                }
            }
        }
        // Whatever accrued since the last checkpoint still needs surfacing.
        Self::fold_checker_summary(
            &state,
            last_pruned,
            &mut reported_skips,
            &mut reported_comparisons,
            stats,
            sink,
        );
        // Pass-scoped shard census: one row per shard per pass, on the
        // shard's own timeline (shard 0 of a single-shard run lands on the
        // classic checker tid).
        sink.emit(Event::CheckerShard {
            shard: shard as u32,
            shards: self.config.checker_shards as u32,
            requests: picked,
        });
        state.comparisons()
    }

    /// Executes epochs `[from, to)` under non-speculative barriers, with the
    /// same task-level panic containment as the speculative path — but here
    /// there is no checkpoint to rescue a panicking task, so the first panic
    /// fails the range with [`SpecError::TaskPanicked`].
    #[allow(clippy::too_many_arguments)]
    fn run_barrier_range<W: SpecWorkload>(
        &self,
        workload: &W,
        from: usize,
        to: usize,
        metrics: &Metrics,
        fault: &FaultPlan,
        deadline: Option<Instant>,
        collector: &TraceCollector,
        exec: &dyn RegionExecutor,
    ) -> Result<(), SpecError> {
        if from >= to {
            return Ok(());
        }
        let stats = metrics.stats();
        let num_workers = self.config.num_workers;
        let barrier = SpinBarrier::new(num_workers);
        let abort = AtomicBool::new(false);
        let failure: Mutex<Option<SpecError>> = Mutex::new(None);
        let fail = |err: SpecError| {
            let mut slot = failure.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
            drop(slot);
            abort.store(true, Ordering::Release);
        };
        {
            let mut roles: Vec<Role<'_>> = Vec::with_capacity(num_workers);
            for tid in 0..num_workers {
                let (barrier, abort, fail, fault) = (&barrier, &abort, &fail, fault);
                roles.push(Box::new(move || {
                    let mut sink = collector.sink(tid);
                    for epoch in from..to {
                        if tid == 0 {
                            stats.add_epoch();
                            sink.emit(Event::EpochBegin {
                                epoch: epoch as u32,
                            });
                        }
                        let ntasks = workload.num_tasks(epoch);
                        let mut task = tid;
                        while task < ntasks {
                            if abort.load(Ordering::Acquire) {
                                collector.absorb(sink);
                                return;
                            }
                            let inject = match fault.task_start(epoch as u32, task as u64, tid) {
                                Some(TaskFault::Delay(d)) => {
                                    sink.emit(Event::FaultInjected {
                                        kind: FaultKind::Delay(d.as_micros() as u64),
                                        epoch: epoch as u32,
                                        task: task as u64,
                                    });
                                    std::thread::sleep(d);
                                    false
                                }
                                Some(TaskFault::Panic) => {
                                    sink.emit(Event::FaultInjected {
                                        kind: FaultKind::WorkerPanic,
                                        epoch: epoch as u32,
                                        task: task as u64,
                                    });
                                    true
                                }
                                None => false,
                            };
                            sink.emit(Event::TaskDispatch {
                                epoch: epoch as u32,
                                task: task as u64,
                            });
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                if inject {
                                    panic!(
                                        "injected fault: worker panic at epoch {epoch}, task {task} (barrier mode)"
                                    );
                                }
                                workload.execute_task(epoch, task, tid, &mut NullRecorder);
                            }));
                            if outcome.is_err() {
                                fail(SpecError::TaskPanicked {
                                    epoch: epoch as u32,
                                    task: task as u64,
                                });
                                collector.absorb(sink);
                                return;
                            }
                            stats.add_task();
                            sink.emit(Event::TaskRetire {
                                epoch: epoch as u32,
                                task: task as u64,
                            });
                            task += num_workers;
                        }
                        sink.emit(Event::BarrierEnter {
                            epoch: epoch as u32,
                        });
                        let entered = Instant::now();
                        match barrier.wait_abortable(tid, abort, deadline) {
                            BarrierWait::Released(_) => {
                                let wait_ns = entered.elapsed().as_nanos() as u64;
                                metrics.record_barrier_wait(wait_ns);
                                sink.emit(Event::BarrierLeave {
                                    epoch: epoch as u32,
                                    wait_ns,
                                });
                                let releaser = barrier.last_releaser();
                                if releaser != tid {
                                    sink.emit(Event::Wake {
                                        edge: WakeEdge::Barrier,
                                        src_tid: releaser,
                                        seq: epoch as u64,
                                    });
                                }
                            }
                            BarrierWait::Aborted => {
                                collector.absorb(sink);
                                return;
                            }
                            BarrierWait::TimedOut => {
                                fail(SpecError::WatchdogTimeout);
                                collector.absorb(sink);
                                return;
                            }
                        }
                    }
                    collector.absorb(sink);
                }));
            }
            let gang_stats = exec.run_gang(roles, Box::new(|| {}));
            if let Some(cell) = self.config.telemetry.as_deref() {
                cell.add_queue_wait(gang_stats.queue_wait_ns);
            }
        }
        match failure.into_inner() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}
