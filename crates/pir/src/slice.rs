//! `computeAddr` generation by reverse program slicing (Alg. 3, §3.3.4).
//!
//! DOMORE's scheduler must know, before dispatching an iteration, every
//! shared address the iteration will touch. The compiler obtains that by
//! slicing backwards from the address operands of the inner-loop body's
//! memory accesses: the slice is the minimal set of body statements whose
//! re-execution (with the loop's induction variables bound) reproduces the
//! addresses. Three abort conditions from the thesis are enforced:
//!
//! 1. **Side effects** — the slice may not contain stores or side-effecting
//!    calls ("the DOMORE transformation does not handle `computeAddr`
//!    functions with side-effects").
//! 2. **Self-invalidation** — the slice may not *read* an array the region
//!    itself writes (the Fig. 4.1 pathology: index array `C` updated by
//!    loop `L2`), since the inspector runs ahead of those writes.
//! 3. **Performance guard** — if the slice is heavy relative to the worker
//!    body, the scheduler would serialize the region and the transformation
//!    reports itself inapplicable.

use std::collections::HashSet;
use std::fmt;

use crate::analysis::collect_accesses;
use crate::ir::{ArrayId, Expr, Program, Stmt, StmtId, VarId};

/// Why `computeAddr` extraction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// The slice would contain a store or a side-effecting call.
    SideEffectInSlice(StmtId),
    /// The slice reads an array the region writes, so addresses cannot be
    /// computed ahead of execution (DOMORE inapplicable; SPECCROSS is the
    /// thesis' answer, Fig. 4.1).
    SliceReadsRegionWrites(ArrayId),
    /// The slice's weight exceeds the worker body's: the scheduler would
    /// bottleneck the region (§3.3.4's performance guard).
    TooHeavy {
        /// Estimated slice weight.
        slice_weight: u64,
        /// Estimated worker-body weight.
        worker_weight: u64,
    },
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::SideEffectInSlice(s) => {
                write!(
                    f,
                    "address slice would include side-effecting statement #{}",
                    s.0
                )
            }
            SliceError::SliceReadsRegionWrites(a) => write!(
                f,
                "address slice reads array #{} which the region writes",
                a.0
            ),
            SliceError::TooHeavy {
                slice_weight,
                worker_weight,
            } => write!(
                f,
                "address slice weight {slice_weight} exceeds worker weight {worker_weight}"
            ),
        }
    }
}

impl std::error::Error for SliceError {}

/// One address the slice computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrTarget {
    /// A direct load/store: `array[index]`.
    Element {
        /// Array accessed.
        array: ArrayId,
        /// Index expression, evaluated after the slice runs.
        index: Expr,
    },
    /// An opaque call touching the element its first scalar argument
    /// selects (`selector % len`, the interpreter's call semantics);
    /// `selector = None` means argument-less (element 0).
    CallElement {
        /// Array the call may touch.
        array: ArrayId,
        /// First-argument expression, if any.
        selector: Option<Expr>,
    },
}

impl AddrTarget {
    /// The array this target addresses.
    pub fn array(&self) -> ArrayId {
        match self {
            AddrTarget::Element { array, .. } | AddrTarget::CallElement { array, .. } => *array,
        }
    }
}

/// The extracted `computeAddr` function.
#[derive(Debug, Clone)]
pub struct AddrSlice {
    /// Body statements to (re-)execute, in program order, before evaluating
    /// the targets. All are pure (assignments and loads of region-read-only
    /// arrays).
    pub stmts: Vec<StmtId>,
    /// Address targets to evaluate after the slice runs.
    pub targets: Vec<AddrTarget>,
    /// Estimated weight of the slice (scheduler-side work per iteration).
    pub slice_weight: u64,
    /// Estimated weight of the worker body per iteration.
    pub worker_weight: u64,
}

/// Rough per-statement cost estimate used by the performance guard.
fn weight(program: &Program, id: StmtId) -> u64 {
    match program.stmt(id) {
        Stmt::Assign { .. } => 1,
        Stmt::Load { .. } | Stmt::Store { .. } => 2,
        Stmt::Call { .. } => 10,
        Stmt::If { .. } => 1,
        Stmt::For { .. } => 2,
    }
}

/// Extracts the `computeAddr` slice for the inner loop at `inner_loop`.
///
/// `region_writes` is the set of arrays written anywhere in the enclosing
/// region (used for the self-invalidation check).
///
/// # Errors
///
/// Returns a [`SliceError`] on any of the three abort conditions.
///
/// # Panics
///
/// Panics if `inner_loop` is not a `For` statement.
pub fn compute_addr_slice(
    program: &Program,
    inner_loop: StmtId,
    region_writes: &HashSet<ArrayId>,
) -> Result<AddrSlice, SliceError> {
    let Stmt::For { body, .. } = program.stmt(inner_loop) else {
        panic!("computeAddr extraction targets a For statement");
    };
    let body_stmts = program.subtrees(body);
    let body_set: HashSet<StmtId> = body_stmts.iter().copied().collect();

    // Targets: every shared access of the body (a superset of the accesses
    // participating in cross-iteration dependences — always sound).
    let accesses = collect_accesses(program, body);
    let mut targets = Vec::new();
    let mut needed: Vec<VarId> = Vec::new();
    for a in &accesses {
        match &a.index {
            Some(idx) => {
                targets.push(AddrTarget::Element {
                    array: a.array,
                    index: idx.clone(),
                });
                idx.vars(&mut needed);
            }
            None => {
                // Call access: touched element selected by the first
                // scalar argument (the interpreter's call semantics).
                let selector = match program.stmt(a.stmt) {
                    Stmt::Call { args, .. } => args.first().cloned(),
                    _ => None,
                };
                if let Some(sel) = &selector {
                    sel.vars(&mut needed);
                }
                targets.push(AddrTarget::CallElement {
                    array: a.array,
                    selector,
                });
            }
        }
    }

    // Reverse slice within the body: walk defs of needed variables,
    // accumulating their own uses, plus control conditions of enclosing
    // compounds.
    let mut needed: HashSet<VarId> = needed.into_iter().collect();
    let mut in_slice: HashSet<StmtId> = HashSet::new();
    loop {
        let mut changed = false;
        for &id in &body_stmts {
            if in_slice.contains(&id) {
                continue;
            }
            let defines_needed = match program.stmt(id) {
                Stmt::Assign { var, .. } | Stmt::Load { var, .. } => needed.contains(var),
                Stmt::For { var, .. } => needed.contains(var),
                _ => false,
            };
            // Compound statements controlling slice members are needed for
            // their conditions.
            let controls_member = program.children(id).iter().any(|c| in_slice.contains(c))
                && matches!(program.stmt(id), Stmt::If { .. } | Stmt::For { .. });
            if defines_needed || controls_member {
                in_slice.insert(id);
                let mut uses = Vec::new();
                match program.stmt(id) {
                    Stmt::Assign { expr, .. } => expr.vars(&mut uses),
                    Stmt::Load { index, .. } => index.vars(&mut uses),
                    Stmt::If { cond, .. } => cond.vars(&mut uses),
                    Stmt::For { from, to, .. } => {
                        from.vars(&mut uses);
                        to.vars(&mut uses);
                    }
                    _ => {}
                }
                for v in uses {
                    needed.insert(v);
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Abort conditions 1 and 2.
    for &id in &body_stmts {
        if !in_slice.contains(&id) {
            continue;
        }
        match program.stmt(id) {
            Stmt::Store { .. } => return Err(SliceError::SideEffectInSlice(id)),
            Stmt::Call { effect, .. } if effect.side_effecting || !effect.may_write.is_empty() => {
                return Err(SliceError::SideEffectInSlice(id));
            }
            Stmt::Load { array, .. } if region_writes.contains(array) => {
                return Err(SliceError::SliceReadsRegionWrites(*array));
            }
            _ => {}
        }
    }

    // Abort condition 3: the performance guard. The scheduler re-executes
    // the slice for every iteration of every worker, so it must stay well
    // below the kernel's weight or it serializes the region.
    let slice_weight: u64 = in_slice.iter().map(|&s| weight(program, s)).sum();
    let worker_weight: u64 = body_stmts.iter().map(|&s| weight(program, s)).sum();
    if slice_weight * 2 > worker_weight {
        return Err(SliceError::TooHeavy {
            slice_weight,
            worker_weight,
        });
    }

    // Keep program (preorder) order for execution.
    let stmts: Vec<StmtId> = body_stmts
        .iter()
        .copied()
        .filter(|s| in_slice.contains(s) && body_set.contains(s))
        .collect();
    Ok(AddrSlice {
        stmts,
        targets,
        slice_weight,
        worker_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CallEffect, ProgramBuilder};

    #[test]
    fn direct_index_needs_empty_slice() {
        // for j { t = C[j]; C[j] = t+1 }: addresses depend only on j.
        let mut b = ProgramBuilder::new();
        let c = b.array("C", 8);
        let j = b.var("j");
        let t = b.var("t");
        let inner = b.for_loop(j, Expr::Const(0), Expr::Const(8), |b| {
            b.load(t, c, Expr::Var(j));
            b.store(c, Expr::Var(j), Expr::add(Expr::Var(t), Expr::Const(1)));
        });
        let p = b.finish();
        let slice = compute_addr_slice(&p, inner, &HashSet::from([c])).unwrap();
        assert!(slice.stmts.is_empty(), "j is bound by the harness");
        assert_eq!(slice.targets.len(), 2);
    }

    #[test]
    fn indirect_index_pulls_the_index_load() {
        // for j { k = idx[j]; A[k] += 1 }: slice = the idx load.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let idx = b.array("idx", 8);
        let j = b.var("j");
        let k = b.var("k");
        let t = b.var("t");
        let mut idx_load = StmtId(0);
        let inner = b.for_loop(j, Expr::Const(0), Expr::Const(8), |b| {
            idx_load = b.load(k, idx, Expr::Var(j));
            b.load(t, a, Expr::Var(k));
            b.store(a, Expr::Var(k), Expr::add(Expr::Var(t), Expr::Const(1)));
        });
        let p = b.finish();
        let slice = compute_addr_slice(&p, inner, &HashSet::from([a])).unwrap();
        assert_eq!(slice.stmts, vec![idx_load]);
    }

    #[test]
    fn slice_reading_region_written_array_aborts() {
        // The Fig. 4.1 pathology: the index array is written by the region.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let idx = b.array("idx", 8);
        let j = b.var("j");
        let k = b.var("k");
        let inner = b.for_loop(j, Expr::Const(0), Expr::Const(8), |b| {
            b.load(k, idx, Expr::Var(j));
            b.store(a, Expr::Var(k), Expr::Var(j));
        });
        let p = b.finish();
        let err = compute_addr_slice(&p, inner, &HashSet::from([a, idx])).unwrap_err();
        assert_eq!(err, SliceError::SliceReadsRegionWrites(idx));
        assert!(err.to_string().contains("which the region writes"));
    }

    #[test]
    fn side_effecting_call_in_slice_aborts() {
        // The address depends on a value produced by a writing call.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let scratch = b.array("S", 8);
        let j = b.var("j");
        let k = b.var("k");
        let inner = b.for_loop(j, Expr::Const(0), Expr::Const(8), |b| {
            b.call(
                "advance",
                vec![Expr::Var(j)],
                CallEffect {
                    may_write: vec![scratch],
                    ..CallEffect::default()
                },
            );
            b.load(k, scratch, Expr::Var(j));
            b.store(a, Expr::Var(k), Expr::Var(j));
        });
        let p = b.finish();
        // The scratch load is in the slice and scratch is region-written.
        let err = compute_addr_slice(&p, inner, &HashSet::from([a, scratch])).unwrap_err();
        assert!(matches!(
            err,
            SliceError::SliceReadsRegionWrites(_) | SliceError::SideEffectInSlice(_)
        ));
    }

    #[test]
    fn heavy_slice_trips_the_performance_guard() {
        // Address computed through a chain of assignments much heavier
        // than the single store the worker performs.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 64);
        let j = b.var("j");
        let vars: Vec<_> = (0..20).map(|k| b.var(&format!("v{k}"))).collect();
        let inner = b.for_loop(j, Expr::Const(0), Expr::Const(8), |b| {
            let mut prev = Expr::Var(j);
            for &v in &vars {
                b.assign(v, Expr::add(prev.clone(), Expr::Const(1)));
                prev = Expr::Var(v);
            }
            b.store(a, Expr::rem(prev, Expr::Const(64)), Expr::Const(1));
        });
        let p = b.finish();
        let err = compute_addr_slice(&p, inner, &HashSet::from([a])).unwrap_err();
        assert!(matches!(err, SliceError::TooHeavy { .. }));
    }

    #[test]
    fn control_conditions_join_the_slice() {
        // The store's address var is conditionally reassigned: the if and
        // its condition's def join the slice.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let flags = b.array("F", 8);
        let j = b.var("j");
        let k = b.var("k");
        let f = b.var("f");
        let inner = b.for_loop(j, Expr::Const(0), Expr::Const(8), |b| {
            b.load(f, flags, Expr::Var(j));
            b.assign(k, Expr::Var(j));
            b.if_else(
                Expr::Var(f),
                |b| {
                    b.assign(k, Expr::Const(0));
                },
                |_| {},
            );
            b.store(a, Expr::Var(k), Expr::Const(1));
            // A substantial kernel call keeps the performance guard quiet.
            b.call(
                "work",
                vec![Expr::Var(k)],
                CallEffect {
                    may_read: vec![a],
                    ..CallEffect::default()
                },
            );
        });
        let p = b.finish();
        let slice = compute_addr_slice(&p, inner, &HashSet::from([a])).unwrap();
        assert_eq!(slice.stmts.len(), 4, "flag load, both assigns, the if");
    }

    #[test]
    fn call_targets_are_opaque() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let j = b.var("j");
        let inner = b.for_loop(j, Expr::Const(0), Expr::Const(8), |b| {
            b.call(
                "update",
                vec![Expr::Var(j)],
                CallEffect {
                    may_write: vec![a],
                    ..CallEffect::default()
                },
            );
        });
        let p = b.finish();
        let slice = compute_addr_slice(&p, inner, &HashSet::from([a])).unwrap();
        assert_eq!(
            slice.targets,
            vec![AddrTarget::CallElement {
                array: a,
                selector: Some(Expr::Var(j)),
            }]
        );
    }
}
