//! A particle-on-grid simulation on the DOMORE runtime — the §5.4
//! FLUIDANIMATE shape, hand-written against the library API.
//!
//! Each frame scatters particle influence into grid cells whose ownership
//! is irregular (a cell's neighbourhood depends on runtime particle
//! positions), so static analysis cannot prove invocations independent.
//! DOMORE's scheduler observes the actual addresses per iteration and
//! synchronizes exactly the conflicting ones, letting frames overlap.
//!
//! Run with: `cargo run --example particle_sim`

use crossinvoc::domore::prelude::*;
use crossinvoc::runtime::hash::splitmix64;
use crossinvoc::runtime::SharedSlice;

const SIDE: usize = 24;
const CELLS: usize = SIDE * SIDE;
const FRAMES: usize = 30;

/// One frame per invocation; one cell update per iteration. Each cell
/// mixes its 4-neighbourhood into itself — the scatter/gather pattern of
/// the SPH force phase.
struct ParticleGrid {
    field: SharedSlice<i64>,
}

impl ParticleGrid {
    fn new() -> Self {
        Self {
            field: SharedSlice::from_vec(
                (0..CELLS as i64)
                    .map(|c| splitmix64(c as u64) as i64)
                    .collect(),
            ),
        }
    }

    fn neighbourhood(cell: usize) -> Vec<usize> {
        let (r, c) = (cell / SIDE, cell % SIDE);
        let mut out = vec![cell];
        if r > 0 {
            out.push(cell - SIDE);
        }
        if r + 1 < SIDE {
            out.push(cell + SIDE);
        }
        if c > 0 {
            out.push(cell - 1);
        }
        if c + 1 < SIDE {
            out.push(cell + 1);
        }
        out
    }

    fn checksum(&mut self) -> u64 {
        self.field
            .snapshot()
            .into_iter()
            .fold(0u64, |h, v| splitmix64(h ^ v as u64))
    }

    fn sequential_checksum() -> u64 {
        let mut grid = ParticleGrid::new();
        for frame in 0..FRAMES {
            for cell in 0..CELLS {
                grid.step(frame, cell);
            }
        }
        grid.checksum()
    }

    fn step(&self, frame: usize, cell: usize) {
        // SAFETY (parallel callers): DOMORE orders iterations whose
        // neighbourhoods intersect; see `touched_addrs`.
        unsafe {
            let mut acc = (frame as i64) << 32 | cell as i64;
            for n in Self::neighbourhood(cell) {
                acc = splitmix64(acc as u64 ^ self.field.read(n) as u64) as i64;
            }
            self.field.write(cell, acc);
        }
    }
}

impl DomoreWorkload for ParticleGrid {
    fn num_invocations(&self) -> usize {
        FRAMES
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        CELLS
    }

    fn touched_addrs(&self, _inv: usize, cell: usize, out: &mut Vec<usize>) {
        out.extend(Self::neighbourhood(cell));
    }

    fn execute_iteration(&self, frame: usize, cell: usize, _tid: usize) {
        self.step(frame, cell);
    }

    fn address_space(&self) -> Option<usize> {
        Some(CELLS)
    }
}

fn main() {
    let expected = ParticleGrid::sequential_checksum();

    // Owner-computes assignment keeps most chains on one worker; the
    // scheduler synchronizes the neighbourhood overlaps that remain.
    let mut grid = ParticleGrid::new();
    let report = DomoreRuntime::new(DomoreConfig::with_workers(4))
        .with_policy(Box::new(LocalWrite::new(CELLS)))
        .execute(&grid)
        .expect("DOMORE execution");
    assert_eq!(grid.checksum(), expected, "results verified");
    println!(
        "separate scheduler: {} iterations across {} frames, \
         {} synchronization conditions, {} stalls",
        report.stats.tasks, report.stats.epochs, report.stats.sync_conditions, report.stats.stalls,
    );

    // The duplicated-scheduler variant (§3.4): every worker replays the
    // scheduling loop — the form that composes with SPECCROSS.
    let mut grid2 = ParticleGrid::new();
    let report = DuplicatedScheduler::new(4)
        .with_policy(Box::new(LocalWrite::new(CELLS)))
        .execute(&grid2)
        .expect("duplicated-scheduler execution");
    assert_eq!(grid2.checksum(), expected, "results verified");
    println!(
        "duplicated scheduler: {} iterations, {} synchronization conditions",
        report.stats.tasks, report.stats.sync_conditions,
    );
}
