//! Affine index analysis and the may-depend test.
//!
//! The precision/fragility trade-off this module embodies is the subject of
//! §2.1 of the thesis: affine indices (`A[i]`, `A[i+1]`) can be compared
//! exactly — yielding *no dependence*, *same-iteration only*, or a constant
//! *dependence distance* (§4.5.6) — while anything indirect (`A[idx[i]]`,
//! Fig. 2.1's Loop B) collapses to *unknown*, which is precisely what pushes
//! such loops toward the runtime techniques this repository reproduces.

use std::collections::{BTreeMap, HashSet};

use crossinvoc_runtime::signature::AccessKind;

use crate::ir::{ArrayId, BinOp, Expr, Program, Stmt, StmtId, VarId};

/// An index expression in the form `constant + Σ coefficient·var`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineForm {
    /// Constant term.
    pub constant: i64,
    /// Per-variable coefficients (absent = 0).
    pub terms: BTreeMap<VarId, i64>,
}

impl AffineForm {
    /// Attempts to put `expr` in affine form. Returns `None` for anything
    /// non-linear (products of variables, division, remainder, compares).
    pub fn of(expr: &Expr) -> Option<AffineForm> {
        match expr {
            Expr::Const(c) => Some(AffineForm {
                constant: *c,
                terms: BTreeMap::new(),
            }),
            Expr::Var(v) => {
                let mut terms = BTreeMap::new();
                terms.insert(*v, 1);
                Some(AffineForm { constant: 0, terms })
            }
            Expr::Bin(op, a, b) => {
                let fa = AffineForm::of(a);
                let fb = AffineForm::of(b);
                match op {
                    BinOp::Add => Some(fa?.combine(&fb?, 1)),
                    BinOp::Sub => Some(fa?.combine(&fb?, -1)),
                    BinOp::Mul => match (fa, fb) {
                        (Some(fa), Some(fb)) if fb.terms.is_empty() => Some(fa.scale(fb.constant)),
                        (Some(fa), Some(fb)) if fa.terms.is_empty() => Some(fb.scale(fa.constant)),
                        _ => None,
                    },
                    _ => None,
                }
            }
        }
    }

    fn combine(&self, other: &AffineForm, sign: i64) -> AffineForm {
        let mut out = self.clone();
        out.constant += sign * other.constant;
        for (&v, &c) in &other.terms {
            let entry = out.terms.entry(v).or_insert(0);
            *entry += sign * c;
            if *entry == 0 {
                out.terms.remove(&v);
            }
        }
        out
    }

    fn scale(&self, k: i64) -> AffineForm {
        if k == 0 {
            return AffineForm::default();
        }
        AffineForm {
            constant: self.constant * k,
            terms: self.terms.iter().map(|(&v, &c)| (v, c * k)).collect(),
        }
    }

    /// Coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: VarId) -> i64 {
        self.terms.get(&var).copied().unwrap_or(0)
    }

    /// The form without `var`'s term.
    pub fn without(&self, var: VarId) -> AffineForm {
        let mut out = self.clone();
        out.terms.remove(&var);
        out
    }
}

/// Relation between two index expressions across iterations of one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexRelation {
    /// Provably never equal, for any pair of iterations.
    Never,
    /// Equal only when both run in the same iteration.
    SameIteration,
    /// `idx1` at iteration `i` equals `idx2` at iteration `i + distance`
    /// (`distance != 0`): a loop-carried dependence at constant distance.
    Carried {
        /// Signed iteration distance.
        distance: i64,
    },
    /// Equal at *every* pair of iterations (neither depends on the
    /// induction variable).
    AllPairs,
    /// Cannot be determined statically (the irregular case).
    Unknown,
}

/// The dependence tester for one program.
#[derive(Debug, Clone, Copy)]
pub struct DepTest<'p> {
    program: &'p Program,
}

impl<'p> DepTest<'p> {
    /// Creates a tester over `program`.
    pub fn new(program: &'p Program) -> Self {
        Self { program }
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Classifies how `idx1` (in one iteration of the loop with induction
    /// variable `iv`) may equal `idx2` (in another). `variant` is the set
    /// of variables whose value changes within the loop (other than `iv`):
    /// symbolic terms over them cannot be cancelled.
    pub fn index_relation(
        &self,
        idx1: &Expr,
        idx2: &Expr,
        iv: VarId,
        variant: &HashSet<VarId>,
    ) -> IndexRelation {
        let (Some(f1), Some(f2)) = (AffineForm::of(idx1), AffineForm::of(idx2)) else {
            return IndexRelation::Unknown;
        };
        // Any loop-variant symbolic term defeats cancellation: the "same"
        // variable holds different values in different iterations.
        let has_variant = |f: &AffineForm| f.terms.keys().any(|v| *v != iv && variant.contains(v));
        if has_variant(&f1) || has_variant(&f2) {
            return IndexRelation::Unknown;
        }
        // Loop-invariant symbolic parts must agree exactly to cancel.
        if f1.without(iv).terms != f2.without(iv).terms {
            return IndexRelation::Unknown;
        }
        let (c1, c2) = (f1.coefficient(iv), f2.coefficient(iv));
        let delta = f1.constant - f2.constant;
        match (c1, c2) {
            (0, 0) => {
                if delta == 0 {
                    IndexRelation::AllPairs
                } else {
                    IndexRelation::Never
                }
            }
            (a, b) if a == b => {
                // a·i + k1 = a·i' + k2  ⇒  i' = i + (k1-k2)/a.
                if delta % a != 0 {
                    IndexRelation::Never
                } else {
                    let q = delta / a;
                    if q == 0 {
                        IndexRelation::SameIteration
                    } else {
                        IndexRelation::Carried { distance: q }
                    }
                }
            }
            // Distinct coefficients: solvable in principle (Diophantine)
            // but conservatively unknown, as the thesis' infrastructure is.
            _ => IndexRelation::Unknown,
        }
    }
}

/// One memory access extracted from a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Statement performing the access.
    pub stmt: StmtId,
    /// Array touched.
    pub array: ArrayId,
    /// Index expression; `None` for opaque calls (any element).
    pub index: Option<Expr>,
    /// Read or write.
    pub kind: AccessKind,
}

/// Collects every memory access in the subtrees of `roots`, in preorder.
pub fn collect_accesses(program: &Program, roots: &[StmtId]) -> Vec<Access> {
    let mut out = Vec::new();
    for id in program.subtrees(roots) {
        match program.stmt(id) {
            Stmt::Load { array, index, .. } => out.push(Access {
                stmt: id,
                array: *array,
                index: Some(index.clone()),
                kind: AccessKind::Read,
            }),
            Stmt::Store { array, index, .. } => out.push(Access {
                stmt: id,
                array: *array,
                index: Some(index.clone()),
                kind: AccessKind::Write,
            }),
            Stmt::Call { effect, .. } => {
                for &array in &effect.may_read {
                    out.push(Access {
                        stmt: id,
                        array,
                        index: None,
                        kind: AccessKind::Read,
                    });
                }
                for &array in &effect.may_write {
                    out.push(Access {
                        stmt: id,
                        array,
                        index: None,
                        kind: AccessKind::Write,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Variables whose value changes within the loop rooted at `loop_stmt`
/// (assignment/load targets and inner induction variables, the loop's own
/// induction variable included).
///
/// # Panics
///
/// Panics if `loop_stmt` is not a `For` statement.
pub fn loop_variant_vars(program: &Program, loop_stmt: StmtId) -> HashSet<VarId> {
    let Stmt::For { var, body, .. } = program.stmt(loop_stmt) else {
        panic!("loop_variant_vars requires a For statement");
    };
    let mut out = HashSet::new();
    out.insert(*var);
    for id in program.subtrees(body) {
        match program.stmt(id) {
            Stmt::Assign { var, .. } | Stmt::Load { var, .. } => {
                out.insert(*var);
            }
            Stmt::For { var, .. } => {
                out.insert(*var);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;

    fn iv() -> VarId {
        VarId(0)
    }

    fn rel(idx1: Expr, idx2: Expr) -> IndexRelation {
        rel_with_variant(idx1, idx2, HashSet::new())
    }

    fn rel_with_variant(idx1: Expr, idx2: Expr, variant: HashSet<VarId>) -> IndexRelation {
        let p = ProgramBuilder::new().finish();
        // DepTest only needs the program for future extensions; a blank one
        // suffices for expression-level queries.
        let t = DepTest::new(&p);
        t.index_relation(&idx1, &idx2, iv(), &variant)
    }

    #[test]
    fn identical_affine_indices_are_same_iteration() {
        assert_eq!(
            rel(Expr::Var(iv()), Expr::Var(iv())),
            IndexRelation::SameIteration
        );
    }

    #[test]
    fn shifted_index_has_constant_distance() {
        // A[i] vs A[i+1]: i' = i - 1.
        assert_eq!(
            rel(Expr::Var(iv()), Expr::add(Expr::Var(iv()), Expr::Const(1))),
            IndexRelation::Carried { distance: -1 }
        );
    }

    #[test]
    fn strided_disjoint_indices_never_alias() {
        // A[2i] vs A[2i+1].
        assert_eq!(
            rel(
                Expr::mul(Expr::Const(2), Expr::Var(iv())),
                Expr::add(Expr::mul(Expr::Const(2), Expr::Var(iv())), Expr::Const(1))
            ),
            IndexRelation::Never
        );
    }

    #[test]
    fn constant_indices_conflict_at_all_pairs() {
        assert_eq!(rel(Expr::Const(3), Expr::Const(3)), IndexRelation::AllPairs);
        assert_eq!(rel(Expr::Const(3), Expr::Const(4)), IndexRelation::Never);
    }

    #[test]
    fn loop_invariant_symbol_cancels() {
        // A[i+m] vs A[i+m+2] with m invariant: distance -2.
        let m = VarId(5);
        assert_eq!(
            rel(
                Expr::add(Expr::Var(iv()), Expr::Var(m)),
                Expr::add(Expr::add(Expr::Var(iv()), Expr::Var(m)), Expr::Const(2))
            ),
            IndexRelation::Carried { distance: -2 }
        );
    }

    #[test]
    fn loop_variant_symbol_is_unknown() {
        // A[i+t] where t is recomputed each iteration: no cancellation.
        let t = VarId(5);
        let mut variant = HashSet::new();
        variant.insert(t);
        assert_eq!(
            rel_with_variant(
                Expr::add(Expr::Var(iv()), Expr::Var(t)),
                Expr::add(Expr::Var(iv()), Expr::Var(t)),
                variant
            ),
            IndexRelation::Unknown
        );
    }

    #[test]
    fn nonlinear_index_is_unknown() {
        assert_eq!(
            rel(Expr::rem(Expr::Var(iv()), Expr::Const(4)), Expr::Var(iv())),
            IndexRelation::Unknown
        );
    }

    #[test]
    fn different_coefficients_are_unknown() {
        assert_eq!(
            rel(
                Expr::mul(Expr::Const(2), Expr::Var(iv())),
                Expr::mul(Expr::Const(3), Expr::Var(iv()))
            ),
            IndexRelation::Unknown
        );
    }

    #[test]
    fn affine_of_handles_subtraction_and_cancellation() {
        // (i + 3) - i  =  3.
        let e = Expr::sub(Expr::add(Expr::Var(iv()), Expr::Const(3)), Expr::Var(iv()));
        let f = AffineForm::of(&e).unwrap();
        assert_eq!(f.constant, 3);
        assert!(f.terms.is_empty());
    }

    #[test]
    fn collect_accesses_includes_call_effects() {
        use crate::ir::CallEffect;
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 4);
        let c = b.array("C", 4);
        let i = b.var("i");
        let t = b.var("t");
        b.for_loop(i, Expr::Const(0), Expr::Const(4), |b| {
            b.load(t, c, Expr::Var(i));
            b.call(
                "update",
                vec![Expr::Var(t)],
                CallEffect {
                    may_write: vec![a],
                    ..CallEffect::default()
                },
            );
        });
        let p = b.finish();
        let accesses = collect_accesses(&p, p.body());
        assert_eq!(accesses.len(), 2);
        assert_eq!(accesses[0].kind, AccessKind::Read);
        assert_eq!(accesses[1].kind, AccessKind::Write);
        assert_eq!(accesses[1].index, None, "call index is opaque");
    }

    #[test]
    fn loop_variant_vars_cover_defs_and_ivs() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 4);
        let i = b.var("i");
        let j = b.var("j");
        let t = b.var("t");
        let m = b.var("m"); // never assigned inside: invariant
        let _ = m;
        let outer = b.for_loop(i, Expr::Const(0), Expr::Const(2), |b| {
            b.assign(t, Expr::Var(i));
            b.for_loop(j, Expr::Const(0), Expr::Const(2), |b| {
                b.store(a, Expr::Var(j), Expr::Var(t));
            });
        });
        let p = b.finish();
        let variant = loop_variant_vars(&p, outer);
        assert!(variant.contains(&i));
        assert!(variant.contains(&j));
        assert!(variant.contains(&t));
        assert!(!variant.contains(&m));
    }
}
