//! The benchmark registry — Table 5.1 as data.
//!
//! The figure harness iterates this registry to regenerate every per-program
//! series of Chapter 5; each entry records the suite, the target function,
//! its share of execution time, the inner-loop plan and which of the two
//! techniques the thesis evaluates it under, plus a constructor for the
//! workload model at either scale.

use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;
use crate::{blackscholes, cg, eclat, equake, fdtd, fluidanimate, jacobi, llubench, loopdep, symm};

/// The parallelization plan used for the inner loop (Table 5.1's
/// "Parallelization plan" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerPlan {
    /// Independent iterations.
    Doall,
    /// Independent after speculating rare dependences.
    SpecDoall,
    /// Owner-computes partitioning.
    LocalWrite,
}

impl std::fmt::Display for InnerPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InnerPlan::Doall => write!(f, "DOALL"),
            InnerPlan::SpecDoall => write!(f, "Spec-DOALL"),
            InnerPlan::LocalWrite => write!(f, "LOCALWRITE"),
        }
    }
}

/// One row of Table 5.1.
#[derive(Debug, Clone)]
pub struct BenchmarkInfo {
    /// Program name as the thesis prints it.
    pub name: &'static str,
    /// Source benchmark suite.
    pub suite: &'static str,
    /// Target function.
    pub function: &'static str,
    /// Percent of execution time in the target nest.
    pub exec_pct: f64,
    /// Inner-loop parallelization plan.
    pub inner_plan: InnerPlan,
    /// Evaluated under DOMORE (Fig. 5.1).
    pub domore: bool,
    /// Evaluated under SPECCROSS (Fig. 5.2).
    pub speccross: bool,
}

impl BenchmarkInfo {
    /// For LOCALWRITE-planned programs whose field arrays share a logical
    /// grid, the congruence modulus deciding ownership (`address %
    /// modulus`, the §5.4 FLUIDANIMATE partition); `None` partitions the
    /// flat address space.
    pub fn owner_modulus(&self, scale: Scale) -> Option<usize> {
        match self.name {
            "FLUIDANIMATE-1" | "FLUIDANIMATE-2" => {
                Some(fluidanimate::Fluidanimate::new(scale, 0).cells())
            }
            _ => None,
        }
    }

    /// Whether the model's per-iteration work is load-imbalanced enough
    /// that round-robin dispatch leaves workers idle: CG's rows vary in
    /// nonzero count, ECLAT's transaction buckets collide unevenly, and
    /// FLUIDANIMATE's cells hold varying particle counts. The bench
    /// harness uses these rows to demonstrate the adaptive policy's win.
    pub fn imbalanced(&self) -> bool {
        matches!(self.name, "CG" | "ECLAT" | "FLUIDANIMATE-1")
    }

    /// Builds this benchmark's workload model at `scale` (boxed, for
    /// registry-driven harnesses).
    pub fn model(&self, scale: Scale) -> Box<dyn SimWorkload + Send + Sync> {
        let seed = 0xC0FFEE ^ self.name.len() as u64;
        match self.name {
            "FDTD" => Box::new(fdtd::Fdtd::new(scale, seed)),
            "JACOBI" => Box::new(jacobi::Jacobi::new(scale, seed)),
            "SYMM" => Box::new(symm::Symm::new(scale, seed)),
            "LOOPDEP" => Box::new(loopdep::Loopdep::train(scale, seed)),
            "BLACKSCHOLES" => Box::new(blackscholes::Blackscholes::new(scale, seed)),
            "FLUIDANIMATE-1" => {
                Box::new(fluidanimate::Fluidanimate::new(scale, seed).force_phase_only())
            }
            "FLUIDANIMATE-2" => Box::new(fluidanimate::Fluidanimate::new(scale, seed)),
            "EQUAKE" => Box::new(equake::Equake::new(scale, seed)),
            "LLUBENCH" => Box::new(llubench::Llubench::new(scale, seed)),
            "CG" => Box::new(cg::Cg::new(scale, seed)),
            "ECLAT" => Box::new(eclat::Eclat::new(scale, seed)),
            other => unreachable!("unknown benchmark {other}"),
        }
    }
}

/// All rows of Table 5.1, in the thesis' order.
pub fn registry() -> Vec<BenchmarkInfo> {
    vec![
        BenchmarkInfo {
            name: "FDTD",
            suite: "PolyBench",
            function: "main",
            exec_pct: 100.0,
            inner_plan: InnerPlan::Doall,
            domore: false,
            speccross: true,
        },
        BenchmarkInfo {
            name: "JACOBI",
            suite: "PolyBench",
            function: "main",
            exec_pct: 100.0,
            inner_plan: InnerPlan::Doall,
            domore: false,
            speccross: true,
        },
        BenchmarkInfo {
            name: "SYMM",
            suite: "PolyBench",
            function: "main",
            exec_pct: 100.0,
            inner_plan: InnerPlan::Doall,
            domore: true,
            speccross: true,
        },
        BenchmarkInfo {
            name: "LOOPDEP",
            suite: "OMPBench",
            function: "main",
            exec_pct: 100.0,
            inner_plan: InnerPlan::Doall,
            domore: false,
            speccross: true,
        },
        BenchmarkInfo {
            name: "BLACKSCHOLES",
            suite: "PARSEC",
            function: "bs_thread",
            exec_pct: 99.0,
            inner_plan: InnerPlan::SpecDoall,
            domore: true,
            speccross: false,
        },
        BenchmarkInfo {
            name: "FLUIDANIMATE-1",
            suite: "PARSEC",
            function: "ComputeForce",
            exec_pct: 50.2,
            inner_plan: InnerPlan::LocalWrite,
            domore: true,
            speccross: false,
        },
        BenchmarkInfo {
            name: "FLUIDANIMATE-2",
            suite: "PARSEC",
            function: "main",
            exec_pct: 100.0,
            inner_plan: InnerPlan::LocalWrite,
            domore: false,
            speccross: true,
        },
        BenchmarkInfo {
            name: "EQUAKE",
            suite: "SpecFP",
            function: "main",
            exec_pct: 100.0,
            inner_plan: InnerPlan::Doall,
            domore: false,
            speccross: true,
        },
        BenchmarkInfo {
            name: "LLUBENCH",
            suite: "LLVMBench",
            function: "main",
            exec_pct: 50.0,
            inner_plan: InnerPlan::Doall,
            domore: true,
            speccross: true,
        },
        BenchmarkInfo {
            name: "CG",
            suite: "NAS",
            function: "sparse",
            exec_pct: 12.2,
            inner_plan: InnerPlan::LocalWrite,
            domore: true,
            speccross: true,
        },
        BenchmarkInfo {
            name: "ECLAT",
            suite: "MineBench",
            function: "process_inverti",
            exec_pct: 24.5,
            inner_plan: InnerPlan::SpecDoall,
            domore: true,
            speccross: false,
        },
    ]
}

/// Looks a benchmark up by name.
///
/// # Panics
///
/// Panics if `name` is not in the registry.
pub fn by_name(name: &str) -> BenchmarkInfo {
    registry()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

/// Looks a benchmark up by name, case-insensitively; `None` when unknown.
/// The fallible counterpart of [`by_name`] for tooling that takes user
/// input (e.g. the `trace-report` workflow of `docs/OBSERVABILITY.md`).
pub fn find(name: &str) -> Option<BenchmarkInfo> {
    registry()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_5_1_shape() {
        let r = registry();
        assert_eq!(r.len(), 11, "10 programs, FLUIDANIMATE split in two");
        assert_eq!(r.iter().filter(|b| b.domore).count(), 6, "Fig. 5.1 set");
        assert_eq!(r.iter().filter(|b| b.speccross).count(), 8, "Fig. 5.2 set");
    }

    #[test]
    fn every_model_constructs_and_has_work() {
        for info in registry() {
            let model = info.model(Scale::Test);
            assert!(model.num_invocations() > 0, "{}", info.name);
            assert!(model.total_iterations() > 0, "{}", info.name);
            assert!(model.total_work_ns() > 0, "{}", info.name);
            assert!(model.address_space().is_some(), "{}", info.name);
        }
    }

    #[test]
    fn models_are_deterministic_across_constructions() {
        for info in registry() {
            let (a, b) = (info.model(Scale::Test), info.model(Scale::Test));
            assert_eq!(a.total_work_ns(), b.total_work_ns(), "{}", info.name);
            let mut va = Vec::new();
            let mut vb = Vec::new();
            a.accesses(0, 0, &mut va);
            b.accesses(0, 0, &mut vb);
            assert_eq!(va, vb, "{}", info.name);
        }
    }

    #[test]
    fn by_name_round_trips() {
        assert_eq!(by_name("CG").suite, "NAS");
        assert_eq!(by_name("ECLAT").inner_plan, InnerPlan::SpecDoall);
    }

    #[test]
    fn find_is_case_insensitive_and_total() {
        assert_eq!(find("eclat").unwrap().name, "ECLAT");
        assert_eq!(find("Cg").unwrap().suite, "NAS");
        assert!(find("NOT-A-BENCHMARK").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn by_name_rejects_unknown() {
        by_name("NOT-A-BENCHMARK");
    }

    #[test]
    fn inner_plan_displays_like_the_table() {
        assert_eq!(InnerPlan::LocalWrite.to_string(), "LOCALWRITE");
        assert_eq!(InnerPlan::SpecDoall.to_string(), "Spec-DOALL");
        assert_eq!(InnerPlan::Doall.to_string(), "DOALL");
    }
}
