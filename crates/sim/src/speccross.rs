//! Simulated SPECCROSS execution (§4.2).
//!
//! Tasks are distributed round-robin within each epoch; workers cross epoch
//! boundaries freely, subject only to the speculative-range gate (a task may
//! start once every task more than `spec_distance` ahead of it in the
//! sequential order has finished). The checker is modelled as
//! [`SpecSimParams::checker_shards`] single servers (one by default), the
//! admission work interleaved over them by address exactly as in the
//! threaded engine; each request is serviced by every shard its span
//! touches, and the shard clocks bound checkpoint rendezvous and the
//! region's completion — which is how the checker-bottleneck effect of §5.2
//! emerges at high thread counts, and how sharding relieves it.
//!
//! Conflicts are *detected, not assumed*: each task's accesses are folded
//! into a real [`RangeSignature`], and a pair of time-overlapping tasks from
//! different epochs on different workers misspeculates exactly when their
//! signatures conflict — the same test the threaded checker runs. Recovery
//! replays the thesis' sequence: roll back to the last checkpoint,
//! re-execute the misspeculated epochs under non-speculative barriers,
//! resume speculation.

use crossinvoc_runtime::fault::{CheckFault, FaultKind, FaultPlan, TaskFault};
use crossinvoc_runtime::signature::{AccessSignature, RangeSignature};
use crossinvoc_runtime::stats::RegionStats;
use crossinvoc_runtime::trace::{checker_shard_tid, Event, WakeEdge};
use crossinvoc_speccross::ShardMap;

use crate::cost::CostModel;
use crate::result::SimResult;
use crate::tracing::SimSinks;
use crate::workload::SimWorkload;

/// Parameters of a simulated SPECCROSS execution.
#[derive(Debug, Clone)]
pub struct SpecSimParams {
    /// Worker thread count (the checker is additional).
    pub threads: usize,
    /// Speculative range in tasks (profiled minimum dependence distance);
    /// `None` disables gating.
    pub spec_distance: Option<u64>,
    /// Checkpoint every this many epochs.
    pub checkpoint_every: usize,
    /// Force a misspeculation when this global task index is admitted
    /// (the Fig. 5.3 experiment's "randomly triggered" misspeculation).
    pub inject_misspec_at_task: Option<u64>,
    /// Deterministic fault schedule, sharing [`FaultPlan`] semantics with
    /// the threaded engine: worker panics roll back to the checkpoint and
    /// re-execute under barriers, checker death degrades the remaining
    /// region to barriers, forced false positives misspeculate, stalls and
    /// delays advance the respective clocks, and snapshot/restore failures
    /// skip a checkpoint / pay an extra recovery.
    pub fault_plan: Option<FaultPlan>,
    /// Ring capacity per simulated thread for execution tracing; `None`
    /// disables it. Traced runs stamp events with virtual time, producing
    /// the same JSONL schema as the threaded engine (see
    /// `docs/OBSERVABILITY.md`), deterministically.
    pub trace_capacity: Option<usize>,
    /// Model the checker's per-epoch aggregate-signature fast path (the
    /// threaded checker's epoch-summary pruning): one aggregate test per
    /// epoch bucket replaces the per-entry scan whenever the aggregate is
    /// disjoint from the probe. Verdicts are identical either way — the
    /// conflict test is monotone under signature union — only the
    /// comparison count (and with it the checker's service time) changes.
    /// On by default; turn off for the pre-summary baseline.
    pub epoch_summaries: bool,
    /// Number of checker shards, mirroring the threaded engine's
    /// `SpecConfig::checker_shards`: admission work is interleaved over the
    /// shards by address, each shard is its own single server with its own
    /// virtual clock, and a signature whose span straddles shards is
    /// serviced by (and billed to) every shard it touches. `1` (the
    /// default) reproduces the single-checker simulation byte-for-byte.
    pub checker_shards: usize,
    /// Mirror of the threaded engine's `SpecConfig::elide`: invocations the
    /// workload reports statically proven conflict-free
    /// ([`crate::workload::SimWorkload::invocation_is_proven`]) skip the
    /// simulated signature build, conflict scan, and checker billing — the
    /// virtual-time model of tasks that never touch the check rings.
    /// Verdicts are unchanged (the proof guarantees the skipped comparisons
    /// could never conflict); only the checker's service time and the
    /// counters move. `false` (the default) keeps every invocation on the
    /// full check path, byte-identical to the pre-elision model.
    pub elide: bool,
    /// Region-server attribution id stamped onto the trace, mirroring the
    /// threaded engine's `SpecConfig::region`; 0 (the default, solo) keeps
    /// the JSONL wire format byte-identical to the pre-region schema.
    pub region: u64,
}

impl SpecSimParams {
    /// Defaults matching the thesis: checkpoint every 1000 epochs, no
    /// injection, no gating.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            spec_distance: None,
            checkpoint_every: 1000,
            inject_misspec_at_task: None,
            fault_plan: None,
            trace_capacity: None,
            epoch_summaries: true,
            checker_shards: 1,
            elide: false,
            region: 0,
        }
    }

    /// Sets the speculative range.
    pub fn spec_distance(mut self, d: Option<u64>) -> Self {
        self.spec_distance = d;
        self
    }

    /// Sets the checkpoint interval in epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn checkpoint_every(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "checkpoint interval must be positive");
        self.checkpoint_every = epochs;
        self
    }

    /// Forces a misspeculation at a global task index.
    pub fn inject_misspec_at_task(mut self, task: Option<u64>) -> Self {
        self.inject_misspec_at_task = task;
        self
    }

    /// Installs a deterministic fault schedule.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables execution tracing with `capacity` records per thread.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Enables or disables the checker's epoch-summary fast path.
    pub fn epoch_summaries(mut self, enabled: bool) -> Self {
        self.epoch_summaries = enabled;
        self
    }

    /// Shards the simulated checker over this many servers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is outside `1..=`[`crossinvoc_speccross::MAX_SHARDS`].
    pub fn checker_shards(mut self, shards: usize) -> Self {
        assert!(
            (1..=crossinvoc_speccross::MAX_SHARDS).contains(&shards),
            "checker_shards must be in 1..={}",
            crossinvoc_speccross::MAX_SHARDS
        );
        self.checker_shards = shards;
        self
    }

    /// Lets statically-proven invocations skip the simulated checker
    /// entirely (off by default). See [`SpecSimParams::elide`].
    pub fn elide(mut self, enabled: bool) -> Self {
        self.elide = enabled;
        self
    }

    /// Attributes the simulated region's trace to a region-server
    /// submission id (default 0 = solo).
    pub fn region(mut self, region_id: u64) -> Self {
        self.region = region_id;
        self
    }
}

/// One simulated in-flight task retained for conflict detection.
struct Window {
    tid: usize,
    /// Per-epoch task index, for the misspeculation trace event.
    task: u64,
    start: u64,
    finish: u64,
    /// Maximum finish time over this entry and all earlier ones (across
    /// buckets): a reverse scan can stop as soon as this drops to or below
    /// the probe's start, since nothing older can overlap it.
    running_max_finish: u64,
    sig: RangeSignature,
}

/// The retained window entries of one epoch plus their merged aggregate —
/// the structure the threaded checker's `CheckerState` keeps, mirrored in
/// virtual time. Buckets are appended in epoch order (tasks are admitted
/// epoch by epoch), so a reverse bucket walk is a reverse time walk.
struct EpochBucket {
    epoch: usize,
    entries: Vec<Window>,
    /// Union of every entry's signature: disjoint from a probe ⇒ every
    /// member is disjoint, and the whole bucket is skipped with a single
    /// comparison.
    aggregate: RangeSignature,
}

/// Why a simulated speculative pass aborted.
enum AbortCause {
    /// Signature conflict (organic or forced false positive): the one
    /// abort that counts as a misspeculation.
    Conflict,
    /// An injected worker panic; rolls back like a conflict but is not a
    /// misspeculation.
    Panic,
    /// The checker died; the remaining region degrades to barriers.
    CheckerDeath,
}

/// Outcome of one simulated speculative pass.
enum PassEnd {
    Completed,
    Aborted {
        detect_time: u64,
        checkpoint_epoch: usize,
        resume_epoch: usize,
        cause: AbortCause,
        /// Checker shard that issued the condemning verdict (0 unless the
        /// cause is a conflict on a sharded run).
        detect_shard: usize,
    },
}

/// Simulates SPECCROSS over `workload`.
///
/// # Panics
///
/// Panics if `params.threads` is zero.
pub fn speccross<W: SimWorkload + ?Sized>(
    workload: &W,
    params: &SpecSimParams,
    cost: &CostModel,
) -> SimResult {
    assert!(params.threads > 0, "at least one thread is required");
    let stats = RegionStats::new();
    let num_epochs = workload.num_invocations();
    let mut busy = vec![0u64; params.threads];
    let mut idle = vec![0u64; params.threads];
    let mut now = 0u64;
    let mut start_epoch = 0usize;
    let mut degraded = false;
    // Cloning replays the plan with a fresh budget, so repeated `speccross`
    // calls over the same params are deterministic.
    let fault = params.fault_plan.clone().unwrap_or_default();
    assert!(
        (1..=crossinvoc_speccross::MAX_SHARDS).contains(&params.checker_shards),
        "checker_shards must be in 1..={}",
        crossinvoc_speccross::MAX_SHARDS
    );
    let mut sinks = SimSinks::new(
        params.threads,
        params.checker_shards,
        params.trace_capacity.unwrap_or(0),
    )
    .region(params.region);
    let mut misspec_ordinal = 0u64;

    while start_epoch < num_epochs {
        match speculative_pass(
            workload,
            params,
            cost,
            &fault,
            start_epoch,
            now,
            &stats,
            &mut busy,
            &mut idle,
            &mut sinks,
        ) {
            (PassEnd::Completed, end_time) => {
                now = end_time;
                start_epoch = num_epochs;
            }
            (
                PassEnd::Aborted {
                    detect_time,
                    checkpoint_epoch,
                    resume_epoch,
                    cause,
                    detect_shard,
                },
                _,
            ) => {
                if matches!(cause, AbortCause::Conflict) {
                    stats.add_misspeculation();
                    // Checker verdict → rollback: the recovery the manager
                    // now performs was caused by the issuing shard's
                    // decision at `detect_time`.
                    sinks.manager.emit_at(
                        detect_time,
                        Event::Wake {
                            edge: WakeEdge::Checker,
                            src_tid: checker_shard_tid(detect_shard),
                            seq: misspec_ordinal,
                        },
                    );
                    misspec_ordinal += 1;
                }
                now = detect_time + cost.recovery_ns;
                if fault.restore_fails(checkpoint_epoch as u32) {
                    // First restore attempt failed; the retry costs another
                    // recovery round-trip.
                    sinks.manager.emit_at(
                        now,
                        Event::FaultInjected {
                            kind: FaultKind::RestoreFail,
                            epoch: checkpoint_epoch as u32,
                            task: 0,
                        },
                    );
                    now += cost.recovery_ns;
                }
                // Re-execute the aborted epochs under real barriers; after a
                // checker death there is no one left to validate speculation,
                // so the rest of the region runs under barriers too.
                let to = if matches!(cause, AbortCause::CheckerDeath) {
                    degraded = true;
                    sinks.manager.emit_at(
                        now,
                        Event::Degradation {
                            epoch: checkpoint_epoch as u32,
                        },
                    );
                    num_epochs
                } else {
                    resume_epoch
                };
                now = barrier_range(
                    workload,
                    params.threads,
                    cost,
                    checkpoint_epoch,
                    to,
                    now,
                    &stats,
                    &mut busy,
                    &mut idle,
                    &mut sinks,
                );
                start_epoch = to;
            }
        }
    }

    SimResult {
        total_ns: now,
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded,
        trace: sinks.finish(),
    }
}

/// Simulates epochs `[from, to)` with barriers, starting at `t0`; returns
/// the completion time.
#[allow(clippy::too_many_arguments)]
fn barrier_range<W: SimWorkload + ?Sized>(
    workload: &W,
    threads: usize,
    cost: &CostModel,
    from: usize,
    to: usize,
    t0: u64,
    stats: &RegionStats,
    busy: &mut [u64],
    idle: &mut [u64],
    sinks: &mut SimSinks,
) -> u64 {
    let mut clocks = vec![t0; threads];
    for epoch in from..to {
        stats.add_epoch();
        sinks.workers[0].emit_at(
            clocks[0],
            Event::EpochBegin {
                epoch: epoch as u32,
            },
        );
        for iter in 0..workload.num_iterations(epoch) {
            let tid = iter % threads;
            let work = workload.iteration_cost(epoch, iter);
            sinks.workers[tid].emit_at(
                clocks[tid],
                Event::TaskDispatch {
                    epoch: epoch as u32,
                    task: iter as u64,
                },
            );
            clocks[tid] += work;
            busy[tid] += work;
            sinks.workers[tid].emit_at(
                clocks[tid],
                Event::TaskRetire {
                    epoch: epoch as u32,
                    task: iter as u64,
                },
            );
            stats.add_task();
        }
        let slowest = *clocks.iter().max().expect("threads > 0");
        let releaser = clocks.iter().position(|&c| c == slowest).expect("nonempty");
        for (tid, (clock, i)) in clocks.iter_mut().zip(idle.iter_mut()).enumerate() {
            let wait = slowest - *clock;
            sinks.workers[tid].emit_at(
                *clock,
                Event::BarrierEnter {
                    epoch: epoch as u32,
                },
            );
            *i += wait;
            *clock = slowest + cost.barrier_ns(threads);
            sinks.workers[tid].emit_at(
                *clock,
                Event::BarrierLeave {
                    epoch: epoch as u32,
                    wait_ns: wait,
                },
            );
            if wait > 0 {
                sinks.workers[tid].emit_at(
                    *clock,
                    Event::Wake {
                        edge: WakeEdge::Barrier,
                        src_tid: releaser,
                        seq: epoch as u64,
                    },
                );
            }
        }
    }
    clocks.into_iter().max().unwrap_or(t0)
}

/// Simulates one speculative pass from `start_epoch` beginning at `t0`.
/// Returns the outcome and the pass completion time (max of worker and
/// checker clocks) when completed.
#[allow(clippy::too_many_arguments)]
fn speculative_pass<W: SimWorkload + ?Sized>(
    workload: &W,
    params: &SpecSimParams,
    cost: &CostModel,
    fault: &FaultPlan,
    start_epoch: usize,
    t0: u64,
    stats: &RegionStats,
    busy: &mut [u64],
    idle: &mut [u64],
    sinks: &mut SimSinks,
) -> (PassEnd, u64) {
    let threads = params.threads;
    let num_epochs = workload.num_invocations();

    // Global task numbering across the remaining epochs.
    let mut prefix = Vec::with_capacity(num_epochs + 1 - start_epoch);
    let mut acc = 0u64;
    for e in start_epoch..num_epochs {
        prefix.push(acc);
        acc += workload.num_iterations(e) as u64;
    }
    prefix.push(acc);

    let mut clocks = vec![t0; threads];
    let shards = params.checker_shards;
    let shard_map = ShardMap::new(shards);
    let mut checker_clocks = vec![t0; shards];
    stats.add_checkpoint(); // pass-entry checkpoint
    sinks.manager.emit_at(
        t0,
        Event::Checkpoint {
            epoch: start_epoch as u32,
        },
    );
    let mut checkpoint_epoch = start_epoch;
    let mut max_epoch_started = start_epoch;
    // Current epoch per worker: when all workers sit in the same epoch,
    // its tasks are mutually independent by construction and their
    // signatures are "safely skipped" (§4.2.1) — no checking request.
    let mut cur_epoch = vec![start_epoch; threads];

    // Finish times in global order, for the gate's prefix maximum.
    let mut finish_prefix_max: Vec<u64> = Vec::with_capacity(acc as usize);
    // Per-shard retained windows: each shard keeps (and scans) only the
    // tasks routed to it, so its epoch-bucket list is the unsharded list
    // restricted to its addresses — straddlers appear whole in every list
    // their span touches.
    let mut buckets: Vec<Vec<EpochBucket>> = (0..shards).map(|_| Vec::new()).collect();
    let mut window_len = vec![0usize; shards];
    // Requests serviced per shard this pass, for the exit census rows.
    let mut routed = vec![0u64; shards];
    let mut pairs = Vec::new();
    // Cumulative per-shard fast-path accounting for this pass; flushed as
    // delta-encoded `CheckerSummary` events at epoch boundaries and on
    // every pass exit, mirroring the threaded checker's
    // retirement-boundary summaries.
    let mut total_skips = vec![0u64; shards];
    let mut total_comparisons = vec![0u64; shards];
    // (skips, comparisons) already covered by an emitted summary.
    let mut reported = vec![(0u64, 0u64); shards];
    fn flush_summary(
        stats: &RegionStats,
        checker: &mut crossinvoc_runtime::trace::TraceSink,
        at: u64,
        epoch: u32,
        total_skips: u64,
        total_comparisons: u64,
        reported: &mut (u64, u64),
    ) {
        if total_skips != reported.0 || total_comparisons != reported.1 {
            stats.add_checker_epoch_skips(total_skips - reported.0);
            checker.emit_at(
                at,
                Event::CheckerSummary {
                    epoch,
                    skips: total_skips - reported.0,
                    comparisons: total_comparisons - reported.1,
                },
            );
            *reported = (total_skips, total_comparisons);
        }
    }
    macro_rules! flush_summary {
        ($epoch:expr) => {
            for k in 0..shards {
                flush_summary(
                    stats,
                    &mut sinks.checkers[k],
                    checker_clocks[k],
                    $epoch as u32,
                    total_skips[k],
                    total_comparisons[k],
                    &mut reported[k],
                )
            }
        };
    }
    // Pass-scoped shard census, one row per shard on exit — the same
    // `checker_shard` rows the threaded checker emits when a shard thread
    // returns.
    macro_rules! emit_census {
        () => {
            for k in 0..shards {
                sinks.checkers[k].emit_at(
                    checker_clocks[k],
                    Event::CheckerShard {
                        shard: k as u32,
                        shards: shards as u32,
                        requests: routed[k],
                    },
                );
            }
        };
    }

    for epoch in start_epoch..num_epochs {
        stats.add_epoch();
        let periodic =
            epoch > start_epoch && (epoch - start_epoch).is_multiple_of(params.checkpoint_every);
        if periodic {
            // Rendezvous: all workers synchronize, every checker shard
            // drains, the state is snapshotted.
            let worker_max = clocks.iter().copied().max().expect("threads > 0");
            let checker_max = checker_clocks.iter().copied().max().expect("shards > 0");
            let sync = worker_max.max(checker_max) + cost.checkpoint_ns;
            // The release's causal source: the slowest checker shard when
            // its drain bound the rendezvous, else the slowest worker.
            let releaser = if checker_max > worker_max {
                let slowest = checker_clocks
                    .iter()
                    .position(|&c| c == checker_max)
                    .expect("nonempty");
                checker_shard_tid(slowest)
            } else {
                clocks
                    .iter()
                    .position(|&c| c == worker_max)
                    .expect("nonempty")
            };
            for (tid, (clock, i)) in clocks.iter_mut().zip(idle.iter_mut()).enumerate() {
                let wait = sync - *clock;
                sinks.workers[tid].emit_at(
                    *clock,
                    Event::BarrierEnter {
                        epoch: epoch as u32,
                    },
                );
                *i += wait;
                *clock = sync;
                sinks.workers[tid].emit_at(
                    sync,
                    Event::BarrierLeave {
                        epoch: epoch as u32,
                        wait_ns: wait,
                    },
                );
                if wait > 0 && tid != releaser {
                    sinks.workers[tid].emit_at(
                        sync,
                        Event::Wake {
                            edge: WakeEdge::Checkpoint,
                            src_tid: releaser,
                            seq: epoch as u64,
                        },
                    );
                }
            }
            for c in checker_clocks.iter_mut() {
                *c = sync;
            }
            if fault.snapshot_fails(epoch as u32) {
                // Snapshot failed: the rendezvous still happened, but the
                // previous checkpoint stays the rollback target.
                sinks.manager.emit_at(
                    sync,
                    Event::FaultInjected {
                        kind: FaultKind::SnapshotFail,
                        epoch: epoch as u32,
                        task: 0,
                    },
                );
            } else {
                stats.add_checkpoint();
                checkpoint_epoch = epoch;
                sinks.manager.emit_at(
                    sync,
                    Event::Checkpoint {
                        epoch: epoch as u32,
                    },
                );
            }
            // Nothing before the rendezvous can race past it; this is the
            // prune watermark the threaded checker retires by.
            for (list, len) in buckets.iter_mut().zip(window_len.iter_mut()) {
                list.clear();
                *len = 0;
            }
        }

        let ntasks = workload.num_iterations(epoch);
        sinks.workers[0].emit_at(
            clocks[0],
            Event::EpochBegin {
                epoch: epoch as u32,
            },
        );
        // Static elision (mirror of the threaded engine's `SpecConfig::elide`
        // path): proven invocations never build a signature, never scan, and
        // never bill the checker — per-worker (tasks, accesses) tallies feed
        // the `check_elided` rows at the epoch boundary.
        let proven = params.elide && workload.invocation_is_proven(epoch);
        let mut elided = vec![(0u64, 0u64); threads];
        for task in 0..ntasks {
            let tid = task % threads;
            let global = prefix[epoch - start_epoch] + task as u64;
            // Speculative-range gate: wait until every task more than
            // `spec_distance` behind has finished.
            let mut release = clocks[tid];
            if let Some(d) = params.spec_distance {
                // Distance d: every task at least d behind must have
                // finished (d = 0 degenerates to full serialization).
                let back = d.max(1);
                if global >= back {
                    let gate = finish_prefix_max[(global - back) as usize];
                    if gate > release {
                        stats.add_stall();
                        release = gate;
                    }
                }
            }
            match fault.task_start(epoch as u32, task as u64, tid) {
                Some(TaskFault::Delay(d)) => {
                    stats.add_stall();
                    sinks.workers[tid].emit_at(
                        release,
                        Event::FaultInjected {
                            kind: FaultKind::Delay(d.as_micros() as u64),
                            epoch: epoch as u32,
                            task: task as u64,
                        },
                    );
                    release += d.as_nanos() as u64;
                }
                Some(TaskFault::Panic) => {
                    // The panic is contained at the task boundary; the pass
                    // aborts immediately and rolls back to the checkpoint.
                    sinks.workers[tid].emit_at(
                        release,
                        Event::FaultInjected {
                            kind: FaultKind::WorkerPanic,
                            epoch: epoch as u32,
                            task: task as u64,
                        },
                    );
                    idle[tid] += release - clocks[tid];
                    clocks[tid] = release;
                    flush_summary!(epoch);
                    emit_census!();
                    return (
                        PassEnd::Aborted {
                            detect_time: release,
                            checkpoint_epoch,
                            resume_epoch: (max_epoch_started.max(epoch) + 1).min(num_epochs),
                            cause: AbortCause::Panic,
                            detect_shard: 0,
                        },
                        release,
                    );
                }
                None => {}
            }
            idle[tid] += release - clocks[tid];
            let work = cost.task_overhead_ns + workload.iteration_cost(epoch, task);
            let start = release;
            let finish = start + work;
            busy[tid] += work;
            clocks[tid] = finish;
            stats.add_task();
            sinks.workers[tid].emit_at(
                start,
                Event::TaskDispatch {
                    epoch: epoch as u32,
                    task: task as u64,
                },
            );
            sinks.workers[tid].emit_at(
                finish,
                Event::TaskRetire {
                    epoch: epoch as u32,
                    task: task as u64,
                },
            );

            let last_max = finish_prefix_max.last().copied().unwrap_or(0);
            finish_prefix_max.push(last_max.max(finish));
            max_epoch_started = max_epoch_started.max(epoch);

            if proven {
                // Elided task: the static proof replaces the admission. The
                // epoch tracker still advances (other tasks' overlap test
                // must keep observing this worker), but no signature, scan,
                // retention, or checker billing happens — including forced
                // conflicts, which ride on admissions that no longer exist.
                pairs.clear();
                workload.accesses(epoch, task, &mut pairs);
                cur_epoch[tid] = epoch;
                if !pairs.is_empty() {
                    stats.add_elided_signature();
                    stats.add_elided_admit();
                    stats.add_proven_accesses(pairs.len() as u64);
                    elided[tid].0 += 1;
                    elided[tid].1 += pairs.len() as u64;
                }
                continue;
            }

            // Build the signature and run the real conflict test against
            // overlapping cross-epoch tasks.
            pairs.clear();
            workload.accesses(epoch, task, &mut pairs);
            let mut sig = RangeSignature::empty();
            for &(addr, kind) in &pairs {
                sig.record(addr, kind);
            }
            let set = shard_map.shards_for_span(sig.addr_span());
            let mut conflicted = params.inject_misspec_at_task == Some(global);
            // The earlier half of the conflicting pair, for the trace's
            // misspeculation ledger; forced/injected conflicts have no real
            // partner, so both sides name the admitted task.
            let mut conflict_with: Option<(usize, usize, u64)> = None;
            // Shard that issued the condemning verdict; defaults to the
            // first shard the request routes to.
            let mut detect_shard = set.iter().next().unwrap_or(0);
            // (shard, comparisons, skips) for every shard that scanned the
            // probe; billed to the shard's clock if the request is serviced.
            let mut scanned: Vec<(usize, u64, u64)> = Vec::with_capacity(set.len());
            if !sig.is_empty() {
                for k in set.iter() {
                    let mut comparisons = 0u64;
                    let mut skips = 0u64;
                    let found = scan_shard(
                        &buckets[k],
                        &sig,
                        tid,
                        start,
                        finish,
                        epoch,
                        params.epoch_summaries,
                        &mut comparisons,
                        &mut skips,
                    );
                    scanned.push((k, comparisons, skips));
                    if let Some(partner) = found {
                        conflicted = true;
                        conflict_with = Some(partner);
                        detect_shard = k;
                        // Later shards never see the request: the pass is
                        // already condemned by this shard's verdict.
                        break;
                    }
                }
            } else {
                // Empty signatures route to shard 0 (span-less requests
                // exist only for forced injections); no scan to run.
                scanned.push((detect_shard, 0, 0));
            }
            // Checker servers: one request per non-empty signature from a
            // task whose execution overlaps a different epoch, serviced by
            // (and billed to) every shard the span routes to — straddlers
            // genuinely cost duplicated admission work.
            cur_epoch[tid] = epoch;
            let epochs_overlap = cur_epoch.iter().any(|&e| e != epoch);
            if (!sig.is_empty() && epochs_overlap) || conflicted {
                stats.add_check_request();
                // Checker-side faults fire once per request (the shared
                // single-shot budget of the threaded plan) while the first
                // routed shard processes it.
                let check_fault = fault.check(epoch as u32, task as u64, tid);
                for (i, &(k, comparisons, skips)) in scanned.iter().enumerate() {
                    total_comparisons[k] += comparisons;
                    total_skips[k] += skips;
                    routed[k] += 1;
                    // SPSC produce → consume: shard k picks the request up
                    // once it is both sent (task finished) and that server
                    // is free.
                    let pickup = checker_clocks[k].max(finish);
                    sinks.checkers[k].emit_at(
                        pickup,
                        Event::Wake {
                            edge: WakeEdge::Queue,
                            src_tid: tid,
                            seq: global,
                        },
                    );
                    checker_clocks[k] =
                        pickup + cost.check_request_ns + cost.check_compare_ns * comparisons;
                    if i > 0 {
                        continue;
                    }
                    match check_fault {
                        Some(CheckFault::ForceConflict) => {
                            sinks.checkers[k].emit_at(
                                checker_clocks[k],
                                Event::FaultInjected {
                                    kind: FaultKind::FalsePositive,
                                    epoch: epoch as u32,
                                    task: task as u64,
                                },
                            );
                            conflicted = true;
                        }
                        Some(CheckFault::Stall(d)) => {
                            sinks.checkers[k].emit_at(
                                checker_clocks[k],
                                Event::FaultInjected {
                                    kind: FaultKind::CheckerStall(d.as_millis() as u64),
                                    epoch: epoch as u32,
                                    task: task as u64,
                                },
                            );
                            checker_clocks[k] += d.as_nanos() as u64;
                        }
                        Some(CheckFault::Die) => {
                            sinks.checkers[k].emit_at(
                                checker_clocks[k],
                                Event::FaultInjected {
                                    kind: FaultKind::CheckerDeath,
                                    epoch: epoch as u32,
                                    task: task as u64,
                                },
                            );
                            flush_summary!(epoch);
                            emit_census!();
                            return (
                                PassEnd::Aborted {
                                    detect_time: checker_clocks[k],
                                    checkpoint_epoch,
                                    resume_epoch: (max_epoch_started + 1).min(num_epochs),
                                    cause: AbortCause::CheckerDeath,
                                    detect_shard: k,
                                },
                                checker_clocks[k],
                            );
                        }
                        None => {}
                    }
                }
            }
            if conflicted {
                let (e_tid, e_epoch, e_task) = conflict_with.unwrap_or((tid, epoch, task as u64));
                let detect_time = checker_clocks[detect_shard];
                sinks.checkers[detect_shard].emit_at(
                    detect_time,
                    Event::Misspeculation {
                        earlier_tid: e_tid,
                        earlier_epoch: e_epoch as u32,
                        earlier_task: e_task,
                        later_tid: tid,
                        later_epoch: epoch as u32,
                        later_task: task as u64,
                    },
                );
                let resume = (max_epoch_started + 1).min(num_epochs);
                flush_summary!(epoch);
                emit_census!();
                return (
                    PassEnd::Aborted {
                        detect_time,
                        checkpoint_epoch,
                        resume_epoch: resume,
                        cause: AbortCause::Conflict,
                        detect_shard,
                    },
                    checker_clocks[detect_shard],
                );
            }
            // Retain the admitted task in every touched shard's window (the
            // whole signature, per the routing rule), so each shard's scan
            // is the unsharded scan restricted to its requests.
            for k in set.iter() {
                let list = &mut buckets[k];
                let running_max_finish = list
                    .last()
                    .and_then(|b| b.entries.last())
                    .map_or(finish, |w| w.running_max_finish.max(finish));
                if list.last().is_none_or(|b| b.epoch != epoch) {
                    list.push(EpochBucket {
                        epoch,
                        entries: Vec::new(),
                        aggregate: RangeSignature::empty(),
                    });
                }
                let bucket = list.last_mut().expect("just pushed");
                bucket.aggregate.merge(&sig);
                bucket.entries.push(Window {
                    tid,
                    task: task as u64,
                    start,
                    finish,
                    running_max_finish,
                    sig: sig.clone(),
                });
                window_len[k] += 1;
                // Periodically drop entries that can no longer overlap any
                // future task (every future start is at least the minimum
                // worker clock), rebuilding the touched buckets' aggregates.
                if window_len[k].is_multiple_of(4096) {
                    let min_clock = clocks.iter().copied().min().expect("threads > 0");
                    for b in list.iter_mut() {
                        let before = b.entries.len();
                        b.entries.retain(|e| e.finish > min_clock);
                        if b.entries.len() != before {
                            b.aggregate = RangeSignature::empty();
                            for e in &b.entries {
                                b.aggregate.merge(&e.sig);
                            }
                        }
                    }
                    list.retain(|b| !b.entries.is_empty());
                }
            }
        }
        for (tid, &(tasks, accesses)) in elided.iter().enumerate() {
            if tasks > 0 {
                sinks.workers[tid].emit_at(
                    clocks[tid],
                    Event::CheckElided {
                        epoch: epoch as u32,
                        tasks,
                        accesses,
                    },
                );
            }
        }
        flush_summary!(epoch);
        sinks.workers[0].emit_at(
            clocks[0],
            Event::EpochEnd {
                epoch: epoch as u32,
            },
        );
    }

    emit_census!();
    let checker_max = checker_clocks.into_iter().max().unwrap_or(t0);
    let end = clocks.into_iter().max().unwrap_or(t0).max(checker_max);
    (PassEnd::Completed, end)
}

/// One shard's conflict scan for a single probe: a reverse bucket walk over
/// the shard's retained window (reverse admission order). Same-epoch buckets
/// never conflict (their tasks are mutually independent by construction);
/// with summaries on, a cross-epoch bucket whose aggregate is disjoint from
/// the probe is skipped whole for one comparison. Returns the earlier half
/// of the first conflicting pair, accumulating the comparison/skip counts
/// the shard's service time is billed by.
#[allow(clippy::too_many_arguments)]
fn scan_shard(
    buckets: &[EpochBucket],
    sig: &RangeSignature,
    tid: usize,
    start: u64,
    finish: u64,
    epoch: usize,
    epoch_summaries: bool,
    comparisons: &mut u64,
    skips: &mut u64,
) -> Option<(usize, usize, u64)> {
    'scan: for bucket in buckets.iter().rev() {
        if bucket
            .entries
            .last()
            .is_none_or(|e| e.running_max_finish <= start)
        {
            break; // nothing this old (or older) overlaps
        }
        let oldest_done = bucket
            .entries
            .first()
            .is_none_or(|e| e.running_max_finish <= start);
        if bucket.epoch != epoch {
            let overlaps = |e: &Window| e.tid != tid && e.start < finish && start < e.finish;
            if epoch_summaries {
                let any = bucket
                    .entries
                    .iter()
                    .rev()
                    .take_while(|e| e.running_max_finish > start)
                    .any(overlaps);
                if any {
                    *comparisons += 1; // the aggregate test
                    if !bucket.aggregate.conflicts_with(sig) {
                        *skips += 1;
                    } else {
                        for entry in bucket.entries.iter().rev() {
                            if entry.running_max_finish <= start {
                                break;
                            }
                            if overlaps(entry) {
                                *comparisons += 1;
                                if entry.sig.conflicts_with(sig) {
                                    return Some((entry.tid, bucket.epoch, entry.task));
                                }
                            }
                        }
                    }
                }
            } else {
                for entry in bucket.entries.iter().rev() {
                    if entry.running_max_finish <= start {
                        break 'scan; // nothing older overlaps
                    }
                    if overlaps(entry) {
                        *comparisons += 1;
                        if entry.sig.conflicts_with(sig) {
                            return Some((entry.tid, bucket.epoch, entry.task));
                        }
                    }
                }
            }
        }
        if oldest_done {
            break; // everything older has retired past the probe
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::barrier;
    use crate::seq::sequential;
    use crate::workload::{SimWorkload, UniformWorkload};
    use crossinvoc_runtime::signature::AccessKind;

    #[test]
    fn independent_work_scales_past_barriers() {
        let w = UniformWorkload::independent(500, 24, 2_000);
        let seq = sequential(&w, &CostModel::default());
        let bar = barrier(&w, 8, &CostModel::default());
        let spec = speccross(&w, &SpecSimParams::with_threads(8), &CostModel::default());
        assert_eq!(spec.stats.misspeculations, 0);
        assert!(
            spec.speedup_over(seq.total_ns) > bar.speedup_over(seq.total_ns),
            "speccross {} vs barrier {}",
            spec.speedup_over(seq.total_ns),
            bar.speedup_over(seq.total_ns)
        );
    }

    /// Epoch e's task t writes cell t; epoch e+1's task t reads cell t:
    /// same worker owns the chain, so overlap never conflicts — but a
    /// *shifted* pattern does.
    struct Shifted {
        epochs: usize,
        tasks: usize,
    }
    impl SimWorkload for Shifted {
        fn num_invocations(&self) -> usize {
            self.epochs
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            self.tasks
        }
        fn iteration_cost(&self, _inv: usize, iter: usize) -> u64 {
            1_000 + (iter as u64 % 7) * 300
        }
        fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
            out.push(((iter + inv) % self.tasks, AccessKind::Write));
        }
        fn address_space(&self) -> Option<usize> {
            Some(self.tasks)
        }
    }

    #[test]
    fn ungated_conflicting_workload_misspeculates() {
        let w = Shifted {
            epochs: 40,
            tasks: 16,
        };
        let r = speccross(&w, &SpecSimParams::with_threads(8), &CostModel::default());
        assert!(
            r.stats.misspeculations > 0,
            "shifted writes across workers must conflict when ungated"
        );
        // All tasks still execute (possibly more than once after recovery).
        assert!(r.stats.tasks >= 40 * 16);
    }

    #[test]
    fn gating_at_one_epoch_distance_prevents_misspeculation() {
        let w = Shifted {
            epochs: 40,
            tasks: 16,
        };
        // Closest conflicting pair is one epoch minus one task apart.
        let params = SpecSimParams::with_threads(8).spec_distance(Some(15));
        let r = speccross(&w, &params, &CostModel::default());
        assert_eq!(r.stats.misspeculations, 0);
        assert_eq!(r.stats.tasks, 40 * 16);
        assert!(r.stats.stalls > 0, "the gate must have engaged");
    }

    /// Epoch e's task t writes cell `e*tasks + t`: epochs touch disjoint
    /// address clusters, so cross-epoch overlaps never conflict and every
    /// bucket aggregate is disjoint from every probe — the epoch-summary
    /// fast path's best case.
    struct Clustered {
        epochs: usize,
        tasks: usize,
    }
    impl SimWorkload for Clustered {
        fn num_invocations(&self) -> usize {
            self.epochs
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            self.tasks
        }
        fn iteration_cost(&self, _inv: usize, iter: usize) -> u64 {
            500 + (iter as u64 % 5) * 1_000
        }
        fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
            out.push((inv * self.tasks + iter, AccessKind::Write));
        }
        fn invocation_is_proven(&self, _inv: usize) -> bool {
            true // disjoint per-epoch clusters: provably conflict-free
        }
        fn address_space(&self) -> Option<usize> {
            Some(self.epochs * self.tasks)
        }
    }

    #[test]
    fn epoch_summaries_skip_disjoint_buckets_without_changing_verdicts() {
        let w = Clustered {
            epochs: 60,
            tasks: 32,
        };
        let on = speccross(
            &w,
            &SpecSimParams::with_threads(32).trace(1 << 17),
            &CostModel::default(),
        );
        let off = speccross(
            &w,
            &SpecSimParams::with_threads(32)
                .trace(1 << 17)
                .epoch_summaries(false),
            &CostModel::default(),
        );
        assert_eq!(on.stats.misspeculations, 0);
        assert_eq!(off.stats.misspeculations, 0);
        assert_eq!(on.stats.tasks, off.stats.tasks);
        assert!(on.stats.checker_epoch_skips > 0, "buckets must be skipped");
        assert_eq!(off.stats.checker_epoch_skips, 0);
        let comparisons = |r: &crate::result::SimResult| {
            crossinvoc_runtime::trace::TraceReport::from_trace(r.trace.as_ref().unwrap())
                .checker_comparisons
        };
        let (c_on, c_off) = (comparisons(&on), comparisons(&off));
        assert!(
            c_on * 5 <= c_off,
            "aggregate tests must replace per-entry scans: {c_on} vs {c_off}"
        );
        assert!(
            on.total_ns <= off.total_ns,
            "a faster checker can only help"
        );
    }

    #[test]
    fn epoch_summaries_preserve_misspeculation_verdicts() {
        // A genuinely conflicting workload: the fast path must not change
        // what the checker decides, only how much it scans.
        let w = Shifted {
            epochs: 40,
            tasks: 16,
        };
        let on = speccross(&w, &SpecSimParams::with_threads(8), &CostModel::default());
        let off = speccross(
            &w,
            &SpecSimParams::with_threads(8).epoch_summaries(false),
            &CostModel::default(),
        );
        assert_eq!(on.stats.misspeculations, off.stats.misspeculations);
        assert_eq!(on.stats.tasks, off.stats.tasks);
        assert_eq!(on.stats.check_requests, off.stats.check_requests);
    }

    #[test]
    fn injected_misspeculation_recovers_and_completes() {
        let w = UniformWorkload::independent(100, 16, 1_000);
        let clean = speccross(&w, &SpecSimParams::with_threads(4), &CostModel::default());
        let params = SpecSimParams::with_threads(4).inject_misspec_at_task(Some(800));
        let r = speccross(&w, &params, &CostModel::default());
        assert_eq!(r.stats.misspeculations, 1);
        assert!(r.total_ns > clean.total_ns, "recovery has a cost");
    }

    #[test]
    fn more_checkpoints_cost_more_without_misspeculation() {
        let w = UniformWorkload::independent(100, 16, 1_000);
        let sparse = speccross(
            &w,
            &SpecSimParams::with_threads(4).checkpoint_every(50),
            &CostModel::default(),
        );
        let dense = speccross(
            &w,
            &SpecSimParams::with_threads(4).checkpoint_every(2),
            &CostModel::default(),
        );
        assert!(dense.total_ns > sparse.total_ns);
        assert!(dense.stats.checkpoints > sparse.stats.checkpoints);
    }

    #[test]
    fn more_checkpoints_reduce_reexecution_after_misspeculation() {
        // Kernel cost dominates checkpoint cost, as in the paper's
        // programs, so saved re-execution outweighs extra checkpoints.
        let w = UniformWorkload::independent(100, 16, 50_000);
        let inject = Some(95 * 16 + 3); // late misspeculation
        let sparse = speccross(
            &w,
            &SpecSimParams::with_threads(4)
                .checkpoint_every(1000)
                .inject_misspec_at_task(inject),
            &CostModel::default(),
        );
        let dense = speccross(
            &w,
            &SpecSimParams::with_threads(4)
                .checkpoint_every(10)
                .inject_misspec_at_task(inject),
            &CostModel::default(),
        );
        // With one checkpoint at epoch 0, recovery re-executes ~95 epochs;
        // with checkpoints every 10 epochs it re-executes at most ~15.
        assert!(
            dense.total_ns < sparse.total_ns,
            "dense {} vs sparse {}",
            dense.total_ns,
            sparse.total_ns
        );
    }

    #[test]
    fn checker_requests_require_signatures_and_epoch_overlap() {
        let w = UniformWorkload::same_cell(10, 8, 1_000);
        let r = speccross(&w, &SpecSimParams::with_threads(4), &CostModel::default());
        assert!(
            r.stats.check_requests > 0 && r.stats.check_requests <= 80,
            "epoch-boundary overlaps must check, lockstep interiors may skip: {}",
            r.stats.check_requests
        );
        let w2 = UniformWorkload::independent(10, 8, 1_000);
        let r2 = speccross(&w2, &SpecSimParams::with_threads(4), &CostModel::default());
        assert_eq!(r2.stats.check_requests, 0, "empty signatures are skipped");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let w = UniformWorkload::independent(1, 1, 1);
        speccross(&w, &SpecSimParams::with_threads(0), &CostModel::default());
    }

    #[test]
    fn injected_worker_panic_rolls_back_without_misspeculation() {
        let w = UniformWorkload::independent(60, 16, 1_000);
        let clean = speccross(&w, &SpecSimParams::with_threads(4), &CostModel::default());
        let params =
            SpecSimParams::with_threads(4).fault_plan(FaultPlan::default().worker_panic_at(40, 3));
        let r = speccross(&w, &params, &CostModel::default());
        assert_eq!(
            r.stats.misspeculations, 0,
            "a panic is not a misspeculation"
        );
        assert!(!r.degraded);
        assert!(r.stats.tasks >= 60 * 16, "rollback re-executes epochs");
        assert!(r.total_ns > clean.total_ns, "recovery has a cost");
    }

    #[test]
    fn checker_death_degrades_rest_of_region_to_barriers() {
        let w = UniformWorkload::same_cell(40, 8, 1_000);
        let params =
            SpecSimParams::with_threads(4).fault_plan(FaultPlan::default().checker_death_at(10));
        let r = speccross(&w, &params, &CostModel::default());
        assert!(r.degraded, "losing the checker must degrade the region");
        assert!(r.stats.tasks >= 40 * 8, "every epoch still executes");
    }

    #[test]
    fn forced_false_positive_counts_as_misspeculation() {
        let w = UniformWorkload::same_cell(40, 8, 1_000);
        let params =
            SpecSimParams::with_threads(4).fault_plan(FaultPlan::default().false_positive_at(20));
        let r = speccross(&w, &params, &CostModel::default());
        assert!(r.stats.misspeculations >= 1);
        assert!(!r.degraded);
        assert!(r.stats.tasks >= 40 * 8);
    }

    #[test]
    fn snapshot_failure_keeps_previous_checkpoint() {
        let w = UniformWorkload::independent(30, 8, 1_000);
        let clean = speccross(
            &w,
            &SpecSimParams::with_threads(4).checkpoint_every(10),
            &CostModel::default(),
        );
        let params = SpecSimParams::with_threads(4)
            .checkpoint_every(10)
            .fault_plan(FaultPlan::default().snapshot_failure_at(10));
        let r = speccross(&w, &params, &CostModel::default());
        assert_eq!(r.stats.checkpoints, clean.stats.checkpoints - 1);
    }

    #[test]
    fn restore_failure_costs_an_extra_recovery() {
        let w = UniformWorkload::independent(60, 16, 1_000);
        let base = SpecSimParams::with_threads(4).inject_misspec_at_task(Some(500));
        let plain = speccross(&w, &base, &CostModel::default());
        let faulty = speccross(
            &w,
            &base
                .clone()
                .fault_plan(FaultPlan::default().restore_failure()),
            &CostModel::default(),
        );
        assert_eq!(
            faulty.total_ns,
            plain.total_ns + CostModel::default().recovery_ns,
            "one failed restore retries once at one extra recovery cost"
        );
    }

    #[test]
    fn traced_run_reconstructs_misspeculation_ledger() {
        use crossinvoc_runtime::trace::TraceReport;
        let w = UniformWorkload::independent(100, 16, 1_000);
        let params = SpecSimParams::with_threads(4)
            .inject_misspec_at_task(Some(800))
            .trace(1 << 14);
        let r = speccross(&w, &params, &CostModel::default());
        let trace = r.trace.expect("tracing was requested");
        // Round-trips through the JSONL wire format losslessly.
        let parsed =
            crossinvoc_runtime::trace::Trace::from_jsonl(&trace.to_jsonl()).expect("valid JSONL");
        assert_eq!(parsed, trace);
        let report = TraceReport::from_trace(&trace);
        assert_eq!(report.misspeculations.len(), 1);
        // Task 800 = epoch 50, task 0 on worker 0 (round-robin over 4).
        let m = &report.misspeculations[0];
        assert_eq!(m.later.1, 50);
        assert_eq!(m.later.2, 0);
        assert!(!report.threads.is_empty());
    }

    #[test]
    fn untraced_run_has_no_trace() {
        let w = UniformWorkload::independent(10, 8, 1_000);
        let r = speccross(&w, &SpecSimParams::with_threads(4), &CostModel::default());
        assert!(r.trace.is_none());
    }

    #[test]
    fn traced_runs_are_deterministic() {
        let w = UniformWorkload::same_cell(50, 8, 1_000);
        let plan = FaultPlan::random(0xC0FFEE, 50, 8, 4);
        let p1 = SpecSimParams::with_threads(4)
            .fault_plan(plan.clone())
            .trace(1 << 14);
        let p2 = SpecSimParams::with_threads(4)
            .fault_plan(plan)
            .trace(1 << 14);
        let a = speccross(&w, &p1, &CostModel::default());
        let b = speccross(&w, &p2, &CostModel::default());
        assert_eq!(a, b, "virtual-time traces must replay identically");
        assert!(a.trace.is_some());
    }

    #[test]
    fn single_shard_is_byte_identical_to_the_unsharded_model() {
        // checker_shards = 1 must not merely agree — the whole SimResult,
        // trace included, must be what the pre-sharding simulator produced.
        for w in [
            UniformWorkload::same_cell(50, 8, 1_000),
            UniformWorkload::independent(50, 8, 1_000),
        ] {
            let base = SpecSimParams::with_threads(4).trace(1 << 14);
            let explicit = base.clone().checker_shards(1);
            let a = speccross(&w, &base, &CostModel::default());
            let b = speccross(&w, &explicit, &CostModel::default());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sharding_preserves_verdicts_on_clustered_epochs() {
        // Disjoint per-epoch address clusters: no conflicts at any shard
        // count, and splitting the admission work can only shorten the
        // checker's critical path.
        let w = Clustered {
            epochs: 60,
            tasks: 32,
        };
        let one = speccross(&w, &SpecSimParams::with_threads(32), &CostModel::default());
        for shards in [2, 4, 8] {
            let n = speccross(
                &w,
                &SpecSimParams::with_threads(32).checker_shards(shards),
                &CostModel::default(),
            );
            assert_eq!(n.stats.misspeculations, 0);
            assert_eq!(n.stats.tasks, one.stats.tasks);
            assert_eq!(n.stats.check_requests, one.stats.check_requests);
            assert!(
                n.total_ns <= one.total_ns,
                "sharding the checker can only help here: {} vs {}",
                n.total_ns,
                one.total_ns
            );
        }
    }

    #[test]
    fn sharded_conflicting_workload_still_misspeculates() {
        // Range-signature conflicts share an address, so the shard owning
        // it sees both sides: sharding must never lose a real conflict.
        let w = Shifted {
            epochs: 40,
            tasks: 16,
        };
        for shards in [2, 8] {
            let r = speccross(
                &w,
                &SpecSimParams::with_threads(8).checker_shards(shards),
                &CostModel::default(),
            );
            assert!(
                r.stats.misspeculations > 0,
                "shifted writes must still conflict with {shards} shards"
            );
            assert!(r.stats.tasks >= 40 * 16);
        }
    }

    #[test]
    fn sharded_trace_has_one_census_row_per_shard_per_pass() {
        use crossinvoc_runtime::trace::checker_shard_of_tid;
        let w = UniformWorkload::same_cell(30, 8, 1_000);
        let r = speccross(
            &w,
            &SpecSimParams::with_threads(4)
                .checker_shards(3)
                .trace(1 << 14),
            &CostModel::default(),
        );
        let trace = r.trace.expect("tracing was requested");
        let parsed =
            crossinvoc_runtime::trace::Trace::from_jsonl(&trace.to_jsonl()).expect("valid JSONL");
        assert_eq!(parsed, trace, "checker_shard rows survive the wire");
        let mut per_shard = [0u32; 3];
        for rec in trace.records() {
            if let Event::CheckerShard { shard, shards, .. } = rec.event {
                assert_eq!(shards, 3);
                assert_eq!(checker_shard_of_tid(rec.tid), Some(shard as usize));
                per_shard[shard as usize] += 1;
            }
        }
        // One pass (no faults): exactly one row per shard.
        assert_eq!(per_shard, [1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "checker_shards")]
    fn zero_shards_panics() {
        let _ = SpecSimParams::with_threads(2).checker_shards(0);
    }

    #[test]
    fn elision_skips_proven_invocations_without_changing_verdicts() {
        let w = Clustered {
            epochs: 60,
            tasks: 32,
        };
        let off = speccross(
            &w,
            &SpecSimParams::with_threads(32).trace(1 << 17),
            &CostModel::default(),
        );
        let on = speccross(
            &w,
            &SpecSimParams::with_threads(32).trace(1 << 17).elide(true),
            &CostModel::default(),
        );
        assert_eq!(on.stats.misspeculations, off.stats.misspeculations);
        assert_eq!(on.stats.tasks, off.stats.tasks);
        assert_eq!(on.stats.check_requests, 0, "fully-proven region");
        assert!(on.stats.elided_signatures > 0);
        assert_eq!(on.stats.elided_admits, on.stats.elided_signatures);
        assert!(on.stats.proven_accesses >= on.stats.elided_signatures);
        assert_eq!(off.stats.elided_signatures, 0, "off by default");
        assert!(
            on.total_ns <= off.total_ns,
            "a checker with no work can only help"
        );
        let report = crossinvoc_runtime::trace::TraceReport::from_trace(on.trace.as_ref().unwrap());
        assert_eq!(report.elided_tasks, on.stats.elided_signatures);
        assert_eq!(report.elided_accesses, on.stats.proven_accesses);
    }

    #[test]
    fn elide_is_inert_on_unproven_invocations() {
        // Shifted never reports proven, so elide(true) must be the identity
        // — trace and all.
        let w = Shifted {
            epochs: 40,
            tasks: 16,
        };
        let base = SpecSimParams::with_threads(8).trace(1 << 14);
        let off = speccross(&w, &base, &CostModel::default());
        let on = speccross(&w, &base.clone().elide(true), &CostModel::default());
        assert_eq!(on, off);
    }

    #[test]
    fn elision_of_proven_same_cell_chains_preserves_verdicts() {
        // same_cell: iteration i writes cell i in every epoch — the chain
        // stays on one worker under round-robin, so it is provably
        // conflict-free and the full path never misspeculates either.
        let w = UniformWorkload::same_cell(50, 8, 1_000);
        let off = speccross(&w, &SpecSimParams::with_threads(4), &CostModel::default());
        let on = speccross(
            &w.clone().assume_proven(),
            &SpecSimParams::with_threads(4).elide(true),
            &CostModel::default(),
        );
        assert_eq!(on.stats.misspeculations, off.stats.misspeculations);
        assert_eq!(on.stats.tasks, off.stats.tasks);
        assert_eq!(on.stats.check_requests, 0);
        assert!(on.total_ns <= off.total_ns);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let w = UniformWorkload::same_cell(50, 8, 1_000);
        let plan = FaultPlan::random(0xC0FFEE, 50, 8, 4);
        let p1 = SpecSimParams::with_threads(4).fault_plan(plan.clone());
        let p2 = SpecSimParams::with_threads(4).fault_plan(plan);
        let a = speccross(&w, &p1, &CostModel::default());
        let b = speccross(&w, &p2, &CostModel::default());
        assert_eq!(a, b, "the same plan must replay identically");
    }
}
