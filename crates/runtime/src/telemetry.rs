//! Live telemetry plane for the region server: per-region QoS registry,
//! flight recorder, and exposition.
//!
//! Everything the rest of the suite reports — [`crate::metrics`] summaries,
//! [`crate::trace`] JSONL — is *post-hoc*: it appears only after a region
//! joins. A long-lived [`crate::pool::WorkerPool`] serving many concurrent
//! regions needs the opposite: a cheap, always-on view of what is happening
//! *right now* (is the pool saturated? is a gang starving in the admission
//! queue? is one region misspeculating in a storm?). That signal is also the
//! prerequisite for adaptive technique re-promotion (ROADMAP): choosing
//! between DOMORE and SPECCROSS at runtime requires observed behaviour, not
//! end-of-run reports.
//!
//! Three pieces:
//!
//! * [`ServerRegistry`] — pool-wide and per-region gauges / counters /
//!   histograms. Hot-path updates are relaxed atomic adds (the engines keep
//!   writing the same [`Metrics`] they always did — when a region is
//!   registered, its [`RegionTelemetry`] *owns* that `Metrics`, so the live
//!   view and the final [`MetricsSummary`] are one object and cannot
//!   disagree). Pool-level rates use a [`ShardedCounter`] (one cache-padded
//!   slot per pool thread) so concurrent slots never contend on one line.
//!   Reading is [`ServerRegistry::snapshot`]: plain loads, no locks held
//!   across user code, workers never stop.
//! * [`FlightRecorder`] — the bounded [`crate::trace::TraceSink`] rings are
//!   already last-N-events recorders (oldest overwritten, drops counted).
//!   The recorder makes them *useful in anger*: when a region faults,
//!   degrades, or blows a latency deadline, its ring contents are dumped as
//!   post-mortem JSONL — with exact drop accounting — for exactly the
//!   window that mattered.
//! * Exposition — [`RegistrySnapshot::to_json`] (one line, schema
//!   `crossinvoc-telemetry-1`) and [`RegistrySnapshot::to_prometheus`]
//!   (text format 0.0.4). The snapshot structs have public fields so the
//!   virtual-time simulator can emit the identical schema without an
//!   `Instant` in sight.
//!
//! # Consistency contract
//!
//! Mid-run snapshots are **approximate** exactly like
//! [`crate::stats::RegionStats::summary`]: counters may be mutually
//! inconsistent while writers run. Once a region has finished (its gang
//! joined), its snapshot is **exact** and equals the `MetricsSummary` in the
//! engine's report, because both read the same quiesced `Metrics`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use crossinvoc_runtime::telemetry::{FlightRecorder, ServerRegistry};
//!
//! let registry = Arc::new(ServerRegistry::new(4).with_recorder(FlightRecorder::new(256)));
//! let cell = registry.register(1, "speccross", 3);
//! cell.mark_running();
//! cell.metrics().stats().add_task();
//! cell.complete(0, false, None);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.regions.len(), 1);
//! assert_eq!(snap.regions[0].metrics.stats.tasks, 1);
//! println!("{}", snap.to_prometheus());
//! ```

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::metrics::Histogram;
use crate::metrics::{HistogramSummary, Metrics, MetricsSummary};
use crate::trace::Trace;

/// Sentinel for "not yet" in the nanosecond-offset fields.
const NOT_YET: u64 = u64::MAX;

/// A counter sharded across cache-padded slots so concurrent writers (one
/// per pool thread) never contend on a single cache line.
///
/// [`ShardedCounter::add`] is one relaxed `fetch_add` on the caller's own
/// slot; [`ShardedCounter::sum`] folds all slots with acquire loads.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Box<[CachePadded<AtomicU64>]>,
}

impl ShardedCounter {
    /// A zeroed counter with `shards` slots (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedCounter {
            shards: (0..shards.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `v` to slot `shard % shards` (relaxed).
    pub fn add(&self, shard: usize, v: u64) {
        self.shards[shard % self.shards.len()].fetch_add(v, Ordering::Relaxed);
    }

    /// Sum over all slots. Approximate while writers run, exact once they
    /// are quiesced (same contract as [`crate::stats::RegionStats`]).
    pub fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Acquire)).sum()
    }
}

/// Lifecycle state of a region as seen by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RegionState {
    /// Registered, gang not yet admitted / engine not yet running.
    Queued = 0,
    /// The engine is executing the region.
    Running = 1,
    /// Finished successfully (contained faults possible — see
    /// [`RegionSnapshot::faults`]).
    Done = 2,
    /// Finished with a hard error (the engine returned `Err`).
    Faulted = 3,
}

impl RegionState {
    fn from_u8(v: u8) -> RegionState {
        match v {
            1 => RegionState::Running,
            2 => RegionState::Done,
            3 => RegionState::Faulted,
            _ => RegionState::Queued,
        }
    }

    /// Lower-case wire name (`queued` / `running` / `done` / `faulted`).
    pub fn as_str(&self) -> &'static str {
        match self {
            RegionState::Queued => "queued",
            RegionState::Running => "running",
            RegionState::Done => "done",
            RegionState::Faulted => "faulted",
        }
    }
}

impl fmt::Display for RegionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What tripped a flight-recorder dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpTrigger {
    /// The region faulted: hard engine error, or contained worker faults.
    Fault,
    /// The region degraded to sequential re-execution (SPECCROSS give-up).
    Degrade,
    /// The region exceeded the recorder's latency deadline.
    Deadline,
}

impl DumpTrigger {
    /// Lower-case wire name (`fault` / `degrade` / `deadline`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DumpTrigger::Fault => "fault",
            DumpTrigger::Degrade => "degrade",
            DumpTrigger::Deadline => "deadline",
        }
    }
}

impl fmt::Display for DumpTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One post-mortem dump captured by the [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Region the dump belongs to.
    pub region_id: u64,
    /// Why the dump was taken.
    pub trigger: DumpTrigger,
    /// Records captured (the last-N window that survived the ring).
    pub records: usize,
    /// Records lost to ring overflow before the dump — exact, from the
    /// sinks' own drop counters.
    pub dropped: u64,
    /// The window serialized as trace JSONL (schema per
    /// `docs/OBSERVABILITY.md`), parseable by
    /// [`Trace::from_jsonl`].
    pub jsonl: String,
}

/// Always-on last-N-events recorder dumped automatically on fault, degrade,
/// or deadline overrun.
///
/// The recorder does not capture events itself — the engines' per-thread
/// [`crate::trace::TraceSink`] rings already do, bounded, with drop
/// accounting. The recorder decides *when that window is worth keeping*:
/// [`RegionTelemetry::complete`] / [`RegionTelemetry::fail`] hand it the
/// region's merged trace and it stores (and optionally writes to disk) a
/// [`FlightDump`] when a trigger fires.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    deadline_ns: u64,
    dump_dir: Option<PathBuf>,
    dumps: Mutex<Vec<FlightDump>>,
    taken: AtomicU64,
}

impl FlightRecorder {
    /// A recorder asking for per-thread rings of `capacity` records and no
    /// latency deadline.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            deadline_ns: NOT_YET,
            dump_dir: None,
            dumps: Mutex::new(Vec::new()),
            taken: AtomicU64::new(0),
        }
    }

    /// Sets the region-latency deadline: a region whose wall-clock latency
    /// exceeds it dumps with [`DumpTrigger::Deadline`] even if it succeeded.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline_ns = deadline.as_nanos().min(u64::MAX as u128 - 1) as u64;
        self
    }

    /// Additionally writes each dump to
    /// `dir/region-<id>-<trigger>-<seq>.flight.jsonl` (best effort: I/O
    /// errors are swallowed, the in-memory dump is always kept).
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dump_dir = Some(dir.into());
        self
    }

    /// Ring capacity regions should record with (the server stamps this
    /// into engine configs that have tracing off, making the rings
    /// always-on recorders).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The latency deadline in nanoseconds, if one was set.
    pub fn deadline_ns(&self) -> Option<u64> {
        (self.deadline_ns != NOT_YET).then_some(self.deadline_ns)
    }

    /// Total dumps taken so far (cheap; no lock).
    pub fn dumps_taken(&self) -> u64 {
        self.taken.load(Ordering::Acquire)
    }

    /// Clones the dumps captured so far.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().clone()
    }

    /// Takes a dump of `trace` for `region_id`.
    pub fn record(&self, region_id: u64, trigger: DumpTrigger, trace: &Trace) {
        let dump = FlightDump {
            region_id,
            trigger,
            records: trace.records().len(),
            dropped: trace.dropped(),
            jsonl: trace.to_jsonl(),
        };
        let seq = self.taken.fetch_add(1, Ordering::AcqRel);
        if let Some(dir) = &self.dump_dir {
            let path = dir.join(format!(
                "region-{region_id}-{}-{seq}.flight.jsonl",
                trigger.as_str()
            ));
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(path, &dump.jsonl);
        }
        self.dumps.lock().push(dump);
    }
}

/// Live per-region telemetry cell.
///
/// Handed to an engine via its config (`SpecConfig::telemetry` /
/// `DomoreConfig::telemetry`); the engine then uses
/// [`RegionTelemetry::metrics`] as its metrics registry — the registry's
/// live view and the engine's final report read the *same* counters — and
/// drives the lifecycle: [`mark_running`](Self::mark_running) when
/// execution starts, [`complete`](Self::complete) /
/// [`fail`](Self::fail) exactly once at the end (later calls are ignored,
/// so an outer safety net can call them unconditionally).
#[derive(Debug)]
pub struct RegionTelemetry {
    region_id: u64,
    kind: &'static str,
    gang: usize,
    origin: Instant,
    state: AtomicU8,
    finished: AtomicBool,
    started_ns: AtomicU64,
    finished_ns: AtomicU64,
    queue_wait_ns: AtomicU64,
    degrade_events: AtomicU64,
    faults: AtomicU64,
    metrics: Metrics,
    registry: Weak<ServerRegistry>,
}

impl RegionTelemetry {
    /// The region-server submission id.
    pub fn region_id(&self) -> u64 {
        self.region_id
    }

    /// Engine kind label (`"speccross"`, `"speccross-barrier"`,
    /// `"domore"`, …).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Gang size (worker threads + service threads) the region demands.
    pub fn gang(&self) -> usize {
        self.gang
    }

    /// The metrics registry the engine should write into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current lifecycle state.
    pub fn state(&self) -> RegionState {
        RegionState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Marks the engine as executing (first call wins; records the start
    /// time for latency accounting).
    pub fn mark_running(&self) {
        let now = self.origin.elapsed().as_nanos() as u64;
        if self
            .started_ns
            .compare_exchange(NOT_YET, now, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.state
                .store(RegionState::Running as u8, Ordering::Release);
        }
    }

    /// Accumulates gang-admission queue wait attributed to this region (the
    /// pool reports the same sample into the pool-wide histogram).
    pub fn add_queue_wait(&self, ns: u64) {
        self.queue_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Counts one degradation event (SPECCROSS falling back to sequential
    /// re-execution).
    pub fn add_degrade_event(&self) {
        self.degrade_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the region finished successfully. `contained_faults` counts
    /// worker faults the engine contained and recovered from; `degraded`
    /// says whether any part ran degraded. `trace` (when available) feeds
    /// the flight recorder if a dump trigger fires. Idempotent: only the
    /// first `complete`/`fail` takes effect.
    pub fn complete(&self, contained_faults: u64, degraded: bool, trace: Option<&Trace>) {
        self.finish(false, contained_faults, degraded, trace);
    }

    /// Marks the region failed (hard engine error). Idempotent: only the
    /// first `complete`/`fail` takes effect.
    pub fn fail(&self, trace: Option<&Trace>) {
        self.finish(true, 0, false, trace);
    }

    fn finish(
        &self,
        hard_fail: bool,
        contained_faults: u64,
        degraded: bool,
        trace: Option<&Trace>,
    ) {
        if self.finished.swap(true, Ordering::AcqRel) {
            return;
        }
        self.faults
            .fetch_add(contained_faults + u64::from(hard_fail), Ordering::Relaxed);
        if degraded && self.degrade_events.load(Ordering::Relaxed) == 0 {
            // Degradation reported only through the summary flag (e.g. a
            // path that never called add_degrade_event): still count one.
            self.degrade_events.fetch_add(1, Ordering::Relaxed);
        }
        let now = self.origin.elapsed().as_nanos() as u64;
        self.finished_ns.store(now, Ordering::Release);
        let state = if hard_fail {
            RegionState::Faulted
        } else {
            RegionState::Done
        };
        self.state.store(state as u8, Ordering::Release);
        let started = self.started_ns.load(Ordering::Acquire);
        let latency = if started == NOT_YET {
            0
        } else {
            now.saturating_sub(started)
        };
        let Some(registry) = self.registry.upgrade() else {
            return;
        };
        registry.region_latency_ns.record(latency);
        let Some(recorder) = &registry.recorder else {
            return;
        };
        let faulted = hard_fail || contained_faults > 0;
        let degraded = degraded || self.degrade_events.load(Ordering::Relaxed) > 0;
        let trigger = if faulted {
            Some(DumpTrigger::Fault)
        } else if degraded {
            Some(DumpTrigger::Degrade)
        } else if latency > recorder.deadline_ns {
            Some(DumpTrigger::Deadline)
        } else {
            None
        };
        if let (Some(trigger), Some(trace)) = (trigger, trace) {
            recorder.record(self.region_id, trigger, trace);
        }
    }

    /// Plain-value snapshot of this region (approximate while the region
    /// runs, exact once finished — see the [module docs](self)).
    pub fn snapshot(&self) -> RegionSnapshot {
        let now = self.origin.elapsed().as_nanos() as u64;
        let started = self.started_ns.load(Ordering::Acquire);
        let finished = self.finished_ns.load(Ordering::Acquire);
        let latency_ns = match (started, finished) {
            (NOT_YET, _) => 0,
            (s, NOT_YET) => now.saturating_sub(s),
            (s, f) => f.saturating_sub(s),
        };
        RegionSnapshot {
            region_id: self.region_id,
            kind: self.kind.to_string(),
            gang: self.gang,
            state: self.state(),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Acquire),
            degrade_events: self.degrade_events.load(Ordering::Acquire),
            faults: self.faults.load(Ordering::Acquire),
            latency_ns,
            metrics: self.metrics.snapshot(),
        }
    }
}

/// The pool-wide + per-region registry behind the region server.
///
/// Constructed with the pool size, wrapped in an `Arc`, attached to the
/// [`crate::pool::WorkerPool`] (admission / busy-time hooks) and handed a
/// [`RegionTelemetry`] cell per submission via
/// [`ServerRegistry::register`].
#[derive(Debug)]
pub struct ServerRegistry {
    origin: Instant,
    pool_slots: usize,
    slots_busy: AtomicUsize,
    admissions: AtomicU64,
    queue_wait_ns: Histogram,
    busy_ns: ShardedCounter,
    region_latency_ns: Histogram,
    regions: Mutex<Vec<Arc<RegionTelemetry>>>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl ServerRegistry {
    /// A registry for a pool of `pool_slots` worker threads.
    pub fn new(pool_slots: usize) -> Self {
        ServerRegistry {
            origin: Instant::now(),
            pool_slots,
            slots_busy: AtomicUsize::new(0),
            admissions: AtomicU64::new(0),
            queue_wait_ns: Histogram::new(),
            busy_ns: ShardedCounter::new(pool_slots),
            region_latency_ns: Histogram::new(),
            regions: Mutex::new(Vec::new()),
            recorder: None,
        }
    }

    /// Attaches a flight recorder.
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = Some(Arc::new(recorder));
        self
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Pool size this registry was built for.
    pub fn pool_slots(&self) -> usize {
        self.pool_slots
    }

    /// Registers a region and returns its telemetry cell.
    pub fn register(
        self: &Arc<Self>,
        region_id: u64,
        kind: &'static str,
        gang: usize,
    ) -> Arc<RegionTelemetry> {
        let cell = Arc::new(RegionTelemetry {
            region_id,
            kind,
            gang,
            origin: self.origin,
            state: AtomicU8::new(RegionState::Queued as u8),
            finished: AtomicBool::new(false),
            started_ns: AtomicU64::new(NOT_YET),
            finished_ns: AtomicU64::new(NOT_YET),
            queue_wait_ns: AtomicU64::new(0),
            degrade_events: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            metrics: Metrics::new(),
            registry: Arc::downgrade(self),
        });
        self.regions.lock().push(Arc::clone(&cell));
        cell
    }

    /// Pool hook: a gang of `gang` slots was admitted after waiting
    /// `wait_ns` in the admission queue.
    pub fn note_admission(&self, gang: usize, wait_ns: u64) {
        self.admissions.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_ns.record(wait_ns);
        self.slots_busy.fetch_add(gang, Ordering::Relaxed);
    }

    /// Pool hook: one admitted slot was released.
    pub fn note_slot_release(&self) {
        self.slots_busy.fetch_sub(1, Ordering::Relaxed);
    }

    /// Pool hook: pool thread `slot` spent `ns` nanoseconds running region
    /// work.
    pub fn add_busy_ns(&self, slot: usize, ns: u64) {
        self.busy_ns.add(slot, ns);
    }

    /// Snapshots the whole registry without stopping workers (plain loads;
    /// the region list lock is held only to clone the `Arc`s).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let cells: Vec<Arc<RegionTelemetry>> = self.regions.lock().clone();
        let regions: Vec<RegionSnapshot> = cells.iter().map(|c| c.snapshot()).collect();
        let in_flight = regions
            .iter()
            .filter(|r| r.state == RegionState::Running)
            .count();
        let uptime_ns = self.origin.elapsed().as_nanos() as u64;
        let busy_ns = self.busy_ns.sum();
        let denom = (self.pool_slots as u64).saturating_mul(uptime_ns);
        let utilization = if denom == 0 {
            0.0
        } else {
            (busy_ns as f64 / denom as f64).clamp(0.0, 1.0)
        };
        RegistrySnapshot {
            t_ns: uptime_ns,
            pool: PoolSnapshot {
                slots: self.pool_slots,
                slots_busy: self.slots_busy.load(Ordering::Acquire),
                in_flight,
                admissions: self.admissions.load(Ordering::Acquire),
                busy_ns,
                utilization,
                queue_wait: self.queue_wait_ns.snapshot(),
                region_latency: self.region_latency_ns.snapshot(),
            },
            regions,
            flight_dumps: self.recorder.as_ref().map_or(0, |r| r.dumps_taken()),
        }
    }
}

/// Plain-value snapshot of the pool-wide gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSnapshot {
    /// Total worker slots in the pool.
    pub slots: usize,
    /// Slots currently admitted to gangs.
    pub slots_busy: usize,
    /// Regions currently in [`RegionState::Running`].
    pub in_flight: usize,
    /// Gangs admitted since the registry was created.
    pub admissions: u64,
    /// Total nanoseconds pool threads spent running region work.
    pub busy_ns: u64,
    /// `busy_ns / (slots × uptime)`, clamped to `0.0..=1.0`.
    pub utilization: f64,
    /// Gang-admission queue-wait distribution.
    pub queue_wait: HistogramSummary,
    /// End-to-end region latency distribution (SLO histogram).
    pub region_latency: HistogramSummary,
}

/// Plain-value snapshot of one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSnapshot {
    /// Region-server submission id.
    pub region_id: u64,
    /// Engine kind label.
    pub kind: String,
    /// Gang size demanded.
    pub gang: usize,
    /// Lifecycle state.
    pub state: RegionState,
    /// Total admission queue wait attributed to this region (ns).
    pub queue_wait_ns: u64,
    /// Degradation events (SPECCROSS sequential fallbacks).
    pub degrade_events: u64,
    /// Faults: worker faults contained by the engine, plus one if the
    /// region hard-failed.
    pub faults: u64,
    /// Wall-clock latency (ns): running → elapsed so far, finished →
    /// start-to-finish, queued → 0.
    pub latency_ns: u64,
    /// The engine's metrics (approximate while running, exact once
    /// finished).
    pub metrics: MetricsSummary,
}

impl RegionSnapshot {
    /// Misspeculations per executed task (0 when no tasks ran yet).
    pub fn misspec_rate(&self) -> f64 {
        if self.metrics.stats.tasks == 0 {
            0.0
        } else {
            self.metrics.stats.misspeculations as f64 / self.metrics.stats.tasks as f64
        }
    }

    /// Whether this row deserves a red flag in a live display: faulted
    /// state, any fault, or any degradation.
    pub fn red_flag(&self) -> bool {
        self.state == RegionState::Faulted || self.faults > 0 || self.degrade_events > 0
    }
}

/// One full registry snapshot: pool gauges plus a row per region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// Nanoseconds since the registry was created (virtual time for the
    /// simulator's mirror).
    pub t_ns: u64,
    /// Pool-wide gauges.
    pub pool: PoolSnapshot,
    /// Per-region rows, in registration order.
    pub regions: Vec<RegionSnapshot>,
    /// Flight-recorder dumps taken so far.
    pub flight_dumps: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hist_json(h: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{:.3},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
        h.count,
        h.sum_ns,
        h.mean_ns(),
        h.quantile_upper_bound(0.50),
        h.quantile_upper_bound(0.95),
        h.quantile_upper_bound(0.99),
        h.max_ns,
    )
}

impl RegistrySnapshot {
    /// Serializes as one line of JSON, schema `crossinvoc-telemetry-1`
    /// (parseable by `crossinvoc_bench::json`; the `server-stats` binary
    /// and the bench validators consume this).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.regions.len() * 512);
        out.push_str(&format!(
            "{{\"schema\":\"crossinvoc-telemetry-1\",\"t_ns\":{},\"flight_dumps\":{},",
            self.t_ns, self.flight_dumps
        ));
        out.push_str(&format!(
            "\"pool\":{{\"slots\":{},\"slots_busy\":{},\"in_flight\":{},\"admissions\":{},\"busy_ns\":{},\"utilization\":{:.6},\"queue_wait\":{},\"region_latency\":{}}},",
            self.pool.slots,
            self.pool.slots_busy,
            self.pool.in_flight,
            self.pool.admissions,
            self.pool.busy_ns,
            self.pool.utilization,
            hist_json(&self.pool.queue_wait),
            hist_json(&self.pool.region_latency),
        ));
        out.push_str("\"regions\":[");
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &r.metrics.stats;
            out.push_str(&format!(
                "{{\"region_id\":{},\"kind\":\"{}\",\"gang\":{},\"state\":\"{}\",\"queue_wait_ns\":{},\"degrade_events\":{},\"faults\":{},\"latency_ns\":{},\"misspec_rate\":{:.6},\"tasks\":{},\"epochs\":{},\"check_requests\":{},\"elided_admits\":{},\"sync_conditions\":{},\"misspeculations\":{},\"checkpoints\":{},\"stalls\":{},\"checker_epoch_skips\":{},\"schedule_cache_hits\":{},\"barrier_wait\":{},\"stall_wait\":{}}}",
                r.region_id,
                json_escape(&r.kind),
                r.gang,
                r.state.as_str(),
                r.queue_wait_ns,
                r.degrade_events,
                r.faults,
                r.latency_ns,
                r.misspec_rate(),
                s.tasks,
                s.epochs,
                s.check_requests,
                s.elided_admits,
                s.sync_conditions,
                s.misspeculations,
                s.checkpoints,
                s.stalls,
                s.checker_epoch_skips,
                s.schedule_cache_hits,
                hist_json(&r.metrics.barrier_wait),
                hist_json(&r.metrics.stall_wait),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Serializes in Prometheus text exposition format 0.0.4.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024 + self.regions.len() * 1024);
        let gauge = |out: &mut String, name: &str, help: &str, v: &dyn fmt::Display| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let summary = |out: &mut String, name: &str, help: &str, h: &HistogramSummary| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.quantile_upper_bound(q)
                ));
            }
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {}\n",
                h.sum_ns, h.count
            ));
        };
        gauge(
            &mut out,
            "crossinvoc_pool_slots",
            "Total worker slots in the pool.",
            &self.pool.slots,
        );
        gauge(
            &mut out,
            "crossinvoc_pool_slots_busy",
            "Slots currently admitted to gangs.",
            &self.pool.slots_busy,
        );
        gauge(
            &mut out,
            "crossinvoc_pool_in_flight",
            "Regions currently running.",
            &self.pool.in_flight,
        );
        counter(
            &mut out,
            "crossinvoc_pool_admissions_total",
            "Gangs admitted since start.",
            self.pool.admissions,
        );
        counter(
            &mut out,
            "crossinvoc_pool_busy_ns_total",
            "Nanoseconds pool threads spent running region work.",
            self.pool.busy_ns,
        );
        gauge(
            &mut out,
            "crossinvoc_pool_utilization",
            "busy_ns / (slots x uptime), 0..1.",
            &format_args!("{:.6}", self.pool.utilization),
        );
        summary(
            &mut out,
            "crossinvoc_pool_queue_wait_ns",
            "Gang-admission queue wait (ns).",
            &self.pool.queue_wait,
        );
        summary(
            &mut out,
            "crossinvoc_region_latency_ns",
            "End-to-end region latency (ns).",
            &self.pool.region_latency,
        );
        counter(
            &mut out,
            "crossinvoc_flight_dumps_total",
            "Flight-recorder dumps taken.",
            self.flight_dumps,
        );
        type Family = (&'static str, &'static str, fn(&RegionSnapshot) -> u64);
        let families: [Family; 10] = [
            (
                "crossinvoc_region_state",
                "Region state code: 0 queued, 1 running, 2 done, 3 faulted.",
                |r| r.state as u64,
            ),
            ("crossinvoc_region_tasks_total", "Tasks executed.", |r| {
                r.metrics.stats.tasks
            }),
            ("crossinvoc_region_epochs_total", "Epochs entered.", |r| {
                r.metrics.stats.epochs
            }),
            (
                "crossinvoc_region_misspeculations_total",
                "Misspeculations detected.",
                |r| r.metrics.stats.misspeculations,
            ),
            (
                "crossinvoc_region_elided_admits_total",
                "Checker admissions skipped by static elision.",
                |r| r.metrics.stats.elided_admits,
            ),
            ("crossinvoc_region_stalls_total", "Worker stalls.", |r| {
                r.metrics.stats.stalls
            }),
            (
                "crossinvoc_region_checkpoints_total",
                "Checkpoints taken.",
                |r| r.metrics.stats.checkpoints,
            ),
            (
                "crossinvoc_region_degrade_events_total",
                "Degradations to sequential re-execution.",
                |r| r.degrade_events,
            ),
            (
                "crossinvoc_region_faults_total",
                "Faults (contained + hard).",
                |r| r.faults,
            ),
            (
                "crossinvoc_region_queue_wait_ns_total",
                "Admission queue wait attributed to the region (ns).",
                |r| r.queue_wait_ns,
            ),
        ];
        for (name, help, get) in families {
            if self.regions.is_empty() {
                continue;
            }
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for r in &self.regions {
                out.push_str(&format!(
                    "{name}{{region=\"{}\",kind=\"{}\"}} {}\n",
                    r.region_id,
                    r.kind,
                    get(r)
                ));
            }
        }
        if !self.regions.is_empty() {
            out.push_str("# HELP crossinvoc_region_latency_seconds Region latency so far (s).\n# TYPE crossinvoc_region_latency_seconds gauge\n");
            for r in &self.regions {
                out.push_str(&format!(
                    "crossinvoc_region_latency_seconds{{region=\"{}\",kind=\"{}\"}} {:.6}\n",
                    r.region_id,
                    r.kind,
                    r.latency_ns as f64 / 1e9
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Event, TraceCollector};

    fn tiny_trace(region: u64) -> Trace {
        let collector = TraceCollector::with_region(8, region);
        let mut sink = collector.sink(0);
        sink.emit(Event::EpochBegin { epoch: 0 });
        sink.emit(Event::EpochEnd { epoch: 0 });
        collector.absorb(sink);
        collector
            .finish()
            .expect("enabled collector yields a trace")
    }

    #[test]
    fn sharded_counter_sums_across_shards() {
        let c = ShardedCounter::new(4);
        assert_eq!(c.shards(), 4);
        for slot in 0..8 {
            c.add(slot, 10);
        }
        assert_eq!(c.sum(), 80);
        // Zero shards clamps to one.
        let c = ShardedCounter::new(0);
        c.add(5, 7);
        assert_eq!(c.sum(), 7);
    }

    #[test]
    fn region_lifecycle_and_snapshot() {
        let reg = Arc::new(ServerRegistry::new(4));
        let cell = reg.register(3, "speccross", 3);
        assert_eq!(cell.state(), RegionState::Queued);
        assert_eq!(cell.snapshot().latency_ns, 0);

        cell.mark_running();
        assert_eq!(cell.state(), RegionState::Running);
        cell.metrics().stats().add_task();
        cell.metrics().stats().add_misspeculation();
        cell.add_queue_wait(250);

        cell.complete(0, false, None);
        assert_eq!(cell.state(), RegionState::Done);
        let snap = cell.snapshot();
        assert_eq!(snap.region_id, 3);
        assert_eq!(snap.kind, "speccross");
        assert_eq!(snap.gang, 3);
        assert_eq!(snap.queue_wait_ns, 250);
        assert_eq!(snap.metrics.stats.tasks, 1);
        assert!((snap.misspec_rate() - 1.0).abs() < 1e-12);
        assert!(!snap.red_flag());

        // Finished regions feed the pool-wide latency histogram.
        assert_eq!(reg.snapshot().pool.region_latency.count, 1);
    }

    #[test]
    fn finish_is_idempotent_first_call_wins() {
        let reg = Arc::new(ServerRegistry::new(2));
        let cell = reg.register(1, "domore", 2);
        cell.mark_running();
        cell.complete(0, false, None);
        cell.fail(None);
        assert_eq!(cell.state(), RegionState::Done);
        assert_eq!(cell.snapshot().faults, 0);
        assert_eq!(reg.snapshot().pool.region_latency.count, 1);
    }

    #[test]
    fn fail_marks_faulted_and_dumps_flight_trace() {
        let reg = Arc::new(ServerRegistry::new(2).with_recorder(FlightRecorder::new(64)));
        let cell = reg.register(7, "speccross", 2);
        cell.mark_running();
        cell.fail(Some(&tiny_trace(7)));
        assert_eq!(cell.state(), RegionState::Faulted);
        assert!(cell.snapshot().red_flag());
        let dumps = reg.flight_recorder().unwrap().dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].region_id, 7);
        assert_eq!(dumps[0].trigger, DumpTrigger::Fault);
        assert_eq!(dumps[0].records, 2);
        assert_eq!(dumps[0].dropped, 0);
        let parsed = Trace::from_jsonl(&dumps[0].jsonl).unwrap();
        assert_eq!(parsed.region(), 7);
        assert_eq!(parsed.records().len(), 2);
        assert_eq!(reg.snapshot().flight_dumps, 1);
    }

    #[test]
    fn contained_faults_and_degrade_trigger_dumps() {
        let reg = Arc::new(ServerRegistry::new(2).with_recorder(FlightRecorder::new(64)));
        let a = reg.register(1, "speccross", 2);
        a.mark_running();
        a.complete(2, false, Some(&tiny_trace(1)));
        assert_eq!(a.state(), RegionState::Done);
        assert_eq!(a.snapshot().faults, 2);

        let b = reg.register(2, "speccross", 2);
        b.mark_running();
        b.add_degrade_event();
        b.complete(0, true, Some(&tiny_trace(2)));

        let dumps = reg.flight_recorder().unwrap().dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].trigger, DumpTrigger::Fault);
        assert_eq!(dumps[1].trigger, DumpTrigger::Degrade);
        assert_eq!(dumps[1].region_id, 2);
    }

    #[test]
    fn deadline_overrun_triggers_dump() {
        let reg = Arc::new(
            ServerRegistry::new(2)
                .with_recorder(FlightRecorder::new(64).with_deadline(Duration::from_nanos(1))),
        );
        let cell = reg.register(9, "domore", 1);
        cell.mark_running();
        std::thread::sleep(Duration::from_millis(1));
        cell.complete(0, false, Some(&tiny_trace(9)));
        let dumps = reg.flight_recorder().unwrap().dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, DumpTrigger::Deadline);
    }

    #[test]
    fn healthy_fast_region_takes_no_dump() {
        let reg = Arc::new(
            ServerRegistry::new(2)
                .with_recorder(FlightRecorder::new(64).with_deadline(Duration::from_secs(3600))),
        );
        let cell = reg.register(1, "domore", 1);
        cell.mark_running();
        cell.complete(0, false, Some(&tiny_trace(1)));
        assert!(reg.flight_recorder().unwrap().dumps().is_empty());
    }

    #[test]
    fn pool_hooks_feed_the_pool_snapshot() {
        let reg = Arc::new(ServerRegistry::new(4));
        reg.note_admission(3, 1_000);
        reg.add_busy_ns(0, 500);
        reg.add_busy_ns(1, 700);
        let snap = reg.snapshot();
        assert_eq!(snap.pool.slots, 4);
        assert_eq!(snap.pool.slots_busy, 3);
        assert_eq!(snap.pool.admissions, 1);
        assert_eq!(snap.pool.busy_ns, 1_200);
        assert_eq!(snap.pool.queue_wait.count, 1);
        assert_eq!(snap.pool.queue_wait.sum_ns, 1_000);
        reg.note_slot_release();
        assert_eq!(reg.snapshot().pool.slots_busy, 2);
        assert!(snap.pool.utilization >= 0.0 && snap.pool.utilization <= 1.0);
    }

    #[test]
    fn in_flight_counts_running_regions_only() {
        let reg = Arc::new(ServerRegistry::new(4));
        let a = reg.register(1, "domore", 1);
        let b = reg.register(2, "domore", 1);
        let _queued = reg.register(3, "domore", 1);
        a.mark_running();
        b.mark_running();
        b.complete(0, false, None);
        let snap = reg.snapshot();
        assert_eq!(snap.pool.in_flight, 1);
        assert_eq!(snap.regions.len(), 3);
    }

    #[test]
    fn json_exposition_has_schema_and_region_rows() {
        let reg = Arc::new(ServerRegistry::new(2));
        let cell = reg.register(5, "speccross-barrier", 2);
        cell.mark_running();
        cell.metrics().stats().add_task();
        cell.complete(0, false, None);
        let line = reg.snapshot().to_json();
        assert!(line.starts_with("{\"schema\":\"crossinvoc-telemetry-1\""));
        assert!(line.contains("\"region_id\":5"));
        assert!(line.contains("\"kind\":\"speccross-barrier\""));
        assert!(line.contains("\"state\":\"done\""));
        assert!(line.contains("\"tasks\":1"));
        assert!(!line.contains('\n'));
        // Balanced braces/brackets — a cheap structural sanity check (the
        // bench crate's real JSON parser covers the rest).
        let opens = line.matches(['{', '[']).count();
        let closes = line.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn prometheus_exposition_lists_expected_families() {
        let reg = Arc::new(ServerRegistry::new(2));
        let cell = reg.register(5, "domore", 2);
        cell.mark_running();
        cell.metrics().stats().add_task();
        let text = reg.snapshot().to_prometheus();
        for family in [
            "crossinvoc_pool_slots",
            "crossinvoc_pool_utilization",
            "crossinvoc_pool_queue_wait_ns_count",
            "crossinvoc_region_latency_ns_sum",
            "crossinvoc_flight_dumps_total",
            "crossinvoc_region_tasks_total{region=\"5\",kind=\"domore\"} 1",
            "crossinvoc_region_state{region=\"5\",kind=\"domore\"} 1",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn snapshot_equals_final_metrics_once_finished() {
        let reg = Arc::new(ServerRegistry::new(2));
        let cell = reg.register(1, "domore", 1);
        cell.mark_running();
        cell.metrics().stats().add_task();
        cell.metrics().record_barrier_wait(123);
        cell.complete(0, false, None);
        let final_summary = cell.metrics().snapshot();
        assert_eq!(cell.snapshot().metrics, final_summary);
    }
}
