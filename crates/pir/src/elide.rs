//! Static check elision: proving cross-invocation accesses conflict-free.
//!
//! The SPECCROSS checker compares the access signatures of tasks that ran
//! on *different workers* in *different epochs* (docs/CHECKER.md). Both
//! facts are static properties of the Fig. 4.9 codegen: task `τ` of every
//! epoch runs on worker `τ mod W`, and an epoch is `outer_iter ×
//! num_loops + loop_ordinal`. This module exploits them to prove, per
//! inner loop, that *no compared pair of tasks can ever touch the same
//! cell* — in which case the loop's tasks need no signatures and no
//! checker admission at all (the engine's "elided" fast path).
//!
//! For every watched-array access of every region loop we try to resolve
//! the index to the affine form
//!
//! ```text
//! index = k + a·o + b·τ + Σ cᵥ·v
//! ```
//!
//! over the outer iteration `o`, the task number `τ` (the inner induction
//! variable shifted by the loop's constant lower bound) and region-invariant
//! symbols `v` (prefix-computed scalars: their values are fixed before the
//! region runs, hence equal across all epochs). Pure scalar assignments
//! between the region's loops are substituted through (the "privatize and
//! duplicate" environment of §4.3); a scalar whose right-hand side is not
//! affine in the outer iteration — `s = t % m` and friends — poisons every
//! index that reads it (*impure prologue*). Indirect accesses (an index
//! through a loop-variant load, or an opaque call's `may_read`/`may_write`
//! effect) have no resolvable form at all.
//!
//! Two resolved accesses `(k₁,a,b)` and `(k₂,a,b)` on the same array (at
//! least one a write, equal coefficients and symbol residues — anything
//! else is conservatively unproven) can conflict on a compared pair only if
//!
//! ```text
//! (k₁ − k₂) + a·Δo + b·Δτ = 0
//! ```
//!
//! has a solution with `Δτ ∈ [1−T₂, T₁−1] \ {0}` (compared tasks run on
//! different workers, so `τ₁ ≢ τ₂ (mod W)`, hence `τ₁ ≠ τ₂`) and, for two
//! accesses of the *same* loop, `Δo ≠ 0` (same-loop tasks share an epoch
//! unless the outer iteration differs; same-epoch pairs are DOALL-verified
//! independent and never checked). If no such solution exists for any pair
//! the access — and, when all its accesses are proven, the whole loop — is
//! *proven disjoint*: skipping its checks can never change a verdict.
//!
//! The test covers the classic shapes: same-index chains (`A[τ]` every
//! epoch: a compared pair has `Δτ ≠ 0`, so the cells differ — the revisits
//! land on the *same worker* and are ordered by program order), disjoint
//! strides (`A[2τ+c]` vs `A[2τ+1−c]`: odd constant gap, even stride),
//! clustered footprints (`A[C·o + τ]`, `|Δτ| < C`), disjoint invariant
//! bases (`A[τ]` vs `A[τ+T]`), and producer/consumer loop pairs (`A[τ]`
//! written by one loop and read by the next: only `Δτ = 0` collides, which
//! is the same worker again). Everything indirect, non-affine, impure or
//! overlapping stays on the full runtime admission path.
//!
//! Soundness does **not** depend on faults, degradation, Bloom false
//! positives or rollback timing: a proven loop's checks are no-ops on every
//! schedule (they could only ever report "no conflict"), so removing them
//! never changes the verdict — only the work.

use std::collections::{BTreeMap, HashMap, HashSet};

use crossinvoc_runtime::signature::AccessKind;

use crate::analysis::{collect_accesses, loop_variant_vars, AffineForm};
use crate::ir::{ArrayId, Program, Stmt, StmtId, VarId};
use crate::transform::RegionItem;

/// Why an access could not be proven conflict-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnprovenReason {
    /// Opaque call effect or an index through a loop-variant value
    /// (`computeAddr`-style indirection).
    Indirect,
    /// The index expression is not affine (`%`, `/`, products of
    /// variables).
    NonAffine,
    /// The index reads a scalar whose inter-loop assignment is not affine
    /// in the outer iteration (the impure-prologue case, `s = t % m`).
    ImpureScalar,
    /// The loop's bounds do not resolve to compile-time constants, so the
    /// task range — and with it the set of compared pairs — is unknown.
    UnknownBounds,
    /// The loop's static trip count is zero or negative: the loop
    /// contributes no tasks and the footprint model does not apply.
    ZeroTrip,
    /// A compared pair of tasks may touch the same cell (straddling or
    /// overlapping strides, or a pair with an unresolvable partner).
    MayOverlap,
}

impl UnprovenReason {
    /// Short stable label (used by reports and tests).
    pub fn as_str(self) -> &'static str {
        match self {
            UnprovenReason::Indirect => "indirect",
            UnprovenReason::NonAffine => "non-affine",
            UnprovenReason::ImpureScalar => "impure-scalar",
            UnprovenReason::UnknownBounds => "unknown-bounds",
            UnprovenReason::ZeroTrip => "zero-trip",
            UnprovenReason::MayOverlap => "may-overlap",
        }
    }
}

/// Classification of one watched-array access site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessClass {
    /// The load/store/call statement performing the access.
    pub stmt: StmtId,
    /// Array touched.
    pub array: ArrayId,
    /// Read or write.
    pub kind: AccessKind,
    /// `None` = proven disjoint; `Some` = kept on the runtime check path.
    pub unproven: Option<UnprovenReason>,
}

impl AccessClass {
    /// Whether the access is proven conflict-free.
    pub fn proven(&self) -> bool {
        self.unproven.is_none()
    }
}

/// Per-loop elision verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopElision {
    /// The inner loop (epoch source) this verdict covers.
    pub loop_stmt: StmtId,
    /// Every watched-array access site of the loop, classified.
    pub accesses: Vec<AccessClass>,
    /// Whether *every* access is proven: the loop's tasks skip signature
    /// generation and checker admission entirely.
    pub proven: bool,
}

/// The region-level elision plan: one verdict per inner loop, in loop
/// (ordinal) order. Produced by [`crate::transform::SpecCrossPlan::build`]
/// and threaded into the engine/simulator as a per-ordinal mask.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ElisionPlan {
    /// Per-loop verdicts, indexed by loop ordinal.
    pub loops: Vec<LoopElision>,
}

impl ElisionPlan {
    /// Whether loop `ordinal`'s tasks are proven conflict-free.
    pub fn loop_is_proven(&self, ordinal: usize) -> bool {
        self.loops.get(ordinal).is_some_and(|l| l.proven)
    }

    /// Per-ordinal proven mask (`mask[epoch % num_loops]` at runtime).
    pub fn proven_mask(&self) -> Vec<bool> {
        self.loops.iter().map(|l| l.proven).collect()
    }

    /// Number of access sites proven disjoint.
    pub fn proven_accesses(&self) -> usize {
        self.loops
            .iter()
            .flat_map(|l| &l.accesses)
            .filter(|a| a.proven())
            .count()
    }

    /// Total watched access sites considered.
    pub fn total_accesses(&self) -> usize {
        self.loops.iter().map(|l| l.accesses.len()).sum()
    }

    /// Whether every loop of the region is proven.
    pub fn fully_proven(&self) -> bool {
        !self.loops.is_empty() && self.loops.iter().all(|l| l.proven)
    }
}

/// Cap on the enumerated `Δτ` range of the pair test; pairs over larger
/// task ranges are conservatively unproven.
const MAX_DELTA_RANGE: i64 = 1 << 16;

/// An access index resolved against the epoch environment:
/// `k + a·o + b·τ + Σ cᵥ·v` with `τ` the 0-based task number.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Resolved {
    /// Outer-iteration coefficient.
    a: i64,
    /// Task-number coefficient.
    b: i64,
    /// Constant term (inner lower bound folded in).
    k: i64,
    /// Region-invariant symbolic residue (prefix-computed scalars).
    syms: BTreeMap<VarId, i64>,
}

/// The value a pure inter-loop scalar holds at epoch entry, as an affine
/// form over the outer IV and region-invariant symbols; `None` = the
/// assignment was not affine (poisoned — any index reading it is impure).
type ScalarEnv = HashMap<VarId, Option<AffineForm>>;

/// Substitutes `env` into `form`; `None` if a poisoned scalar is read.
fn substitute(form: &AffineForm, env: &ScalarEnv) -> Option<AffineForm> {
    let mut out = AffineForm {
        constant: form.constant,
        terms: BTreeMap::new(),
    };
    for (&v, &c) in &form.terms {
        match env.get(&v) {
            Some(Some(f)) => {
                out.constant = out.constant.checked_add(c.checked_mul(f.constant)?)?;
                for (&sv, &sc) in &f.terms {
                    let entry = out.terms.entry(sv).or_insert(0);
                    *entry = entry.checked_add(c.checked_mul(sc)?)?;
                    if *entry == 0 {
                        out.terms.remove(&sv);
                    }
                }
            }
            Some(None) => return None,
            None => {
                let entry = out.terms.entry(v).or_insert(0);
                *entry = entry.checked_add(c)?;
                if *entry == 0 {
                    out.terms.remove(&v);
                }
            }
        }
    }
    Some(out)
}

/// One loop's static context: constant bounds and the scalar environment
/// accumulated before it.
struct LoopCtx {
    iv: VarId,
    lo: i64,
    trip: i64,
    variant: HashSet<VarId>,
    env: ScalarEnv,
    bounds_known: bool,
}

/// Resolves one index expression inside loop `ctx` of the region with
/// outer IV `outer_iv`.
fn resolve_index(
    index: &crate::ir::Expr,
    ctx: &LoopCtx,
    outer_iv: VarId,
) -> Result<Resolved, UnprovenReason> {
    let form = AffineForm::of(index).ok_or(UnprovenReason::NonAffine)?;
    // Split off the inner IV before looking at variance: the IV itself is
    // the one variant term the footprint model understands.
    let b = form.coefficient(ctx.iv);
    let rest = form.without(ctx.iv);
    if rest
        .terms
        .keys()
        .any(|v| *v != outer_iv && ctx.variant.contains(v))
    {
        return Err(UnprovenReason::Indirect);
    }
    let rest = substitute(&rest, &ctx.env).ok_or(UnprovenReason::ImpureScalar)?;
    let a = rest.coefficient(outer_iv);
    let syms = rest.without(outer_iv).terms;
    // env[iv] = lo + τ: fold b·lo into the constant.
    let k = rest
        .constant
        .checked_add(b.checked_mul(ctx.lo).ok_or(UnprovenReason::NonAffine)?)
        .ok_or(UnprovenReason::NonAffine)?;
    Ok(Resolved { a, b, k, syms })
}

/// Whether a compared pair of tasks — `r1` from a loop with `t1` tasks,
/// `r2` from a loop with `t2` tasks — may touch the same cell. Compared
/// pairs have `Δτ ≠ 0` (different workers) and, when both accesses belong
/// to the same loop, `Δo ≠ 0` (different epochs of one loop differ in the
/// outer iteration).
fn pair_may_conflict(r1: &Resolved, t1: i64, r2: &Resolved, t2: i64, same_loop: bool) -> bool {
    if r1.syms != r2.syms || r1.a != r2.a || r1.b != r2.b {
        return true;
    }
    let (a, b) = (r1.a, r1.b);
    let Some(k) = r1.k.checked_sub(r2.k) else {
        return true;
    };
    // Δτ = τ₁ − τ₂ with τ₁ ∈ [0, t1), τ₂ ∈ [0, t2), τ₁ ≠ τ₂.
    let (lo, hi) = (1 - t2, t1 - 1);
    if hi.saturating_sub(lo) > MAX_DELTA_RANGE {
        return true;
    }
    for dt in lo..=hi {
        if dt == 0 {
            continue;
        }
        // Need a·Δo = −(k + b·Δτ) for some admissible Δo.
        let Some(rhs) = b
            .checked_mul(dt)
            .and_then(|v| k.checked_add(v))
            .and_then(i64::checked_neg)
        else {
            return true;
        };
        if a == 0 {
            if rhs == 0 {
                return true;
            }
        } else if rhs % a == 0 && (!same_loop || rhs / a != 0) {
            return true;
        }
    }
    false
}

/// Classifies every watched access of the region's loops. `items` is the
/// region schedule (scalars interleaved with loops, body order), `loops`
/// the epoch-source loops and `watched` the instrumented arrays — exactly
/// the fields [`crate::transform::SpecCrossPlan::build`] validated.
pub(crate) fn analyze(
    program: &Program,
    items: &[RegionItem],
    loops: &[StmtId],
    watched: &HashSet<ArrayId>,
    outer_iv: VarId,
) -> ElisionPlan {
    // Walk the schedule once, accumulating the pure-scalar environment and
    // snapshotting it (plus bounds) at each loop.
    let mut env: ScalarEnv = HashMap::new();
    let mut ctxs: Vec<LoopCtx> = Vec::with_capacity(loops.len());
    for item in items {
        match *item {
            RegionItem::Scalar(s) => {
                let Stmt::Assign { var, expr } = program.stmt(s) else {
                    unreachable!("region scalars are assignments (validated at build)");
                };
                let value = AffineForm::of(expr).and_then(|f| substitute(&f, &env));
                env.insert(*var, value);
            }
            RegionItem::Loop(l) => {
                let Stmt::For { var, from, to, .. } = program.stmt(l) else {
                    unreachable!("epoch sources are loops (validated at build)");
                };
                let bound = |e: &crate::ir::Expr| {
                    AffineForm::of(e)
                        .and_then(|f| substitute(&f, &env))
                        .filter(|f| f.terms.is_empty())
                        .map(|f| f.constant)
                };
                let (lo, hi) = (bound(from), bound(to));
                let bounds_known = lo.is_some() && hi.is_some();
                let lo = lo.unwrap_or(0);
                let trip = hi.unwrap_or(0).saturating_sub(lo);
                ctxs.push(LoopCtx {
                    iv: *var,
                    lo,
                    trip,
                    variant: loop_variant_vars(program, l),
                    env: env.clone(),
                    bounds_known,
                });
            }
        }
    }

    // Phase 1: per-access resolution.
    struct Site {
        ordinal: usize,
        class: AccessClass,
        resolved: Option<Resolved>,
    }
    let mut sites: Vec<Site> = Vec::new();
    for (ordinal, (&l, ctx)) in loops.iter().zip(&ctxs).enumerate() {
        let Stmt::For { body, .. } = program.stmt(l) else {
            unreachable!("epoch sources are loops");
        };
        for access in collect_accesses(program, body) {
            if !watched.contains(&access.array) {
                continue;
            }
            let (resolved, unproven) = if !ctx.bounds_known {
                (None, Some(UnprovenReason::UnknownBounds))
            } else if ctx.trip <= 0 {
                (None, Some(UnprovenReason::ZeroTrip))
            } else {
                match &access.index {
                    None => (None, Some(UnprovenReason::Indirect)),
                    Some(index) => match resolve_index(index, ctx, outer_iv) {
                        Ok(r) => (Some(r), None),
                        Err(reason) => (None, Some(reason)),
                    },
                }
            };
            sites.push(Site {
                ordinal,
                class: AccessClass {
                    stmt: access.stmt,
                    array: access.array,
                    kind: access.kind,
                    unproven,
                },
                resolved,
            });
        }
    }

    // Phase 2: pairwise footprint test, self-pairs included (an access
    // conflicts with its own image in other epochs unless proven). A pair
    // with an unresolvable partner poisons the resolved side too: an
    // indirect access to an array may reach any of its cells.
    for i in 0..sites.len() {
        for j in i..sites.len() {
            if sites[i].class.array != sites[j].class.array {
                continue;
            }
            if sites[i].class.kind == AccessKind::Read && sites[j].class.kind == AccessKind::Read {
                continue;
            }
            let same_loop = sites[i].ordinal == sites[j].ordinal;
            let conflict = match (&sites[i].resolved, &sites[j].resolved) {
                (Some(r1), Some(r2)) => pair_may_conflict(
                    r1,
                    ctxs[sites[i].ordinal].trip,
                    r2,
                    ctxs[sites[j].ordinal].trip,
                    same_loop,
                ),
                _ => true,
            };
            if conflict {
                for s in [i, j] {
                    if sites[s].class.unproven.is_none() {
                        sites[s].class.unproven = Some(UnprovenReason::MayOverlap);
                    }
                }
            }
        }
    }

    let mut plan = ElisionPlan {
        loops: loops
            .iter()
            .map(|&l| LoopElision {
                loop_stmt: l,
                accesses: Vec::new(),
                proven: true,
            })
            .collect(),
    };
    for site in sites {
        let entry = &mut plan.loops[site.ordinal];
        entry.proven &= site.class.proven();
        entry.accesses.push(site.class);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CallEffect, Expr, ProgramBuilder};
    use crate::transform::SpecCrossPlan;

    const fn e(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Builds the plan for the last top-level loop and returns its
    /// per-ordinal proven mask.
    fn mask(program: &Program) -> Vec<bool> {
        let outer = *program.body().last().expect("program has a region loop");
        SpecCrossPlan::build(program, outer)
            .expect("region builds")
            .elision()
            .proven_mask()
    }

    fn reasons(program: &Program) -> Vec<Option<UnprovenReason>> {
        let outer = *program.body().last().expect("program has a region loop");
        SpecCrossPlan::build(program, outer)
            .expect("region builds")
            .elision()
            .loops
            .iter()
            .flat_map(|l| l.accesses.iter().map(|a| a.unproven))
            .collect()
    }

    #[test]
    fn same_index_chain_is_proven() {
        // for t { for i { A[i] = A[i]*3 + i } }: a compared pair has
        // different task numbers, hence different cells.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let (t, i, x) = (b.var("t"), b.var("i"), b.var("x"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                b.load(x, a, Expr::Var(i));
                b.store(a, Expr::Var(i), Expr::mul(Expr::Var(x), e(3)));
            });
        });
        assert_eq!(mask(&b.finish()), vec![true]);
    }

    #[test]
    fn disjoint_strides_are_proven() {
        // store A[2i], load A[2i+1]: odd gap, even stride — no compared
        // pair collides in any epoch.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 16);
        let (t, i, x) = (b.var("t"), b.var("i"), b.var("x"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(7), |b| {
                b.load(x, a, Expr::add(Expr::mul(e(2), Expr::Var(i)), e(1)));
                b.store(a, Expr::mul(e(2), Expr::Var(i)), Expr::Var(x));
            });
        });
        assert_eq!(mask(&b.finish()), vec![true]);
    }

    #[test]
    fn clustered_footprint_is_proven() {
        // store E[8t + i], i < 8: per-epoch clusters never overlap.
        let mut b = ProgramBuilder::new();
        let arr = b.array("E", 32);
        let (t, i) = (b.var("t"), b.var("i"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                let cell = Expr::add(Expr::mul(Expr::Var(t), e(8)), Expr::Var(i));
                b.store(arr, cell, Expr::Var(i));
            });
        });
        assert_eq!(mask(&b.finish()), vec![true]);
    }

    #[test]
    fn producer_consumer_pair_is_proven() {
        // Loop 0 writes A[i]; loop 1 reads A[i] and writes B[i]. Only
        // Δτ = 0 collides, which is the same worker — never compared.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let d = b.array("B", 8);
        let (t, i, x) = (b.var("t"), b.var("i"), b.var("x"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                b.store(a, Expr::Var(i), Expr::add(Expr::Var(i), Expr::Var(t)));
            });
            b.for_loop(i, e(0), e(8), |b| {
                b.load(x, a, Expr::Var(i));
                b.store(d, Expr::Var(i), Expr::mul(Expr::Var(x), e(5)));
            });
        });
        assert_eq!(mask(&b.finish()), vec![true, true]);
    }

    #[test]
    fn disjoint_invariant_bases_are_proven() {
        // Loop 0 writes A[i], loop 1 writes A[i+8] (i < 8): halves never
        // meet (the required Δτ = ±8 is outside the task range).
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 16);
        let (t, i) = (b.var("t"), b.var("i"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                b.store(a, Expr::Var(i), Expr::Var(t));
            });
            b.for_loop(i, e(0), e(8), |b| {
                b.store(a, Expr::add(Expr::Var(i), e(8)), Expr::Var(t));
            });
        });
        assert_eq!(mask(&b.finish()), vec![true, true]);
    }

    #[test]
    fn overlapping_strides_across_loops_are_unproven() {
        // Loop 0 writes A[2i], loop 1 writes A[2i+2]: tasks τ and τ+1 of
        // different epochs collide — both loops stay checked.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 20);
        let (t, i) = (b.var("t"), b.var("i"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                b.store(a, Expr::mul(e(2), Expr::Var(i)), Expr::Var(t));
            });
            b.for_loop(i, e(0), e(8), |b| {
                b.store(
                    a,
                    Expr::add(Expr::mul(e(2), Expr::Var(i)), e(2)),
                    Expr::Var(t),
                );
            });
        });
        let p = b.finish();
        assert_eq!(mask(&p), vec![false, false]);
        assert!(reasons(&p)
            .iter()
            .all(|r| *r == Some(UnprovenReason::MayOverlap)));
    }

    #[test]
    fn zero_trip_loop_is_unproven() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let (t, i) = (b.var("t"), b.var("i"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(0), |b| {
                b.store(a, Expr::Var(i), Expr::Var(t));
            });
        });
        let p = b.finish();
        assert_eq!(mask(&p), vec![false]);
        assert_eq!(reasons(&p), vec![Some(UnprovenReason::ZeroTrip)]);
    }

    #[test]
    fn indirect_compute_addr_is_unproven_and_poisons_partners() {
        // Loop 0 writes A[i] (affine); loop 1 reads A[IDX[i]] — the
        // indirect read may touch any cell, so the write side cannot be
        // elided either.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let d = b.array("B", 8);
        let idx = b.array("IDX", 8);
        let (t, i, v, x) = (b.var("t"), b.var("i"), b.var("v"), b.var("x"));
        b.for_loop(i, e(0), e(8), |b| {
            b.store(idx, Expr::Var(i), Expr::Var(i));
        });
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                b.store(a, Expr::Var(i), Expr::add(Expr::Var(i), Expr::Var(t)));
            });
            b.for_loop(i, e(0), e(8), |b| {
                b.load(v, idx, Expr::Var(i));
                b.load(x, a, Expr::Var(v));
                b.store(d, Expr::Var(i), Expr::mul(Expr::Var(x), e(3)));
            });
        });
        let p = b.finish();
        assert_eq!(mask(&p), vec![false, false]);
        let outer = *p.body().last().unwrap();
        let plan = SpecCrossPlan::build(&p, outer).unwrap();
        let flat: Vec<_> = plan
            .elision()
            .loops
            .iter()
            .flat_map(|l| &l.accesses)
            .collect();
        // A[i] write: poisoned by the indirect partner; A[IDX[i]] read:
        // indirect; B[i] write: still proven (different array).
        assert!(flat
            .iter()
            .any(|c| c.unproven == Some(UnprovenReason::MayOverlap)));
        assert!(flat
            .iter()
            .any(|c| c.unproven == Some(UnprovenReason::Indirect)));
        assert!(flat.iter().any(|c| c.proven()));
    }

    #[test]
    fn impure_prologue_scalar_is_unproven() {
        // s = t % 3 between the loops: the shifted window A[i+s] cannot be
        // resolved affinely across epochs.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 16);
        let (t, i, s, x) = (b.var("t"), b.var("i"), b.var("s"), b.var("x"));
        b.for_loop(t, e(0), e(4), |b| {
            b.assign(s, Expr::rem(Expr::Var(t), e(3)));
            b.for_loop(i, e(0), e(8), |b| {
                let at = Expr::add(Expr::Var(i), Expr::Var(s));
                b.load(x, a, at.clone());
                b.store(a, at, Expr::mul(Expr::Var(x), e(3)));
            });
        });
        let p = b.finish();
        assert_eq!(mask(&p), vec![false]);
        assert!(reasons(&p)
            .iter()
            .all(|r| *r == Some(UnprovenReason::ImpureScalar)));
    }

    #[test]
    fn pure_affine_prologue_scalar_substitutes_through() {
        // s = t*8 between the loops: A[i+s] is the clustered footprint in
        // disguise and must be proven.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 40);
        let (t, i, s) = (b.var("t"), b.var("i"), b.var("s"));
        b.for_loop(t, e(0), e(4), |b| {
            b.assign(s, Expr::mul(Expr::Var(t), e(8)));
            b.for_loop(i, e(0), e(8), |b| {
                b.store(a, Expr::add(Expr::Var(i), Expr::Var(s)), Expr::Var(t));
            });
        });
        assert_eq!(mask(&b.finish()), vec![true]);
    }

    #[test]
    fn opaque_call_write_is_indirect() {
        // A read-only loop body plus an opaque call that may write A:
        // the call's access has no index and stays checked. (The call must
        // be commutativity-free yet DOALL — use a call that only reads.)
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let d = b.array("B", 8);
        let (t, i) = (b.var("t"), b.var("i"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                b.store(a, Expr::Var(i), Expr::Var(t));
            });
            b.for_loop(i, e(0), e(8), |b| {
                b.call(
                    "peek",
                    vec![Expr::Var(i)],
                    CallEffect {
                        may_read: vec![a],
                        ..CallEffect::default()
                    },
                );
                b.store(d, Expr::Var(i), Expr::Var(i));
            });
        });
        let p = b.finish();
        assert_eq!(mask(&p), vec![false, false]);
        assert!(reasons(&p).contains(&Some(UnprovenReason::Indirect)));
    }

    #[test]
    fn unknown_bounds_are_unproven() {
        // Inner bound read from a prefix-computed scalar: value unknown
        // statically, so the task range cannot be bounded.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 64);
        let (t, i, n, x) = (b.var("t"), b.var("i"), b.var("n"), b.var("x"));
        b.assign(n, e(8));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), Expr::Var(n), |b| {
                b.load(x, a, Expr::Var(i));
                b.store(a, Expr::Var(i), Expr::mul(Expr::Var(x), e(3)));
            });
        });
        let p = b.finish();
        assert_eq!(mask(&p), vec![false]);
        assert_eq!(
            reasons(&p),
            vec![
                Some(UnprovenReason::UnknownBounds),
                Some(UnprovenReason::UnknownBounds)
            ]
        );
    }

    #[test]
    fn mixed_region_masks_only_the_proven_loop() {
        // Clustered loop on E (proven) + impure shifted loop on A
        // (unproven): the mask is per-ordinal.
        let mut b = ProgramBuilder::new();
        let arr = b.array("E", 32);
        let a = b.array("A", 16);
        let (t, i, s, x) = (b.var("t"), b.var("i"), b.var("s"), b.var("x"));
        b.for_loop(t, e(0), e(4), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                let cell = Expr::add(Expr::mul(Expr::Var(t), e(8)), Expr::Var(i));
                b.store(arr, cell, Expr::Var(i));
            });
            b.assign(s, Expr::rem(Expr::Var(t), e(4)));
            b.for_loop(i, e(0), e(8), |b| {
                let at = Expr::add(Expr::Var(i), Expr::Var(s));
                b.load(x, a, at.clone());
                b.store(a, at, Expr::mul(Expr::Var(x), e(3)));
            });
        });
        let plan_mask = mask(&b.finish());
        assert_eq!(plan_mask, vec![true, false]);
    }

    #[test]
    fn counters_count_sites_not_loops() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 8);
        let (t, i, x) = (b.var("t"), b.var("i"), b.var("x"));
        b.for_loop(t, e(0), e(2), |b| {
            b.for_loop(i, e(0), e(8), |b| {
                b.load(x, a, Expr::Var(i));
                b.store(a, Expr::Var(i), Expr::mul(Expr::Var(x), e(3)));
            });
        });
        let p = b.finish();
        let outer = *p.body().last().unwrap();
        let plan = SpecCrossPlan::build(&p, outer).unwrap();
        assert_eq!(plan.elision().total_accesses(), 2);
        assert_eq!(plan.elision().proven_accesses(), 2);
        assert!(plan.elision().fully_proven());
    }
}
