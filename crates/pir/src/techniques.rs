//! Applicability of the intra-invocation parallelization baselines (§2.2)
//! and the technique-selection flow of Fig. 1.5.
//!
//! The inner loop of a candidate nest is classified against the classic
//! techniques: DOALL (no loop-carried dependences), Spec-DOALL (carried
//! dependences that rarely manifest), DOANY (carried dependences only
//! between commutative operations), LOCALWRITE (carried dependences only
//! through memory writes, amenable to owner-computes partitioning), and the
//! universal fallbacks DOACROSS/DSWP. The *nest-level* decision — barriers
//! vs. DOMORE vs. SPECCROSS — consumes the outer loop's profiled manifest
//! rates, mirroring the thesis' complementarity claim: frequent conflicts →
//! DOMORE, rare conflicts → SPECCROSS.

use crate::ir::{Program, Stmt, StmtId};
use crate::pdg::{DepKind, Pdg, PdgEdge};
use crate::scc::SccGraph;

/// An intra-invocation parallelization technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Fully independent iterations.
    Doall,
    /// Iterations independent after speculating rare dependences away.
    SpecDoall,
    /// Carried dependences only between commutative operations (locks).
    Doany,
    /// Carried dependences only through writes: owner-computes.
    LocalWrite,
    /// Pipelined iterations with cross-thread synchronization.
    Doacross,
    /// Pipeline of loop stages (decoupled software pipelining).
    Dswp,
    /// No parallel execution.
    Sequential,
}

/// Classification of one inner loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Applicability {
    /// Techniques that soundly apply, strongest first.
    pub applicable: Vec<Technique>,
    /// Loop-carried dependences that drove the decision.
    pub carried: Vec<PdgEdge>,
    /// Highest profiled manifest rate among carried memory dependences
    /// (`None` if unprofiled).
    pub max_manifest_rate: Option<f64>,
}

impl Applicability {
    /// The strongest applicable technique.
    pub fn best(&self) -> Technique {
        self.applicable
            .first()
            .copied()
            .unwrap_or(Technique::Sequential)
    }

    /// Whether the loop can run without any cross-iteration
    /// synchronization (DOALL or speculated DOALL).
    pub fn is_parallel(&self) -> bool {
        matches!(self.best(), Technique::Doall | Technique::SpecDoall)
    }
}

/// Manifest-rate ceiling below which speculation is considered profitable
/// (Spec-DOALL inner loops; SPECCROSS across invocations).
pub const SPECULATION_RATE_CEILING: f64 = 0.05;

/// Classifies the loop behind `pdg` against the §2.2 baselines.
pub fn classify_loop(program: &Program, pdg: &Pdg) -> Applicability {
    let loop_stmt = pdg.loop_stmt();
    let carried: Vec<PdgEdge> = pdg
        .carried_edges()
        .filter(|e| !(e.src == loop_stmt && e.dst == loop_stmt))
        .cloned()
        .collect();

    let max_manifest_rate = carried
        .iter()
        .filter_map(|e| match e.kind {
            DepKind::Memory { manifest_rate, .. } => manifest_rate,
            _ => None,
        })
        .fold(None, |acc: Option<f64>, r| {
            Some(acc.map_or(r, |a| a.max(r)))
        });

    let mut applicable = Vec::new();
    if carried.is_empty() {
        applicable.push(Technique::Doall);
    } else {
        let all_memory = carried
            .iter()
            .all(|e| matches!(e.kind, DepKind::Memory { .. }));
        // Spec-DOALL: every carried dependence is memory and is profiled
        // as rarely manifesting.
        if all_memory
            && !carried.is_empty()
            && carried.iter().all(|e| {
                matches!(
                    e.kind,
                    DepKind::Memory {
                        manifest_rate: Some(r),
                        ..
                    } if r < SPECULATION_RATE_CEILING
                )
            })
        {
            applicable.push(Technique::SpecDoall);
        }
        // DOANY: every carried dependence connects commutative calls.
        let commutative = |s: StmtId| {
            matches!(
                program.stmt(s),
                Stmt::Call { effect, .. } if effect.commutative
            )
        };
        if carried
            .iter()
            .all(|e| commutative(e.src) && commutative(e.dst))
        {
            applicable.push(Technique::Doany);
        }
        // LOCALWRITE: every carried dependence is through memory (no
        // carried scalar flow), so owner-computes partitioning can route
        // each conflicting update to the owner of its cell.
        if all_memory {
            applicable.push(Technique::LocalWrite);
        }
        // DOACROSS/DSWP always apply; DSWP needs at least two SCCs to form
        // a pipeline (Fig. 2.6's single-SCC loop defeats it).
        let scc = SccGraph::build(pdg);
        if scc.components().len() > 1 {
            applicable.push(Technique::Dswp);
        }
        applicable.push(Technique::Doacross);
    }
    Applicability {
        applicable,
        carried,
        max_manifest_rate,
    }
}

/// How a whole loop *nest* should be parallelized across invocations
/// (the Fig. 1.5 decision augmented with §1.2's complementarity guidance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestStrategy {
    /// Inner loops parallel, speculative barriers between invocations:
    /// cross-invocation dependences rarely manifest.
    SpecCross,
    /// Inner loops parallel, DOMORE scheduler synchronizing exactly the
    /// manifesting conflicts: dependences manifest frequently.
    Domore,
    /// Inner loops parallel, non-speculative barrier after each invocation
    /// (the conventional plan; chosen when the inner loop cannot be
    /// parallelized without barriers or no runtime information helps).
    InnerBarrier,
    /// Give up: run sequentially.
    Sequential,
}

/// Chooses the nest-level strategy from the inner loop's classification and
/// the outer loop's profiled cross-invocation manifest rate.
pub fn choose_nest_strategy(
    inner: &Applicability,
    outer_manifest_rate: Option<f64>,
) -> NestStrategy {
    if inner.best() == Technique::Sequential {
        return NestStrategy::Sequential;
    }
    let inner_parallelizable = matches!(
        inner.best(),
        Technique::Doall | Technique::SpecDoall | Technique::Doany | Technique::LocalWrite
    );
    if !inner_parallelizable {
        return NestStrategy::InnerBarrier;
    }
    match outer_manifest_rate {
        // No cross-invocation conflict ever observed, or observed rarely:
        // speculate across barriers.
        None => NestStrategy::SpecCross,
        Some(r) if r < SPECULATION_RATE_CEILING => NestStrategy::SpecCross,
        // Frequent conflicts: speculation would thrash; synchronize exactly
        // the conflicting iterations instead.
        Some(_) => NestStrategy::Domore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CallEffect, Expr, ProgramBuilder};
    use std::collections::HashMap;

    fn classify(build: impl FnOnce(&mut ProgramBuilder) -> StmtId) -> Applicability {
        let mut b = ProgramBuilder::new();
        let l = build(&mut b);
        let p = b.finish();
        let pdg = Pdg::build(&p, l);
        classify_loop(&p, &pdg)
    }

    #[test]
    fn independent_loop_is_doall() {
        let a = classify(|b| {
            let arr = b.array("A", 8);
            let i = b.var("i");
            b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
                b.store(arr, Expr::Var(i), Expr::Var(i));
            })
        });
        assert_eq!(a.best(), Technique::Doall);
        assert!(a.is_parallel());
    }

    #[test]
    fn commutative_calls_allow_doany() {
        let a = classify(|b| {
            let pool = b.array("pool", 8);
            let i = b.var("i");
            b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
                b.call(
                    "malloc",
                    vec![Expr::Var(i)],
                    CallEffect {
                        commutative: true,
                        may_read: vec![pool],
                        may_write: vec![pool],
                        ..CallEffect::default()
                    },
                );
            })
        });
        assert!(a.applicable.contains(&Technique::Doany));
        assert_eq!(a.best(), Technique::Doany);
    }

    #[test]
    fn irregular_writes_allow_localwrite_not_doany() {
        let a = classify(|b| {
            let arr = b.array("A", 8);
            let idx = b.array("idx", 8);
            let i = b.var("i");
            let k = b.var("k");
            let t = b.var("t");
            b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
                b.load(k, idx, Expr::Var(i));
                b.load(t, arr, Expr::Var(k));
                b.store(arr, Expr::Var(k), Expr::add(Expr::Var(t), Expr::Const(1)));
            })
        });
        assert!(a.applicable.contains(&Technique::LocalWrite));
        assert!(!a.applicable.contains(&Technique::Doany));
        assert!(!a.is_parallel());
    }

    #[test]
    fn reduction_falls_back_to_pipeline_techniques() {
        let a = classify(|b| {
            let arr = b.array("A", 8);
            let i = b.var("i");
            let t = b.var("t");
            let s = b.var("s");
            b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
                b.load(t, arr, Expr::Var(i));
                b.assign(s, Expr::add(Expr::Var(s), Expr::Var(t)));
            })
        });
        assert!(!a.applicable.contains(&Technique::LocalWrite));
        assert!(a.applicable.contains(&Technique::Doacross));
        assert!(
            a.applicable.contains(&Technique::Dswp),
            "load feeds the sum"
        );
    }

    #[test]
    fn rare_dependences_enable_spec_doall() {
        let mut b = ProgramBuilder::new();
        let arr = b.array("A", 8);
        let idx = b.array("idx", 8);
        let i = b.var("i");
        let k = b.var("k");
        let l = b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(k, idx, Expr::Var(i));
            b.store(arr, Expr::Var(k), Expr::Var(i));
        });
        let p = b.finish();
        let mut pdg = Pdg::build(&p, l);
        // Profile says the carried dependences never manifested.
        let rates: HashMap<(StmtId, StmtId), f64> = pdg
            .carried_edges()
            .filter(|e| matches!(e.kind, DepKind::Memory { .. }))
            .map(|e| ((e.src, e.dst), 0.0))
            .collect();
        pdg.annotate_manifest(&rates);
        let a = classify_loop(&p, &pdg);
        assert_eq!(a.best(), Technique::SpecDoall);
        assert_eq!(a.max_manifest_rate, Some(0.0));
    }

    #[test]
    fn nest_strategy_follows_manifest_rate() {
        let doall = Applicability {
            applicable: vec![Technique::Doall],
            carried: vec![],
            max_manifest_rate: None,
        };
        assert_eq!(choose_nest_strategy(&doall, None), NestStrategy::SpecCross);
        assert_eq!(
            choose_nest_strategy(&doall, Some(0.01)),
            NestStrategy::SpecCross
        );
        assert_eq!(
            choose_nest_strategy(&doall, Some(0.724)),
            NestStrategy::Domore
        );
    }

    #[test]
    fn unparallelizable_inner_loop_forces_fallbacks() {
        let pipeline_only = Applicability {
            applicable: vec![Technique::Dswp, Technique::Doacross],
            carried: vec![],
            max_manifest_rate: None,
        };
        assert_eq!(
            choose_nest_strategy(&pipeline_only, Some(0.5)),
            NestStrategy::InnerBarrier
        );
        let nothing = Applicability {
            applicable: vec![],
            carried: vec![],
            max_manifest_rate: None,
        };
        assert_eq!(
            choose_nest_strategy(&nothing, None),
            NestStrategy::Sequential
        );
    }
}
